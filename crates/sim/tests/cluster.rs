//! End-to-end simulation tests: the acceptance gates of the harness.
//!
//! * Same seed, repeated executions → bit-identical final results.
//! * A seeded drop/partition/crash schedule that kills a worker
//!   mid-generation still converges to the exact fault-free genome.
//! * A daemon with re-dispatch disabled (lost work on retry) is caught
//!   by the sweep within a handful of seeds.
//! * Checkpoints written under faults stay loadable.

use std::time::Duration;

use sim::sweep::Expected;
use sim::{run_seed, run_sweep, Cluster, ClusterConfig, FaultPlan, Outcome};

/// One timeout unit. Deadlines scale off `SIM_TIMEOUT_MS` (default
/// 1000) so slow or loaded machines can stretch every bound with one
/// env var instead of editing constants — the same knob the served
/// integration suites honor. (The bound below caps *virtual* time, so
/// it exists to catch real hangs, not to race the wall clock; the
/// default still leaves an enormous margin over a healthy run.)
fn timeout_unit() -> Duration {
    let ms = std::env::var("SIM_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    Duration::from_millis(ms)
}

fn bound(units: u32) -> Duration {
    timeout_unit() * units
}

#[test]
fn same_seed_is_bit_identical_across_executions() {
    // Thread interleaving may vary retry counts between executions, but
    // the *outcome* must not move: both runs have to reproduce the
    // fault-free ground truth bit-for-bit (genome and fitness bits are
    // compared inside run_seed).
    for run in 0..2 {
        let report = run_seed(3, &mut Expected::new(), true);
        assert!(
            report.verdict.is_ok(),
            "run {run} of seed 3 diverged: {:?}",
            report.verdict
        );
    }
}

#[test]
fn crash_partition_and_frame_faults_converge_to_the_fault_free_result() {
    let cluster = Cluster::boot(&ClusterConfig {
        seed: 42,
        workers: 2,
        plan: FaultPlan {
            drop_p: 0.08,
            dup_p: 0.02,
            delay_p: 0.30,
            delay_max_micros: 15_000,
        },
        redispatch: true,
        ..ClusterConfig::default()
    })
    .expect("cluster boots");

    let spec = Cluster::spec(7);
    let (want_genes, want_fitness) = Cluster::expected(&spec).expect("reference tune");
    let id = cluster.submit(&spec).expect("submit");

    // Kill worker 0 mid-generation, cut worker 1 off for a window, then
    // let both come back — the job must ride it out on retries,
    // failover, and the local fallback.
    let mut fired = [false; 4];
    let outcome = cluster.wait(id, bound(60), |now_ms| {
        let mut fire = |slot: usize, at: u64| {
            let due = now_ms >= at && !fired[slot];
            if due {
                fired[slot] = true;
            }
            due
        };
        if fire(0, 60) {
            cluster.crash_worker(0);
        }
        if fire(1, 90) {
            cluster.partition_worker(1);
        }
        if fire(2, 180) {
            cluster.heal_worker(1);
        }
        if fire(3, 220) {
            cluster.restart_worker(0).expect("worker restarts");
        }
    });

    let Outcome::Done {
        genes,
        fitness,
        generations,
    } = outcome
    else {
        panic!("job did not finish under faults: {outcome:?}");
    };
    assert_eq!(genes, want_genes, "fault schedule changed the genome");
    assert_eq!(
        fitness.to_bits(),
        want_fitness.to_bits(),
        "fault schedule changed the fitness bits"
    );
    assert_eq!(generations, 3);
    let loaded = cluster.checkpoints_loadable().expect("checkpoints load");
    assert!(loaded >= 1, "expected at least one loadable checkpoint");
    assert!(
        fired.iter().all(|f| *f),
        "scenario too short to fire every fault event: {fired:?}"
    );
    cluster.shutdown();
}

#[test]
fn sweep_catches_a_daemon_that_loses_redispatched_work() {
    // The intentionally-broken build: DispatchConfig::redispatch = false
    // silently drops work claimed by a failing worker. With frame drops
    // in the schedule, some seed must hang on the lost genome.
    let report = run_sweep(9, 4, false);
    assert!(
        !report.failures.is_empty(),
        "no seed caught the lost-work bug — the sweep has no teeth"
    );
    for f in &report.failures {
        assert!(
            !f.trace.is_empty(),
            "failing seed {} carries no fault trace to replay from",
            f.seed
        );
    }
}

#[test]
fn mixed_problem_backlog_loses_no_job_and_stays_bit_identical() {
    // One daemon, three queued jobs — inline, flags, dss — per seed,
    // under the same seeded fault weather as the single-job sweep.
    // Every job must reach `done` with its own fault-free result.
    let report = sim::run_mixed_sweep(1, 3);
    assert_eq!(
        report.passed,
        3,
        "mixed-problem backlog lost or corrupted jobs: {:?}",
        report
            .failures
            .iter()
            .map(|f| (f.seed, f.verdicts.clone()))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        report.jobs_done,
        3 * sim::MIXED_PROBLEMS.len() as u64,
        "every submitted job must land, none dropped from the queue"
    );
}

#[test]
fn store_crash_recovery_sweep_passes_and_exercises_torn_tails() {
    let report = sim::run_store_sweep(1, 16);
    assert_eq!(
        report.passed,
        16,
        "store lost or corrupted acknowledged records: {:?}",
        report
            .failures
            .iter()
            .map(|f| (f.seed, f.failures.clone()))
            .collect::<Vec<_>>()
    );
    assert!(
        report.torn_scenarios > 0,
        "no scenario tore the wal — the sweep never hit the recovery path"
    );
    // A scenario is pure in its seed: replaying one yields the exact
    // same shape, which is what makes `simtest --store-seed N` a
    // complete reproduction recipe.
    let a = sim::run_store_seed(5);
    let b = sim::run_store_seed(5);
    assert_eq!(a.records, b.records);
    assert_eq!(a.torn_bytes, b.torn_bytes);
    assert_eq!(a.failures, b.failures);
}

#[test]
fn online_drift_sweep_stays_bit_identical_and_commits_retunes() {
    // Online jobs under fault weather: the daemon's whole epoch
    // trajectory — per-epoch probes, retune decisions, detection
    // latencies, evaluation counts, final incumbent bits — must equal
    // the in-process reference runner, and the bounded-regret
    // invariants must hold on every seed.
    let report = sim::run_online_sweep(1, 6);
    assert_eq!(
        report.passed,
        6,
        "online scenarios diverged from the reference runner: {:?}",
        report
            .failures
            .iter()
            .map(|f| (f.seed, f.verdict.tag()))
            .collect::<Vec<_>>()
    );
    assert!(
        report.retunes > 0,
        "no scenario committed a retune — drift detection never fired"
    );
    // Scenario derivation is pure in the seed: the same seed replays
    // the identical schedule and drift identity, which is what makes
    // `simtest --online-seed N` a complete reproduction recipe.
    let mut expected = sim::OnlineExpected::new();
    let a = sim::run_online_seed(2, &mut expected);
    let b = sim::run_online_seed(2, &mut expected);
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.retunes, b.retunes);
    assert_eq!(a.kind, b.kind);
}

#[test]
fn clean_sweep_over_healthy_daemon_passes_and_injects_faults() {
    let report = run_sweep(1, 6, true);
    assert_eq!(
        report.passed,
        6,
        "healthy daemon failed seeds: {:?}",
        report
            .failures
            .iter()
            .map(|f| (f.seed, f.verdict.tag()))
            .collect::<Vec<_>>()
    );
    let (drops, dups, delays, _) = report.fault_counts;
    assert!(
        drops + dups + delays > 0,
        "sweep injected no faults at all — the schedules are inert"
    );
}
