//! Integration tests over a real directory: crash recovery, compaction,
//! warm-start lookup, and the full-tuple cache-key regression.

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use stored::{digest_parts, encode_record, Fingerprint, Record, Store, StoreOptions, FEATURES};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stored-test-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn fp(scenario: &str, goal: &str, arch: &str, suite: &[&str]) -> Fingerprint {
    let mut parts = vec![scenario, goal, arch];
    parts.extend_from_slice(suite);
    Fingerprint {
        cell_digest: digest_parts(&parts),
        arch: arch.into(),
        features: (0..FEATURES)
            .map(|i| (i + suite.len()) as f64 * 0.25)
            .collect(),
        problem: "inline".into(),
    }
}

fn rec(fingerprint: &Fingerprint, genes: &[i64], fitness: f64) -> Record {
    Record {
        fingerprint: fingerprint.clone(),
        genome: genes.to_vec(),
        fitness,
    }
}

fn no_compact() -> StoreOptions {
    StoreOptions {
        compact_threshold: 0,
        ..StoreOptions::default()
    }
}

#[test]
fn records_survive_reopen_bit_exactly() {
    let dir = temp_dir("reopen");
    let cell = fp("opt", "total", "x86-p4", &["db"]);
    let weird = f64::from_bits(0x3FEF_FFFF_FFFF_FFFF);
    {
        let store = Store::open_with(&dir, no_compact()).unwrap();
        store.append(&rec(&cell, &[1, 2, 3, 4, 5], 0.875)).unwrap();
        store.append(&rec(&cell, &[9, 8, 7, 6, 5], weird)).unwrap();
    }
    let store = Store::open_with(&dir, no_compact()).unwrap();
    assert_eq!(store.get(cell.cell_digest, &[1, 2, 3, 4, 5]), Some(0.875));
    assert_eq!(
        store
            .get(cell.cell_digest, &[9, 8, 7, 6, 5])
            .map(f64::to_bits),
        Some(weird.to_bits())
    );
    assert_eq!(store.stats().records, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_is_truncated_and_acked_records_survive() {
    let dir = temp_dir("torn");
    let cell = fp("adapt", "bal", "ppc-g4", &["jess", "db"]);
    {
        let store = Store::open_with(&dir, no_compact()).unwrap();
        for i in 0..10 {
            store
                .append(&rec(&cell, &[i, i + 1, i + 2], i as f64))
                .unwrap();
        }
    }
    // Kill mid-append: a prefix of the next record lands in the wal.
    let torn = encode_record(&rec(&cell, &[99, 99, 99], 99.0));
    for cut in [1, 7, 8, 9, torn.len() - 1] {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.seg"))
            .unwrap();
        f.write_all(&torn[..cut]).unwrap();
        drop(f);

        let store = Store::open_with(&dir, no_compact()).unwrap();
        let stats = store.stats();
        assert_eq!(stats.records, 10, "cut={cut}: acked records lost");
        assert_eq!(stats.recovered_torn_bytes, cut as u64, "cut={cut}");
        assert_eq!(store.get(cell.cell_digest, &[99, 99, 99]), None);
        for i in 0..10 {
            assert_eq!(
                store.get(cell.cell_digest, &[i, i + 1, i + 2]),
                Some(i as f64),
                "cut={cut}"
            );
        }
        // Recovery truncated: the next open is clean.
        drop(store);
        let clean = Store::open_with(&dir, no_compact()).unwrap();
        assert_eq!(clean.stats().recovered_torn_bytes, 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn appends_after_recovery_continue_the_wal() {
    let dir = temp_dir("resume");
    let cell = fp("opt", "run", "x86-p4", &["javac"]);
    {
        let store = Store::open_with(&dir, no_compact()).unwrap();
        store.append(&rec(&cell, &[1], 1.0)).unwrap();
    }
    // Tear the wal, recover, append more, reopen again.
    let torn = encode_record(&rec(&cell, &[2], 2.0));
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.seg"))
            .unwrap();
        f.write_all(&torn[..torn.len() / 2]).unwrap();
    }
    {
        let store = Store::open_with(&dir, no_compact()).unwrap();
        store.append(&rec(&cell, &[3], 3.0)).unwrap();
    }
    let store = Store::open_with(&dir, no_compact()).unwrap();
    assert_eq!(store.get(cell.cell_digest, &[1]), Some(1.0));
    assert_eq!(store.get(cell.cell_digest, &[2]), None);
    assert_eq!(store.get(cell.cell_digest, &[3]), Some(3.0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_folds_wal_into_one_sorted_segment() {
    let dir = temp_dir("compact");
    let a = fp("opt", "total", "x86-p4", &["db"]);
    let b = fp("opt", "total", "ppc-g4", &["db"]);
    let store = Store::open_with(&dir, no_compact()).unwrap();
    for i in 0..20 {
        store.append(&rec(&a, &[i, 0], i as f64)).unwrap();
        store.append(&rec(&b, &[i, 0], -(i as f64))).unwrap();
    }
    let before = store.snapshot_records();
    let report = store.compact().unwrap();
    assert_eq!(report.records, 40);
    assert_eq!(
        store.snapshot_records(),
        before,
        "compaction changed records"
    );
    let stats = store.stats();
    assert_eq!((stats.segments, stats.wal_records), (1, 0));

    // Compact again (idempotent), append on top, reopen.
    store.compact().unwrap();
    store.append(&rec(&a, &[77, 77], 0.5)).unwrap();
    drop(store);
    let store = Store::open_with(&dir, no_compact()).unwrap();
    assert_eq!(store.stats().records, 41);
    assert_eq!(store.get(a.cell_digest, &[77, 77]), Some(0.5));
    assert_eq!(store.get(b.cell_digest, &[19, 0]), Some(-19.0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_compaction_kicks_in_at_the_threshold() {
    let dir = temp_dir("bg");
    let cell = fp("adapt", "run", "x86-p4", &["db"]);
    let store = Store::open_with(
        &dir,
        StoreOptions {
            compact_threshold: 8,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    for i in 0..64 {
        store.append(&rec(&cell, &[i], i as f64)).unwrap();
    }
    // The compactor runs asynchronously; wait for it to catch up. The
    // bound scales off SIM_TIMEOUT_MS (default 1000 ms, so 10 s here)
    // like the served/sim integration suites, so loaded machines can
    // stretch it without editing constants.
    let unit: u64 = std::env::var("SIM_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(unit * 10);
    while store.stats().compactions == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let stats = store.stats();
    assert!(stats.compactions > 0, "background compaction never ran");
    assert_eq!(stats.records, 64, "compaction must not lose records");
    for i in 0..64 {
        assert_eq!(store.get(cell.cell_digest, &[i]), Some(i as f64));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_tuple_key_regression_no_aliasing_across_cells() {
    // The cluster-wide cache-key fix: one genome, four cells differing
    // in exactly one coordinate each (workload, arch, goal, scenario)
    // must stay four independent records.
    let dir = temp_dir("tuple");
    let genome = [25, 15, 8, 200, 135];
    let cells = [
        fp("opt", "total", "x86-p4", &["db"]),
        fp("opt", "total", "x86-p4", &["jess"]), // workload differs
        fp("opt", "total", "ppc-g4", &["db"]),   // arch differs
        fp("opt", "bal", "x86-p4", &["db"]),     // goal differs
        fp("adapt", "total", "x86-p4", &["db"]), // scenario differs
    ];
    let store = Store::open_with(&dir, no_compact()).unwrap();
    for (i, cell) in cells.iter().enumerate() {
        store.append(&rec(cell, &genome, i as f64)).unwrap();
    }
    assert_eq!(store.stats().records, cells.len());
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(
            store.get(cell.cell_digest, &genome),
            Some(i as f64),
            "cell {i} aliased another cell's measurement"
        );
    }
    // Suite *order* is part of the cell: evaluation order decides the
    // accumulation order of the geometric mean, and replay is bit-exact.
    let reordered = fp("opt", "total", "x86-p4", &["jess", "db"]);
    let in_order = fp("opt", "total", "x86-p4", &["db", "jess"]);
    assert_ne!(reordered.cell_digest, in_order.cell_digest);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_seeds_rank_nearest_cells_first_and_dedup() {
    let dir = temp_dir("seeds");
    let store = Store::open_with(&dir, no_compact()).unwrap();
    let near = Fingerprint {
        cell_digest: 1,
        arch: "x86-p4".into(),
        features: vec![1.0, 1.0],
        problem: "inline".into(),
    };
    let far = Fingerprint {
        cell_digest: 2,
        arch: "x86-p4".into(),
        features: vec![10.0, 10.0],
        problem: "inline".into(),
    };
    // near's best is [1,1] (fitness 0.1); far's best is [5,5] (0.05).
    store.append(&rec(&near, &[1, 1], 0.1)).unwrap();
    store.append(&rec(&near, &[2, 2], 0.9)).unwrap();
    store.append(&rec(&far, &[5, 5], 0.05)).unwrap();
    store.append(&rec(&far, &[1, 1], 0.5)).unwrap(); // duplicate genome

    let target = Fingerprint {
        cell_digest: 99,
        arch: "x86-p4".into(),
        features: vec![1.1, 1.1],
        problem: "inline".into(),
    };
    let seeds = store.warm_seeds(&target, 10);
    // Interleaved by rank depth, nearest cell first, duplicates dropped.
    assert_eq!(seeds, vec![vec![1, 1], vec![5, 5], vec![2, 2]]);
    assert_eq!(store.warm_seeds(&target, 2).len(), 2);

    let empty = Store::open_with(temp_dir("seeds-empty"), no_compact()).unwrap();
    assert!(empty.warm_seeds(&target, 4).is_empty());
    std::fs::remove_dir_all(store.dir()).ok();
    std::fs::remove_dir_all(empty.dir()).ok();
}

#[test]
fn warm_seeds_never_cross_problems() {
    // Cross-problem transfer regression: a flags genome means nothing
    // to an inlining search (and vice versa), no matter how close the
    // workload fingerprints look. Here the *other* problem's cell is
    // feature-identical to the target and holds the better fitness —
    // it must still be invisible.
    let dir = temp_dir("cross-problem");
    let store = Store::open_with(&dir, no_compact()).unwrap();
    let cell = |digest: u64, problem: &str| Fingerprint {
        cell_digest: digest,
        arch: "x86-p4".into(),
        features: vec![1.0, 1.0],
        problem: problem.into(),
    };
    store
        .append(&rec(&cell(1, "flags"), &[0, 1, 1, 1, 1], 0.05))
        .unwrap();
    store
        .append(&rec(&cell(2, "inline"), &[25, 15, 8, 200, 135], 0.9))
        .unwrap();

    let inline_target = cell(99, "inline");
    assert_eq!(
        store.warm_seeds(&inline_target, 10),
        vec![vec![25, 15, 8, 200, 135]],
        "an inline search was seeded with a foreign problem's genome"
    );
    let flags_target = cell(99, "flags");
    assert_eq!(
        store.warm_seeds(&flags_target, 10),
        vec![vec![0, 1, 1, 1, 1]]
    );
    // No cells of the problem at all → cold start, not a borrowed seed.
    assert!(store.warm_seeds(&cell(99, "dss"), 10).is_empty());

    // Both problems' records survive a reopen with their tags intact.
    drop(store);
    let store = Store::open_with(&dir, no_compact()).unwrap();
    assert_eq!(store.warm_seeds(&inline_target, 10).len(), 1);
    assert_eq!(store.warm_seeds(&flags_target, 10).len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_appends_are_free_and_first_wins() {
    let dir = temp_dir("dup");
    let cell = fp("opt", "total", "x86-p4", &["db"]);
    let store = Store::open_with(&dir, no_compact()).unwrap();
    assert!(store.append(&rec(&cell, &[1, 2], 0.5)).unwrap());
    assert!(!store.append(&rec(&cell, &[1, 2], 0.5)).unwrap());
    assert_eq!(store.stats().appends, 1);
    assert_eq!(store.stats().records, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_counters_track_traffic() {
    let dir = temp_dir("obs");
    let reg = Arc::new(obs::Registry::new());
    let cell = fp("opt", "total", "x86-p4", &["db"]);
    let store = Store::open_with(
        &dir,
        StoreOptions {
            compact_threshold: 0,
            obs: Arc::clone(&reg),
        },
    )
    .unwrap();
    store.append(&rec(&cell, &[1], 1.0)).unwrap();
    store.get(cell.cell_digest, &[1]);
    store.get(cell.cell_digest, &[2]);
    store.compact().unwrap();
    let snap = reg.snapshot();
    assert_eq!(snap.counter("store_appends"), 1);
    assert_eq!(snap.counter("store_hits"), 1);
    assert_eq!(snap.counter("store_misses"), 1);
    assert_eq!(snap.counter("store_compactions"), 1);
    assert!(
        snap.histogram("store_append_micros").is_some(),
        "append latency histogram missing"
    );
    std::fs::remove_dir_all(&dir).ok();
}
