//! Property tests for the segment format and the store: encode/decode
//! round-trips bit-exactly, recovery after truncation at *every* byte
//! offset keeps exactly the fully-written prefix, and compaction
//! preserves the record multiset.
//!
//! Gated behind the bare `proptest` cargo feature because the
//! `proptest` crate is not vendored (offline, zero-dependency builds).
//! To run:
//!
//! ```text
//! # on a networked machine:
//! #   add `proptest = "1"` under [dev-dependencies] in crates/stored/Cargo.toml
//! cargo test -p inlinetune-stored --features proptest
//! ```

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use stored::{
    encode_record, header, scan_bytes, Fingerprint, Record, SegmentKind, Store, StoreOptions,
};

fn arb_fingerprint() -> impl Strategy<Value = Fingerprint> {
    (
        any::<u64>(),
        "[a-z0-9-]{1,12}",
        proptest::collection::vec(any::<u64>().prop_map(f64::from_bits), 0..=8),
        // Exercise both the untagged ("inline") and tagged encodings.
        prop_oneof![Just("inline".to_string()), "[a-z]{1,10}"],
    )
        .prop_map(|(cell_digest, arch, features, problem)| Fingerprint {
            cell_digest,
            arch,
            features,
            problem,
        })
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        arb_fingerprint(),
        proptest::collection::vec(any::<i64>(), 1..=8),
        any::<u64>().prop_map(f64::from_bits),
    )
        .prop_map(|(fingerprint, genome, fitness)| Record {
            fingerprint,
            genome,
            fitness,
        })
}

/// Bit-level equality (plain `==` would make NaN records unequal to
/// themselves).
fn same(a: &Record, b: &Record) -> bool {
    let bits = |fs: &[f64]| fs.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    a.genome == b.genome
        && a.fitness.to_bits() == b.fitness.to_bits()
        && a.fingerprint.cell_digest == b.fingerprint.cell_digest
        && a.fingerprint.arch == b.fingerprint.arch
        && a.fingerprint.problem == b.fingerprint.problem
        && bits(&a.fingerprint.features) == bits(&b.fingerprint.features)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "stored-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

proptest! {
    /// Append/read round-trip: whatever goes in comes back bit-exact.
    #[test]
    fn encode_decode_round_trips(rec in arb_record()) {
        let bytes = encode_record(&rec);
        let mut seg = header(SegmentKind::Wal).to_vec();
        seg.extend_from_slice(&bytes);
        let scan = scan_bytes(&seg, SegmentKind::Wal).unwrap();
        prop_assert!(scan.torn.is_none());
        prop_assert_eq!(scan.records.len(), 1);
        prop_assert!(same(&scan.records[0], &rec));
    }

    /// Recovery after truncation at every byte offset: the scan returns
    /// exactly the records whose bytes fully precede the cut, and the
    /// reported valid length is a record boundary.
    #[test]
    fn truncation_recovers_exactly_the_prefix(
        records in proptest::collection::vec(arb_record(), 1..6),
    ) {
        let mut seg = header(SegmentKind::Wal).to_vec();
        let mut ends = Vec::new();
        for r in &records {
            seg.extend_from_slice(&encode_record(r));
            ends.push(seg.len());
        }
        for cut in 0..seg.len() {
            let scan = scan_bytes(&seg[..cut], SegmentKind::Wal).unwrap();
            let want = ends.iter().filter(|&&e| e <= cut).count();
            prop_assert_eq!(scan.records.len(), want, "cut={}", cut);
            for (got, expect) in scan.records.iter().zip(&records) {
                prop_assert!(same(got, expect), "cut={}", cut);
            }
            prop_assert!(
                scan.valid_len == 0
                    || scan.valid_len == stored::HEADER_LEN
                    || ends.contains(&scan.valid_len)
            );
        }
    }

    /// Compaction preserves the record multiset: the indexed
    /// (key, fitness-bits) collection is identical before and after,
    /// in memory and across a reopen.
    #[test]
    fn compaction_preserves_the_record_multiset(
        records in proptest::collection::vec(arb_record(), 1..40),
        rounds in 1usize..3,
    ) {
        let dir = temp_dir("compact");
        std::fs::remove_dir_all(&dir).ok();
        let opts = || StoreOptions { compact_threshold: 0, ..StoreOptions::default() };
        let store = Store::open_with(&dir, opts()).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        let before: Vec<_> = store
            .snapshot_records()
            .iter()
            .map(|(k, f)| (*k, f.to_bits()))
            .collect();
        for _ in 0..rounds {
            store.compact().unwrap();
        }
        let after: Vec<_> = store
            .snapshot_records()
            .iter()
            .map(|(k, f)| (*k, f.to_bits()))
            .collect();
        prop_assert_eq!(&before, &after);
        drop(store);
        let reopened = Store::open_with(&dir, opts()).unwrap();
        let replayed: Vec<_> = reopened
            .snapshot_records()
            .iter()
            .map(|(k, f)| (*k, f.to_bits()))
            .collect();
        prop_assert_eq!(&before, &replayed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
