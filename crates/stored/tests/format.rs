//! Golden segment fixtures: committed bytes that every future build
//! must keep reading.
//!
//! The round-trip tests in `src/segment.rs` prove today's encoder and
//! decoder agree with each other; they cannot catch a change that
//! breaks both sides in lockstep. This fixture is a segment an *old*
//! build actually wrote, frozen in the repo: store directories survive
//! upgrades only while this suite stays green.
//!
//! If the format changes *intentionally*, bump `segment::VERSION`, add
//! a decoding path for version 1, and regenerate with
//! `REGEN_FIXTURES=1 cargo test -p inlinetune-stored --test format` —
//! a changed fixture means existing store directories need a migration
//! story, not just new bytes.

use std::path::PathBuf;

use stored::{encode_record, header, scan_bytes, Fingerprint, Record, SegmentKind, FEATURES};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The frozen records: fixed digests and genomes, plus fitness values
/// chosen to exercise the bit-exactness contract (a subnormal-ish
/// mantissa, an infinity, a negative zero).
fn golden_records() -> Vec<Record> {
    let fp = |cell: u64, arch: &str, scale: f64| Fingerprint {
        cell_digest: cell,
        arch: arch.into(),
        features: (0..FEATURES).map(|i| i as f64 * scale).collect(),
        // The fixture predates the problems subsystem; inline records
        // encode with no problem tag, so the frozen bytes are unchanged.
        problem: "inline".into(),
    };
    vec![
        Record {
            fingerprint: fp(0x1122_3344_5566_7788, "x86-p4", 0.5),
            genome: vec![25, 15, 8, 200, 135],
            fitness: 0.8671875,
        },
        Record {
            fingerprint: fp(0x1122_3344_5566_7788, "x86-p4", 0.5),
            genome: vec![1, 1, 1, 1, 135],
            fitness: f64::INFINITY,
        },
        Record {
            fingerprint: fp(0xAABB_CCDD_EEFF_0011, "ppc-g4", 0.25),
            genome: vec![50, 30, 15, 400, 135, -7],
            fitness: -0.0,
        },
    ]
}

fn golden_bytes() -> Vec<u8> {
    let mut bytes = header(SegmentKind::Wal).to_vec();
    for r in &golden_records() {
        bytes.extend_from_slice(&encode_record(r));
    }
    bytes
}

fn fixture(name: &str) -> Vec<u8> {
    let path = fixture_path(name);
    if std::env::var("REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, golden_bytes()).unwrap();
    }
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with REGEN_FIXTURES=1",
            path.display()
        )
    })
}

#[test]
fn v1_segment_bytes_still_decode() {
    let bytes = fixture("segment_v1.seg");
    let scan = scan_bytes(&bytes, SegmentKind::Wal).expect("frozen bytes must keep scanning");
    assert!(scan.torn.is_none(), "fixture has no torn tail");

    let want = golden_records();
    assert_eq!(scan.records.len(), want.len());
    for (got, want) in scan.records.iter().zip(&want) {
        assert_eq!(got.genome, want.genome);
        assert_eq!(got.fingerprint.cell_digest, want.fingerprint.cell_digest);
        assert_eq!(got.fingerprint.arch, want.fingerprint.arch);
        assert_eq!(
            got.fingerprint.problem, "inline",
            "pre-problems records must decode as the inlining problem"
        );
        assert_eq!(
            got.fitness.to_bits(),
            want.fitness.to_bits(),
            "fitness must replay bit-exactly"
        );
        let bits = |fs: &[f64]| fs.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&got.fingerprint.features),
            bits(&want.fingerprint.features)
        );
    }
}

#[test]
fn todays_encoder_still_writes_the_frozen_bytes() {
    // Byte-stability both ways: a new store writing the same records
    // produces a segment an old build can read, byte for byte.
    assert_eq!(
        golden_bytes(),
        fixture("segment_v1.seg"),
        "the segment byte format drifted; see the module docs before re-blessing"
    );
}

#[test]
fn a_store_opened_on_the_fixture_serves_the_records() {
    let dir = std::env::temp_dir().join(format!("stored-fixture-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("wal.seg"), fixture("segment_v1.seg")).unwrap();

    let store = stored::Store::open_with(
        &dir,
        stored::StoreOptions {
            compact_threshold: 0,
            ..stored::StoreOptions::default()
        },
    )
    .unwrap();
    let want = golden_records();
    assert_eq!(store.stats().records, want.len());
    for r in &want {
        assert_eq!(
            store
                .get(r.fingerprint.cell_digest, &r.genome)
                .map(f64::to_bits),
            Some(r.fitness.to_bits())
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
