//! `stored` — the cluster's persistent fitness memory.
//!
//! The paper tunes every cell from a cold start, and the daemon's
//! in-process memo dies with the process: every job re-pays
//! evaluations the cluster has already done. This crate is the fix — a
//! content-addressed, append-only store mapping
//! `(genome digest × workload fingerprint × arch)` to measurement
//! records, durable across restarts and shared by every job and every
//! `evald` worker through the `tuned` protocol's `store` verbs.
//!
//! Three properties carry the design:
//!
//! * **Bit-exact replay.** Fitness is a pure function of the record
//!   key, and downstream determinism contracts ("distributed runs are
//!   bit-identical to single-process") extend to the store: fitness and
//!   features are stored as raw IEEE-754 bits, so a hit returns exactly
//!   the double the simulator produced.
//! * **Crash safety without a commit protocol.** Records are
//!   length-prefixed and CRC-checksummed ([`segment`]); appends flush
//!   before acknowledging; recovery truncates the wal's torn tail and
//!   hard-fails on corruption in immutable segments. No record that was
//!   acknowledged can be lost, and no corrupt bytes can be served.
//! * **Full-tuple keys.** A measurement is addressed by cell *and*
//!   genome ([`Record::key`]): the same genome measured on another
//!   workload, goal, scenario or architecture is a different record,
//!   so sharing the store cluster-wide cannot alias cells.
//!
//! On top sits transfer tuning: [`Store::warm_seeds`] ranks prior cells
//! by fingerprint distance and returns their best genomes, which the
//! `warmstart` search strategy plants into its initial population.

mod crc;
mod record;
mod segment;
mod store;

pub use crc::crc32;
pub use record::{digest_parts, genome_digest, Fingerprint, Record, RecordKey, FEATURES};
pub use segment::{
    decode_payload, encode_payload, encode_record, header, read_segment, scan_bytes,
    write_sorted_segment, Scan, SegmentKind, FRAME_LEN, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
pub use store::{CompactionReport, Store, StoreOptions, StoreStats};
