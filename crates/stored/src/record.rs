//! The store's unit of content: one fitness measurement, addressed by
//! `(genome digest × workload fingerprint × arch)`.
//!
//! A measurement is only meaningful relative to the exact cell it was
//! taken in — same genome, different training suite or target machine,
//! different fitness. The [`Fingerprint`] therefore carries both an
//! exact *cell digest* (hash of scenario, goal, arch, and the suite in
//! evaluation order — evaluation order matters because the geometric
//! mean is accumulated in it, and the store promises bit-exact replay)
//! and a small *feature vector* summarizing the workload's shape, which
//! the warm-start strategy uses for nearest-neighbour transfer across
//! cells.

/// How many workload features a fingerprint carries. Fixed so the byte
/// format stays stable; see `tuner::cell_fingerprint` for what each
/// slot means.
pub const FEATURES: usize = 8;

/// Identity of one tuning cell plus its workload shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Exact cell identity: FNV-1a over scenario, goal, arch and the
    /// suite's benchmark names in evaluation order.
    pub cell_digest: u64,
    /// Target architecture name (kept readable for stats/debugging; it
    /// is already folded into `cell_digest`).
    pub arch: String,
    /// Workload shape, [`FEATURES`] values; Euclidean distance over
    /// these ranks cells for warm-start transfer.
    pub features: Vec<f64>,
    /// The optimization problem the cell belongs to (`"inline"`,
    /// `"flags"`, `"dss"`, …). Genomes from different problems mean
    /// different things, so warm-start transfer never crosses problems.
    /// Records written before problems existed decode as `"inline"`.
    pub problem: String,
}

impl Fingerprint {
    /// Squared Euclidean distance between two feature vectors (missing
    /// slots, from a future shorter fingerprint, count as zero).
    #[must_use]
    pub fn distance2(&self, other: &Fingerprint) -> f64 {
        let n = self.features.len().max(other.features.len());
        (0..n)
            .map(|i| {
                let a = self.features.get(i).copied().unwrap_or(0.0);
                let b = other.features.get(i).copied().unwrap_or(0.0);
                (a - b) * (a - b)
            })
            .sum()
    }
}

/// One measurement record: a genome's fitness in one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The cell the measurement was taken in.
    pub fingerprint: Fingerprint,
    /// The evaluated genome (the threshold cascade's gene vector).
    pub genome: Vec<i64>,
    /// The measured fitness, stored and replayed bit-exactly.
    pub fitness: f64,
}

/// The content address of a record: cell digest × genome digest. Two
/// measurements with the same key are the same measurement (fitness is
/// a pure function of the key).
pub type RecordKey = (u64, u64);

impl Record {
    /// The record's content address.
    #[must_use]
    pub fn key(&self) -> RecordKey {
        (self.fingerprint.cell_digest, genome_digest(&self.genome))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest of a genome (little-endian gene bytes, length-prefixed
/// so `[1, 2]` and `[1, 2, 0]` cannot collide trivially).
#[must_use]
pub fn genome_digest(genome: &[i64]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(genome.len() as u64).to_le_bytes());
    for &g in genome {
        h = fnv1a(h, &g.to_le_bytes());
    }
    h
}

/// FNV-1a digest of a sequence of string parts, each length-prefixed so
/// part boundaries are unambiguous (`["ab","c"]` ≠ `["a","bc"]`).
#[must_use]
pub fn digest_parts(parts: &[&str]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(parts.len() as u64).to_le_bytes());
    for p in parts {
        h = fnv1a(h, &(p.len() as u64).to_le_bytes());
        h = fnv1a(h, p.as_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_and_boundary_sensitive() {
        assert_eq!(genome_digest(&[1, 2, 3]), genome_digest(&[1, 2, 3]));
        assert_ne!(genome_digest(&[1, 2]), genome_digest(&[1, 2, 0]));
        assert_ne!(digest_parts(&["ab", "c"]), digest_parts(&["a", "bc"]));
        assert_ne!(digest_parts(&["x"]), digest_parts(&["x", ""]));
    }

    #[test]
    fn key_separates_cells_with_the_same_genome() {
        // The cache-key regression: one genome measured on two cells
        // (different arch here) must produce two distinct addresses.
        let fp = |arch: &str| Fingerprint {
            cell_digest: digest_parts(&["opt", "total", arch, "db"]),
            arch: arch.into(),
            features: vec![1.0; FEATURES],
            problem: "inline".into(),
        };
        let genome = vec![25, 15, 8, 200, 135];
        let a = Record {
            fingerprint: fp("x86-p4"),
            genome: genome.clone(),
            fitness: 0.9,
        };
        let b = Record {
            fingerprint: fp("ppc-g4"),
            genome,
            fitness: 1.1,
        };
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key().1, b.key().1, "genome digest is shared");
    }

    #[test]
    fn distance_is_zero_on_self_and_symmetric() {
        let a = Fingerprint {
            cell_digest: 1,
            arch: "x".into(),
            features: vec![1.0, 2.0, 3.0],
            problem: "inline".into(),
        };
        let b = Fingerprint {
            cell_digest: 2,
            arch: "y".into(),
            features: vec![1.0, 2.5, 3.0],
            problem: "inline".into(),
        };
        assert_eq!(a.distance2(&a), 0.0);
        assert_eq!(a.distance2(&b), b.distance2(&a));
        assert!(a.distance2(&b) > 0.0);
    }
}
