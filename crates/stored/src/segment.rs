//! The on-disk segment format: a fixed header followed by
//! length-prefixed, CRC-checksummed records.
//!
//! ```text
//! header  : "STOR" | u8 version (=1) | u8 kind (0=wal, 1=sorted) | u16 0
//! record  : u32 payload_len | u32 crc32(payload) | payload
//! payload : u64 cell_digest
//!         | u8  arch_len  | arch bytes (UTF-8)
//!         | u8  n_features| n × u64 f64-bits
//!         | u16 n_genes   | n × i64
//!         | u64 fitness f64-bits
//!         [ u8 problem_len | problem bytes (UTF-8) ]   — only if ≠ "inline"
//! ```
//!
//! All integers little-endian. Fitness and features are raw IEEE-754
//! bits, never text: the store's contract is bit-exact replay.
//!
//! The trailing problem tag is optional for back-compat: records
//! written before the problems subsystem end right after the fitness,
//! and decode as problem `"inline"`. Inline records still encode
//! without the tag, so their bytes (and segment checksums) are
//! unchanged.
//!
//! Recovery semantics differ by segment kind. A **wal** is the active
//! append target, so a crash mid-append legitimately leaves a torn
//! tail; [`read_segment`] in recovering mode returns the records up to
//! the first undecodable byte plus the offset to truncate the file to.
//! A **sorted** segment is immutable — it was fully written, synced and
//! renamed into place — so any decode failure there is real corruption
//! and becomes a hard error rather than silent data loss.

use std::io::{Read, Write};

use crate::crc::crc32;
use crate::record::{Fingerprint, Record};

/// Segment header magic.
pub const MAGIC: [u8; 4] = *b"STOR";
/// Current format version.
pub const VERSION: u8 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 8;
/// Bytes of framing before each payload (length + checksum).
pub const FRAME_LEN: usize = 8;
/// Upper bound on one payload, far above any real record; a length
/// field beyond it is treated as garbage framing.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// What a segment file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Active append log; torn tails are expected and truncated.
    Wal,
    /// Immutable compaction output, sorted by record key.
    Sorted,
}

impl SegmentKind {
    fn byte(self) -> u8 {
        match self {
            SegmentKind::Wal => 0,
            SegmentKind::Sorted => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(SegmentKind::Wal),
            1 => Some(SegmentKind::Sorted),
            _ => None,
        }
    }
}

/// The 8-byte header for a segment of `kind`.
#[must_use]
pub fn header(kind: SegmentKind) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4] = VERSION;
    h[5] = kind.byte();
    h
}

/// Serializes one record payload (no framing).
#[must_use]
pub fn encode_payload(rec: &Record) -> Vec<u8> {
    let fp = &rec.fingerprint;
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&fp.cell_digest.to_le_bytes());
    let arch = fp.arch.as_bytes();
    assert!(arch.len() <= u8::MAX as usize, "arch name too long");
    out.push(arch.len() as u8);
    out.extend_from_slice(arch);
    assert!(fp.features.len() <= u8::MAX as usize, "too many features");
    out.push(fp.features.len() as u8);
    for &f in &fp.features {
        out.extend_from_slice(&f.to_bits().to_le_bytes());
    }
    assert!(rec.genome.len() <= u16::MAX as usize, "genome too long");
    out.extend_from_slice(&(rec.genome.len() as u16).to_le_bytes());
    for &g in &rec.genome {
        out.extend_from_slice(&g.to_le_bytes());
    }
    out.extend_from_slice(&rec.fitness.to_bits().to_le_bytes());
    if fp.problem != "inline" {
        let problem = fp.problem.as_bytes();
        assert!(problem.len() <= u8::MAX as usize, "problem id too long");
        assert!(!problem.is_empty(), "problem id must not be empty");
        out.push(problem.len() as u8);
        out.extend_from_slice(problem);
    }
    out
}

/// Serializes one record with framing (length + checksum + payload).
#[must_use]
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let payload = encode_payload(rec);
    let mut out = Vec::with_capacity(FRAME_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// A little-endian cursor over a payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err("payload truncated".into());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Deserializes one payload produced by [`encode_payload`].
///
/// # Errors
/// Describes the first structural problem (truncation, bad UTF-8,
/// trailing bytes); the caller decides whether that is a torn tail or
/// corruption.
pub fn decode_payload(payload: &[u8]) -> Result<Record, String> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let cell_digest = c.u64()?;
    let arch_len = c.u8()? as usize;
    let arch = std::str::from_utf8(c.take(arch_len)?)
        .map_err(|_| "arch is not UTF-8".to_string())?
        .to_string();
    let n_features = c.u8()? as usize;
    let mut features = Vec::with_capacity(n_features);
    for _ in 0..n_features {
        features.push(f64::from_bits(c.u64()?));
    }
    let n_genes = c.u16()? as usize;
    let mut genome = Vec::with_capacity(n_genes);
    for _ in 0..n_genes {
        genome.push(c.i64()?);
    }
    let fitness = f64::from_bits(c.u64()?);
    // Pre-problems records end right after the fitness; they are
    // inlining records by definition.
    let problem = if c.pos == payload.len() {
        "inline".to_string()
    } else {
        let problem_len = c.u8()? as usize;
        std::str::from_utf8(c.take(problem_len)?)
            .map_err(|_| "problem id is not UTF-8".to_string())?
            .to_string()
    };
    if c.pos != payload.len() {
        return Err(format!(
            "{} trailing bytes after record",
            payload.len() - c.pos
        ));
    }
    Ok(Record {
        fingerprint: Fingerprint {
            cell_digest,
            arch,
            features,
            problem,
        },
        genome,
        fitness,
    })
}

/// The outcome of scanning a segment's bytes.
pub struct Scan {
    /// Every record that decoded and passed its checksum, in file order.
    pub records: Vec<Record>,
    /// Byte offset of the end of the last good record (the length to
    /// truncate a torn wal to). Equals the file length iff `torn` is
    /// false.
    pub valid_len: usize,
    /// Whether the scan stopped before end-of-file, and why.
    pub torn: Option<String>,
}

/// Scans segment bytes (header included) into records.
///
/// In recovering mode (`kind == Wal`) a decode failure ends the scan:
/// the records so far plus the truncation offset come back in [`Scan`].
/// For `Sorted` segments any failure is an error.
///
/// # Errors
/// Bad header (any kind), or any decode failure in a sorted segment.
pub fn scan_bytes(bytes: &[u8], kind: SegmentKind) -> Result<Scan, String> {
    if bytes.len() < HEADER_LEN {
        // A wal torn inside its own header holds no records at all.
        if kind == SegmentKind::Wal {
            return Ok(Scan {
                records: Vec::new(),
                valid_len: 0,
                torn: Some("torn header".into()),
            });
        }
        return Err("segment shorter than its header".into());
    }
    if bytes[..4] != MAGIC {
        return Err("bad segment magic".into());
    }
    if bytes[4] != VERSION {
        return Err(format!("unsupported segment version {}", bytes[4]));
    }
    match SegmentKind::from_byte(bytes[5]) {
        Some(k) if k == kind => {}
        Some(_) => return Err("segment kind mismatch".into()),
        None => return Err("unknown segment kind".into()),
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        if pos == bytes.len() {
            return Ok(Scan {
                records,
                valid_len: pos,
                torn: None,
            });
        }
        let fail = |pos: usize, records: Vec<Record>, why: String| {
            if kind == SegmentKind::Wal {
                Ok(Scan {
                    records,
                    valid_len: pos,
                    torn: Some(why),
                })
            } else {
                Err(format!("corrupt sorted segment at byte {pos}: {why}"))
            }
        };
        if pos + FRAME_LEN > bytes.len() {
            return fail(pos, records, "torn frame".into());
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return fail(pos, records, format!("implausible record length {len}"));
        }
        let want = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + FRAME_LEN;
        let end = start + len as usize;
        if end > bytes.len() {
            return fail(pos, records, "torn payload".into());
        }
        let payload = &bytes[start..end];
        if crc32(payload) != want {
            return fail(pos, records, "checksum mismatch".into());
        }
        match decode_payload(payload) {
            Ok(r) => records.push(r),
            Err(e) => return fail(pos, records, e),
        }
        pos = end;
    }
}

/// Reads and scans a segment file.
///
/// # Errors
/// I/O errors, or the [`scan_bytes`] failures for its kind.
pub fn read_segment(path: &std::path::Path, kind: SegmentKind) -> Result<Scan, String> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    scan_bytes(&bytes, kind).map_err(|e| format!("{}: {e}", path.display()))
}

/// Writes a complete sorted segment (header + records) to `path` via a
/// temp file + rename, syncing before the rename so the renamed file is
/// durable and never half-written.
///
/// # Errors
/// I/O errors.
pub fn write_sorted_segment(path: &std::path::Path, records: &[Record]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| format!("cannot write {}: {e}", tmp.display());
    let mut f = std::fs::File::create(&tmp).map_err(io)?;
    f.write_all(&header(SegmentKind::Sorted)).map_err(io)?;
    let mut buf = Vec::new();
    for r in records {
        buf.extend_from_slice(&encode_record(r));
    }
    f.write_all(&buf).map_err(io)?;
    f.sync_all().map_err(io)?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} into place: {e}", tmp.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FEATURES;

    fn rec(cell: u64, genes: &[i64], fitness: f64) -> Record {
        Record {
            fingerprint: Fingerprint {
                cell_digest: cell,
                arch: "x86-p4".into(),
                features: (0..FEATURES).map(|i| i as f64 * 0.5).collect(),
                problem: "inline".into(),
            },
            genome: genes.to_vec(),
            fitness,
        }
    }

    fn wal_bytes(records: &[Record]) -> Vec<u8> {
        let mut b = header(SegmentKind::Wal).to_vec();
        for r in records {
            b.extend_from_slice(&encode_record(r));
        }
        b
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        for fitness in [0.87, f64::INFINITY, -0.0, 1.0 + f64::EPSILON] {
            let r = rec(42, &[25, 15, 8, 200, 135], fitness);
            let out = decode_payload(&encode_payload(&r)).unwrap();
            assert_eq!(out.genome, r.genome);
            assert_eq!(out.fitness.to_bits(), r.fitness.to_bits());
            assert_eq!(out.fingerprint, r.fingerprint);
        }
    }

    #[test]
    fn problem_tag_round_trips_and_inline_stays_untagged() {
        // Inline records must keep the pre-problems byte layout: the
        // payload ends right after the fitness.
        let inline = rec(7, &[1, 2, 3], 0.5);
        let payload = encode_payload(&inline);
        assert_eq!(
            payload.len(),
            8 + 1 + "x86-p4".len() + 1 + FEATURES * 8 + 2 + 3 * 8 + 8,
            "inline payload grew a tag"
        );
        assert_eq!(decode_payload(&payload).unwrap(), inline);

        // Non-inline records carry the tag and round-trip it.
        let mut flags = rec(7, &[1, 2, 3], 0.5);
        flags.fingerprint.problem = "flags".into();
        let tagged = encode_payload(&flags);
        assert_eq!(tagged.len(), payload.len() + 1 + "flags".len());
        assert_eq!(decode_payload(&tagged).unwrap(), flags);

        // A truncated tag is a decode error, not a silent "inline".
        assert!(decode_payload(&tagged[..tagged.len() - 1]).is_err());
    }

    #[test]
    fn truncation_at_every_byte_offset_recovers_the_prefix() {
        let records = vec![
            rec(1, &[1, 2, 3], 0.5),
            rec(2, &[4, 5, 6], 1.5),
            rec(3, &[7], 2.5),
        ];
        let bytes = wal_bytes(&records);
        let ends: Vec<usize> = {
            let mut pos = HEADER_LEN;
            records
                .iter()
                .map(|r| {
                    pos += encode_record(r).len();
                    pos
                })
                .collect()
        };
        for cut in 0..bytes.len() {
            let scan = scan_bytes(&bytes[..cut], SegmentKind::Wal).unwrap();
            // Exactly the records whose bytes fully precede the cut.
            let want = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(scan.records.len(), want, "cut at {cut}");
            assert_eq!(scan.records[..], records[..want], "cut at {cut}");
            if cut < bytes.len() {
                assert!(scan.torn.is_some() || scan.valid_len == cut);
            }
            // valid_len always points at a record boundary (or 0).
            assert!(
                scan.valid_len == 0
                    || ends.contains(&scan.valid_len)
                    || scan.valid_len == HEADER_LEN
            );
        }
        let full = scan_bytes(&bytes, SegmentKind::Wal).unwrap();
        assert!(full.torn.is_none());
        assert_eq!(full.valid_len, bytes.len());
    }

    #[test]
    fn bit_flip_is_caught_by_the_checksum() {
        let bytes = wal_bytes(&[rec(1, &[9, 9, 9], 3.0)]);
        for i in HEADER_LEN + FRAME_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let scan = scan_bytes(&bad, SegmentKind::Wal).unwrap();
            assert!(scan.records.is_empty(), "flip at byte {i} went unnoticed");
            assert!(scan.torn.is_some());
        }
    }

    #[test]
    fn sorted_segments_refuse_corruption_instead_of_truncating() {
        let records = vec![rec(1, &[1], 0.5), rec(2, &[2], 1.5)];
        let dir = std::env::temp_dir().join(format!("stored-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-000001.seg");
        write_sorted_segment(&path, &records).unwrap();
        let scan = read_segment(&path, SegmentKind::Sorted).unwrap();
        assert_eq!(scan.records, records);

        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes.truncate(n - 3);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_segment(&path, SegmentKind::Sorted).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_mismatches_are_rejected() {
        let bytes = wal_bytes(&[]);
        assert!(scan_bytes(&bytes, SegmentKind::Sorted).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(scan_bytes(&bad, SegmentKind::Wal).is_err());
        let mut vers = bytes;
        vers[4] = 9;
        assert!(scan_bytes(&vers, SegmentKind::Wal).is_err());
    }
}
