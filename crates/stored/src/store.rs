//! The store: an append-only wal plus sorted immutable segments under
//! one directory, with an in-memory index over every record key.
//!
//! ```text
//! <dir>/wal.seg          the active append target
//! <dir>/seg-000001.seg   immutable, sorted compaction outputs
//! ```
//!
//! **Durability.** `append` buffers, writes and flushes before
//! acknowledging, so a killed process loses at most the record it was
//! mid-way through writing — which recovery then truncates. Fitness
//! here is a pure function of the record key, so a lost *unacknowledged*
//! append is merely a cache miss later, never wrong data.
//!
//! **Recovery.** `open` replays every segment: sorted segments must
//! verify perfectly (they were synced before being renamed into place;
//! a failure there is disk corruption and errors out rather than
//! silently dropping data), while the wal's torn tail — the expected
//! residue of a crash mid-append — is truncated at the first
//! undecodable byte.
//!
//! **Compaction.** A background thread folds the wal and all previous
//! segments into one new sorted segment once the wal crosses a
//! threshold. The new segment is written and synced *before* the old
//! files are removed, so a crash anywhere in between leaves duplicate
//! records at worst; the index ignores duplicates (first key wins) and
//! the next compaction folds them away.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::record::{genome_digest, Fingerprint, Record, RecordKey};
use crate::segment::{header, read_segment, write_sorted_segment, SegmentKind, HEADER_LEN};

/// Store tunables.
#[derive(Clone)]
pub struct StoreOptions {
    /// Wal records that trigger a background compaction. `0` disables
    /// automatic compaction (explicit [`Store::compact`] still works).
    pub compact_threshold: usize,
    /// Where hit/miss/append/compaction counters and the append-latency
    /// histogram are recorded.
    pub obs: Arc<obs::Registry>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            compact_threshold: 4096,
            obs: Arc::clone(obs::global()),
        }
    }
}

/// Counters describing the store's current shape and traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct record keys indexed.
    pub records: usize,
    /// Distinct cells (workload fingerprints) seen.
    pub cells: usize,
    /// Records currently in the wal (since the last compaction).
    pub wal_records: usize,
    /// Sorted immutable segments on disk.
    pub segments: usize,
    /// Appends acknowledged this process.
    pub appends: u64,
    /// Lookups answered from the index this process.
    pub hits: u64,
    /// Lookups that missed this process.
    pub misses: u64,
    /// Compactions completed this process.
    pub compactions: u64,
    /// Bytes the last recovery truncated from a torn wal tail.
    pub recovered_torn_bytes: u64,
}

/// What one compaction did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records written into the new sorted segment.
    pub records: usize,
    /// Old files (segments + wal contents) folded in.
    pub folded_segments: usize,
}

/// Per-cell summary kept in memory for warm-start lookup.
struct CellEntry {
    fingerprint: Fingerprint,
    /// Every (genome, fitness) of the cell, insertion order.
    measurements: Vec<(Vec<i64>, f64)>,
}

struct Inner {
    wal: File,
    wal_records: usize,
    /// First write wins: fitness is pure in the key, so duplicates (a
    /// crash between compaction's rename and cleanup) are identical.
    index: HashMap<RecordKey, f64>,
    cells: HashMap<u64, CellEntry>,
    segment_ids: Vec<u64>,
    stats: StoreStats,
}

struct Shared {
    dir: PathBuf,
    inner: Mutex<Inner>,
    compact_cv: Condvar,
    compact_pending: Mutex<bool>,
    shutdown: AtomicBool,
    options: StoreOptions,
}

/// The fitness store. Cheap to share behind an `Arc`; all methods take
/// `&self`.
pub struct Store {
    shared: Arc<Shared>,
    compactor: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.shared.dir)
            .finish_non_exhaustive()
    }
}

fn io_err(path: &Path, e: std::io::Error) -> String {
    format!("{}: {e}", path.display())
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.seg"))
}

impl Store {
    /// Opens (or creates) the store at `dir` with default options,
    /// running crash recovery.
    ///
    /// # Errors
    /// I/O failures, or corruption in a sorted segment.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Opens (or creates) the store with explicit options.
    ///
    /// # Errors
    /// I/O failures, or corruption in a sorted segment.
    pub fn open_with(dir: impl Into<PathBuf>, options: StoreOptions) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;

        // Residue of a compaction killed before its rename.
        for entry in std::fs::read_dir(&dir).map_err(|e| io_err(&dir, e))? {
            let p = entry.map_err(|e| io_err(&dir, e))?.path();
            if p.extension().is_some_and(|e| e == "tmp") {
                std::fs::remove_file(&p).ok();
            }
        }

        let mut inner = Inner {
            wal: OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("wal.seg"))
                .map_err(|e| io_err(&dir.join("wal.seg"), e))?,
            wal_records: 0,
            index: HashMap::new(),
            cells: HashMap::new(),
            segment_ids: Vec::new(),
            stats: StoreStats::default(),
        };

        // Sorted segments first (oldest first), then the wal: replay in
        // write order so "first key wins" keeps the oldest measurement.
        let mut ids: Vec<u64> = std::fs::read_dir(&dir)
            .map_err(|e| io_err(&dir, e))?
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                let id = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
                id.parse::<u64>().ok()
            })
            .collect();
        ids.sort_unstable();
        for &id in &ids {
            let scan = read_segment(&segment_path(&dir, id), SegmentKind::Sorted)?;
            for r in scan.records {
                Self::admit(&mut inner, &r);
            }
        }
        inner.segment_ids = ids;

        let wal_path = dir.join("wal.seg");
        let wal_len = std::fs::metadata(&wal_path)
            .map_err(|e| io_err(&wal_path, e))?
            .len();
        if wal_len == 0 {
            inner
                .wal
                .write_all(&header(SegmentKind::Wal))
                .and_then(|()| inner.wal.flush())
                .map_err(|e| io_err(&wal_path, e))?;
        } else {
            let scan = read_segment(&wal_path, SegmentKind::Wal)?;
            if scan.torn.is_some() {
                // The torn tail: truncate to the last good record and
                // reopen the append handle past it.
                inner.stats.recovered_torn_bytes = wal_len - scan.valid_len as u64;
                let f = OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .map_err(|e| io_err(&wal_path, e))?;
                f.set_len(scan.valid_len as u64)
                    .map_err(|e| io_err(&wal_path, e))?;
                f.sync_all().map_err(|e| io_err(&wal_path, e))?;
                drop(f);
                inner.wal = OpenOptions::new()
                    .append(true)
                    .open(&wal_path)
                    .map_err(|e| io_err(&wal_path, e))?;
                if scan.valid_len == 0 {
                    inner
                        .wal
                        .write_all(&header(SegmentKind::Wal))
                        .and_then(|()| inner.wal.flush())
                        .map_err(|e| io_err(&wal_path, e))?;
                }
            }
            inner.wal_records = scan.records.len();
            for r in scan.records {
                Self::admit(&mut inner, &r);
            }
        }

        let shared = Arc::new(Shared {
            dir,
            inner: Mutex::new(inner),
            compact_cv: Condvar::new(),
            compact_pending: Mutex::new(false),
            shutdown: AtomicBool::new(false),
            options,
        });

        let compactor = if shared.options.compact_threshold > 0 {
            let s = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("stored-compactor".into())
                    .spawn(move || compactor_loop(&s))
                    .map_err(|e| format!("cannot spawn compactor: {e}"))?,
            )
        } else {
            None
        };

        Ok(Self {
            shared,
            compactor: Mutex::new(compactor),
        })
    }

    fn admit(inner: &mut Inner, rec: &Record) {
        let key = rec.key();
        if inner.index.contains_key(&key) {
            return;
        }
        inner.index.insert(key, rec.fitness);
        inner
            .cells
            .entry(rec.fingerprint.cell_digest)
            .or_insert_with(|| CellEntry {
                fingerprint: rec.fingerprint.clone(),
                measurements: Vec::new(),
            })
            .measurements
            .push((rec.genome.clone(), rec.fitness));
    }

    /// Appends one measurement. Returns `true` if the record was new
    /// (written to the wal) and `false` if its key was already present
    /// — the store never rewrites a measurement, so duplicate appends
    /// are free.
    ///
    /// Acknowledgment means the bytes reached the wal (written and
    /// flushed); a crash after `append` returns cannot lose the record.
    ///
    /// # Errors
    /// Wal I/O failures.
    pub fn append(&self, rec: &Record) -> Result<bool, String> {
        let obs = &self.shared.options.obs;
        let threshold = self.shared.options.compact_threshold;
        let start = obs.now_micros();
        let fresh;
        let mut nudge = false;
        {
            let mut inner = self.shared.inner.lock().expect("store poisoned");
            if inner.index.contains_key(&rec.key()) {
                fresh = false;
            } else {
                let bytes = crate::segment::encode_record(rec);
                inner
                    .wal
                    .write_all(&bytes)
                    .and_then(|()| inner.wal.flush())
                    .map_err(|e| format!("wal append failed: {e}"))?;
                Self::admit(&mut inner, rec);
                inner.wal_records += 1;
                inner.stats.appends += 1;
                fresh = true;
                nudge = threshold > 0 && inner.wal_records >= threshold;
            }
        }
        if fresh {
            obs.counter("store_appends").inc();
            obs.histogram("store_append_micros")
                .record(obs.now_micros().saturating_sub(start));
        }
        if nudge {
            self.nudge_compactor();
        }
        Ok(fresh)
    }

    /// The stored fitness for `(cell, genome)`, if any. Counts a hit or
    /// a miss.
    #[must_use]
    pub fn get(&self, cell_digest: u64, genome: &[i64]) -> Option<f64> {
        let key = (cell_digest, genome_digest(genome));
        let mut inner = self.shared.inner.lock().expect("store poisoned");
        let found = inner.index.get(&key).copied();
        let obs = &self.shared.options.obs;
        if found.is_some() {
            inner.stats.hits += 1;
            obs.counter("store_hits").inc();
        } else {
            inner.stats.misses += 1;
            obs.counter("store_misses").inc();
        }
        found
    }

    /// The `k` best (lowest-fitness) measurements of one cell, ties
    /// broken by insertion order.
    #[must_use]
    pub fn best_for_cell(&self, cell_digest: u64, k: usize) -> Vec<(Vec<i64>, f64)> {
        let inner = self.shared.inner.lock().expect("store poisoned");
        let Some(cell) = inner.cells.get(&cell_digest) else {
            return Vec::new();
        };
        let mut ranked: Vec<(usize, &(Vec<i64>, f64))> =
            cell.measurements.iter().enumerate().collect();
        ranked.sort_by(|(ia, (_, fa)), (ib, (_, fb))| {
            fa.partial_cmp(fb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ia.cmp(ib))
        });
        ranked.into_iter().take(k).map(|(_, m)| m.clone()).collect()
    }

    /// Seed genomes for warm-starting a search over `target`: cells are
    /// ranked by fingerprint distance (ties by cell digest, so the
    /// result is a pure function of store contents), and the best
    /// genomes of the nearest cells are interleaved — nearest cell's
    /// best first — until `k` distinct genomes are collected. Only
    /// cells of the *same problem* as the target are considered:
    /// genomes from a different problem mean different things, so
    /// cross-problem transfer would seed garbage. Empty when the store
    /// has no measurements for the problem: the caller falls back to a
    /// cold start.
    #[must_use]
    pub fn warm_seeds(&self, target: &Fingerprint, k: usize) -> Vec<Vec<i64>> {
        let per_cell: Vec<Vec<(Vec<i64>, f64)>> = {
            let inner = self.shared.inner.lock().expect("store poisoned");
            let mut cells: Vec<(&u64, &CellEntry)> = inner
                .cells
                .iter()
                .filter(|(_, c)| c.fingerprint.problem == target.problem)
                .collect();
            cells.sort_by(|(da, a), (db, b)| {
                let xa = a.fingerprint.distance2(target);
                let xb = b.fingerprint.distance2(target);
                xa.partial_cmp(&xb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(da.cmp(db))
            });
            cells
                .into_iter()
                .map(|(_, c)| {
                    let mut ranked: Vec<(usize, &(Vec<i64>, f64))> =
                        c.measurements.iter().enumerate().collect();
                    ranked.sort_by(|(ia, (_, fa)), (ib, (_, fb))| {
                        fa.partial_cmp(fb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(ia.cmp(ib))
                    });
                    ranked.into_iter().map(|(_, m)| m.clone()).collect()
                })
                .collect()
        };

        let mut seeds: Vec<Vec<i64>> = Vec::with_capacity(k);
        let mut depth = 0;
        loop {
            let mut any = false;
            for cell in &per_cell {
                if let Some((g, _)) = cell.get(depth) {
                    any = true;
                    if !seeds.contains(g) {
                        seeds.push(g.clone());
                        if seeds.len() == k {
                            return seeds;
                        }
                    }
                }
            }
            if !any {
                return seeds;
            }
            depth += 1;
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.shared.inner.lock().expect("store poisoned");
        StoreStats {
            records: inner.index.len(),
            cells: inner.cells.len(),
            wal_records: inner.wal_records,
            segments: inner.segment_ids.len(),
            ..inner.stats.clone()
        }
    }

    /// Folds the wal and every sorted segment into one new sorted
    /// segment (records sorted by key), then removes the old files and
    /// truncates the wal. Safe against a crash at any point: the new
    /// segment is synced and renamed into place before anything is
    /// deleted.
    ///
    /// # Errors
    /// I/O failures; the store stays usable (the old files remain).
    pub fn compact(&self) -> Result<CompactionReport, String> {
        let mut inner = self.shared.inner.lock().expect("store poisoned");
        let dir = &self.shared.dir;

        // Re-read from disk rather than trusting memory: compaction is
        // also the integrity pass that re-verifies every checksum.
        let mut records: Vec<Record> = Vec::new();
        let mut seen: HashMap<RecordKey, ()> = HashMap::new();
        let folded = inner.segment_ids.len() + usize::from(inner.wal_records > 0);
        for &id in &inner.segment_ids {
            for r in read_segment(&segment_path(dir, id), SegmentKind::Sorted)?.records {
                if seen.insert(r.key(), ()).is_none() {
                    records.push(r);
                }
            }
        }
        inner.wal.flush().map_err(|e| format!("wal flush: {e}"))?;
        let wal_path = dir.join("wal.seg");
        for r in read_segment(&wal_path, SegmentKind::Wal)?.records {
            if seen.insert(r.key(), ()).is_none() {
                records.push(r);
            }
        }
        records.sort_by_key(Record::key);

        let next_id = inner.segment_ids.last().copied().unwrap_or(0) + 1;
        let new_path = segment_path(dir, next_id);
        write_sorted_segment(&new_path, &records)?;

        // Point of no return: the new segment is durable. Clean up.
        let old_ids = std::mem::take(&mut inner.segment_ids);
        for id in old_ids {
            std::fs::remove_file(segment_path(dir, id)).ok();
        }
        let f = OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .map_err(|e| io_err(&wal_path, e))?;
        f.set_len(HEADER_LEN as u64)
            .map_err(|e| io_err(&wal_path, e))?;
        f.sync_all().map_err(|e| io_err(&wal_path, e))?;
        drop(f);
        inner.wal = OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .map_err(|e| io_err(&wal_path, e))?;
        inner.wal_records = 0;
        inner.segment_ids = vec![next_id];
        inner.stats.compactions += 1;
        self.shared.options.obs.counter("store_compactions").inc();

        Ok(CompactionReport {
            records: records.len(),
            folded_segments: folded,
        })
    }

    /// Every record currently in the store (index order is undefined;
    /// sorted by key for determinism). Intended for tests and tooling.
    #[must_use]
    pub fn snapshot_records(&self) -> Vec<(RecordKey, f64)> {
        let inner = self.shared.inner.lock().expect("store poisoned");
        let mut out: Vec<(RecordKey, f64)> = inner.index.iter().map(|(k, v)| (*k, *v)).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    fn nudge_compactor(&self) {
        let mut pending = self
            .shared
            .compact_pending
            .lock()
            .expect("compactor poisoned");
        *pending = true;
        self.shared.compact_cv.notify_one();
    }
}

fn compactor_loop(shared: &Arc<Shared>) {
    let store = Store {
        shared: Arc::clone(shared),
        compactor: Mutex::new(None),
    };
    loop {
        {
            let mut pending = shared.compact_pending.lock().expect("compactor poisoned");
            while !*pending && !shared.shutdown.load(Ordering::SeqCst) {
                pending = shared.compact_cv.wait(pending).expect("compactor poisoned");
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            *pending = false;
        }
        // Threshold re-checked under the store lock; a nudge that lost
        // the race to an explicit compact() is a no-op fold.
        let due = {
            let inner = shared.inner.lock().expect("store poisoned");
            inner.wal_records >= shared.options.compact_threshold.max(1)
        };
        if due {
            // Background compaction is best-effort; a failure leaves
            // the store fully usable and the next nudge retries.
            store.compact().ok();
        }
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.compact_cv.notify_all();
        if let Some(h) = self.compactor.lock().expect("compactor poisoned").take() {
            h.join().ok();
        }
    }
}
