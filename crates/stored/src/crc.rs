//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the checksum guarding
//! every record payload.
//!
//! Hand-rolled because the store must stay dependency-free: the table is
//! built once at compile time, and the byte-at-a-time loop is fast
//! enough for record-sized inputs (tens to hundreds of bytes) that a
//! slice-by-8 variant would be pure complexity.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes` (standard init/final XOR of `0xFFFF_FFFF`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let a = b"fitness record".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
