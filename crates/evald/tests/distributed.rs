//! End-to-end distributed tuning: real `evald` worker *processes* spawned
//! from the built binary, an in-process `tuned` daemon dispatching to
//! them, and the faults the dispatcher must shrug off — a worker
//! SIGKILLed mid-generation, chaos-mode connection drops, and dynamic
//! registration over the wire.
//!
//! The contract: distributed runs are **bit-identical** to local runs of
//! the same seed. Fitness is a pure function of the genome, so worker
//! count, retries, failover and fallback can only change timing, never
//! the tuned parameters.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ga::GaConfig;
use jit::Scenario;
use served::daemon::{Daemon, DaemonConfig, JobRecord};
use served::dispatch::DispatchConfig;
use served::json::Json;
use served::{Client, JobSpec, RunDir, Server};
use tuner::{Goal, Tuner};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("evald-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The wall-clock unit every deadline in this suite is a multiple of.
/// This suite spawns real `evald` processes, so its bounds cannot ride
/// the simulated clock (`crates/sim`) — but they *can* scale: set
/// `SIM_TIMEOUT_MS` (default 1000) to stretch every bound on slow or
/// heavily loaded CI machines instead of editing hard-coded counts.
fn timeout_unit() -> Duration {
    let ms = std::env::var("SIM_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    Duration::from_millis(ms)
}

fn bound(units: u32) -> Duration {
    timeout_unit() * units
}

fn tiny_spec(seed: u64) -> JobSpec {
    JobSpec {
        name: "Opt:Tot".into(),
        scenario: Scenario::Opt,
        goal: Goal::Total,
        arch: "x86-p4".into(),
        suite: vec!["db".into()],
        ga: GaConfig {
            pop_size: 6,
            generations: 3,
            threads: 1,
            seed,
            stagnation_limit: None,
            ..GaConfig::default()
        },
        strategy: "ga".into(),
        problem: "inline".into(),
        tenant: "default".into(),
        online: None,
        drift_pos: None,
    }
}

/// Dispatch tunables tight enough that evictions and retries resolve
/// within a test run, not within production-scale minutes.
fn fast_dispatch() -> DispatchConfig {
    DispatchConfig {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_millis(800),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        max_inflight: 2,
        ..DispatchConfig::default()
    }
}

/// A spawned `evald` process plus the address it bound.
struct WorkerProc {
    child: Child,
    addr: String,
}

impl WorkerProc {
    /// Spawns the real `evald` binary with `extra` flags, binding an
    /// OS-assigned port, and waits for the address file to appear.
    fn spawn(tag: &str, extra: &[&str]) -> Self {
        let addr_file = std::env::temp_dir().join(format!(
            "evald-addr-{tag}-{}-{}",
            std::process::id(),
            extra.len()
        ));
        let _ = std::fs::remove_file(&addr_file);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_evald"));
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--addr-file")
            .arg(&addr_file)
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        let child = cmd.spawn().expect("spawn evald");
        let addr = wait_for_file(&addr_file);
        let _ = std::fs::remove_file(&addr_file);
        Self { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill(); // SIGKILL on unix
        let _ = self.child.wait();
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn wait_for_file(path: &std::path::Path) -> String {
    let deadline = Instant::now() + bound(5);
    while Instant::now() < deadline {
        if let Ok(s) = std::fs::read_to_string(path) {
            if s.contains(':') {
                return s.trim().to_string();
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("evald never wrote its address to {}", path.display());
}

fn wait_terminal(d: &Daemon, id: u64) -> JobRecord {
    let deadline = Instant::now() + bound(60);
    while Instant::now() < deadline {
        let r = d.status(id).expect("job exists");
        if r.state.is_terminal() {
            return r;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("job {id} never reached a terminal state");
}

/// The reference result: the same spec tuned entirely in-process.
fn local_result(spec: &JobSpec) -> (Vec<i64>, f64) {
    let tuner = Tuner::new(
        spec.task().unwrap(),
        spec.training().unwrap(),
        spec.adapt_cfg(),
    );
    let outcome = tuner.tune(spec.ga.clone());
    (outcome.params.to_genes(), outcome.fitness)
}

fn assert_matches_local(record: &JobRecord, spec: &JobSpec) {
    let (genes, fitness) = record
        .result
        .as_ref()
        .unwrap_or_else(|| panic!("job should be Done, got {:?}", record.error));
    let (local_genes, local_fitness) = local_result(spec);
    assert_eq!(genes, &local_genes, "tuned genes must match");
    assert_eq!(
        fitness.to_bits(),
        local_fitness.to_bits(),
        "fitness must be bit-identical"
    );
}

#[test]
fn two_worker_job_is_bit_identical_to_single_process() {
    let w1 = WorkerProc::spawn("bitident-1", &[]);
    let w2 = WorkerProc::spawn("bitident-2", &[]);
    let dir = tmp_dir("bitident");
    let daemon = Daemon::start(
        DaemonConfig {
            workers: 1,
            eval_workers: vec![w1.addr.clone(), w2.addr.clone()],
            dispatch: fast_dispatch(),
            ..DaemonConfig::default()
        },
        RunDir::open(&dir).unwrap(),
    )
    .unwrap();

    let spec = tiny_spec(2001);
    let id = daemon.submit(spec.clone()).unwrap();
    let record = wait_terminal(&daemon, id);
    assert_matches_local(&record, &spec);

    let m = daemon.metrics_snapshot();
    assert!(
        m.remote_completed > 0,
        "evaluations must have gone through the workers"
    );
    assert_eq!(
        m.remote_fallback_evals, 0,
        "no fallback with healthy workers"
    );
    // Per-worker counters must account for every completed evaluation.
    // (Which worker gets how many is a scheduling artifact — on a busy
    // single-core host one worker may legitimately answer everything.)
    let snaps = daemon.pool().snapshots();
    assert_eq!(snaps.len(), 2);
    let per_worker: u64 = snaps.iter().map(|w| w.completed).sum();
    assert_eq!(per_worker, m.remote_completed, "snapshots: {snaps:?}");
    assert!(snaps.iter().any(|w| w.completed > 0));

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_worker_mid_generation_does_not_lose_the_job() {
    // Delay every eval so work is reliably in flight when the kill lands.
    let mut doomed = WorkerProc::spawn("kill-doomed", &["--chaos", "delay:50ms"]);
    let survivor = WorkerProc::spawn("kill-survivor", &["--chaos", "delay:50ms"]);
    let dir = tmp_dir("kill");
    let daemon = Daemon::start(
        DaemonConfig {
            workers: 1,
            eval_workers: vec![doomed.addr.clone(), survivor.addr.clone()],
            dispatch: fast_dispatch(),
            ..DaemonConfig::default()
        },
        RunDir::open(&dir).unwrap(),
    )
    .unwrap();

    let spec = tiny_spec(2002);
    let id = daemon.submit(spec.clone()).unwrap();

    // Wait until evaluations are actually being dispatched, then SIGKILL
    // one worker mid-generation.
    let deadline = Instant::now() + bound(4);
    while Instant::now() < deadline {
        if daemon.metrics_snapshot().remote_dispatched > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    doomed.kill();

    let record = wait_terminal(&daemon, id);
    assert_matches_local(&record, &spec);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_drop_worker_still_produces_identical_results() {
    // One worker drops ~30% of replies (closing the connection without
    // answering); the dispatcher must retry/re-dispatch around it.
    let flaky = WorkerProc::spawn("chaos-flaky", &["--chaos", "drop:0.3", "--chaos-seed", "7"]);
    let steady = WorkerProc::spawn("chaos-steady", &[]);
    let dir = tmp_dir("chaos");
    let daemon = Daemon::start(
        DaemonConfig {
            workers: 1,
            eval_workers: vec![flaky.addr.clone(), steady.addr.clone()],
            dispatch: fast_dispatch(),
            ..DaemonConfig::default()
        },
        RunDir::open(&dir).unwrap(),
    )
    .unwrap();

    let spec = tiny_spec(2003);
    let id = daemon.submit(spec.clone()).unwrap();
    let record = wait_terminal(&daemon, id);
    assert_matches_local(&record, &spec);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_registers_over_the_wire_and_metrics_report_it() {
    let dir = tmp_dir("register");
    let daemon = Daemon::start(
        DaemonConfig {
            workers: 1,
            dispatch: fast_dispatch(),
            ..DaemonConfig::default()
        },
        RunDir::open(&dir).unwrap(),
    )
    .unwrap();
    let server = Server::bind("127.0.0.1:0", daemon.clone()).unwrap();
    let daemon_addr = server.local_addr().to_string();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    // The worker self-registers via the protocol — no static config.
    let worker = WorkerProc::spawn(
        "register-w",
        &["--register", &daemon_addr, "--heartbeat-ms", "100"],
    );
    let deadline = Instant::now() + bound(5);
    while Instant::now() < deadline {
        if !daemon.pool().snapshots().is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let snaps = daemon.pool().snapshots();
    assert_eq!(snaps.len(), 1, "worker must have registered itself");
    assert_eq!(snaps[0].addr, worker.addr);
    assert!(
        snaps[0].registered,
        "joined via the wire, not static config"
    );

    let spec = tiny_spec(2004);
    let id = daemon.submit(spec.clone()).unwrap();
    let record = wait_terminal(&daemon, id);
    assert_matches_local(&record, &spec);

    // The `metrics` verb must expose per-worker counters.
    let mut client = Client::connect(&daemon_addr).unwrap();
    let metrics = client.metrics().unwrap();
    let workers = metrics
        .get("workers")
        .and_then(Json::as_arr)
        .expect("metrics carry a workers array");
    assert_eq!(workers.len(), 1);
    let w = &workers[0];
    assert_eq!(
        w.get("addr").and_then(Json::as_str),
        Some(worker.addr.as_str())
    );
    assert!(w.get("completed").and_then(Json::as_u64).unwrap() > 0);
    assert!(w.get("dispatched").and_then(Json::as_u64).unwrap() > 0);

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let _ = handle.join();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
