//! A worker-side client for the daemon's persistent fitness store.
//!
//! Evaluating a genome runs whole benchmarks; asking the daemon whether
//! the cluster has *already* measured it is one short RPC. The client
//! therefore consults the store before the worker burns CPU
//! (read-through) and reports fresh measurements back on a background
//! thread (write-behind), so the eval path never blocks on store I/O
//! beyond that single bounded lookup.
//!
//! The store is an accelerator, never a dependency: every failure
//! degrades to "no store". Lookups return `None` on any transport or
//! protocol error, queued puts are dropped (and counted) when the queue
//! is full or the daemon is unreachable, and after
//! [`MAX_CONSECUTIVE_FAILURES`] straight lookup errors the client stops
//! dialing entirely — a worker pointed at a dead daemon must not pay a
//! connect timeout per evaluation. One later success (the drain thread
//! reconnecting) re-arms lookups.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use served::{Client, JobSpec, TcpTransport, Transport};

/// How long one store lookup may take before the eval path gives up on
/// it and measures locally.
const GET_TIMEOUT: Duration = Duration::from_secs(2);

/// Write-behind queue depth. Puts beyond this are dropped (and counted
/// as `store_client_put_drops`) — losing a cache write is always safe.
const PUT_QUEUE: usize = 256;

/// Consecutive lookup failures after which the client stops dialing.
const MAX_CONSECUTIVE_FAILURES: u32 = 3;

/// One queued write-behind record.
struct Put {
    spec: JobSpec,
    genes: Vec<i64>,
    fitness: f64,
}

/// State shared between the eval path, the drain thread, and tests.
struct Shared {
    transport: Arc<dyn Transport>,
    addr: String,
    obs: Arc<obs::Registry>,
    /// Lookup connection (eval path); rebuilt lazily after errors.
    conn: Mutex<Option<Client>>,
    /// Consecutive failures; at [`MAX_CONSECUTIVE_FAILURES`] the client
    /// goes dormant until some call succeeds again.
    failures: AtomicU32,
    /// Puts enqueued but not yet attempted (tests poll this to zero).
    pending: AtomicU64,
}

impl Shared {
    /// A fresh connection with the lookup timeout applied, or `None`.
    fn dial(&self) -> Option<Client> {
        let mut c = Client::connect_on(&self.transport, &self.addr).ok()?;
        c.set_timeout(Some(GET_TIMEOUT)).ok()?;
        Some(c)
    }

    fn dormant(&self) -> bool {
        self.failures.load(Ordering::Relaxed) >= MAX_CONSECUTIVE_FAILURES
    }

    fn note_failure(&self) {
        self.obs.counter("store_client_errors").inc();
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    fn note_success(&self) {
        self.failures.store(0, Ordering::Relaxed);
    }
}

/// A handle to the daemon's fitness store. Cheap to clone via `Arc`;
/// dropping the last handle flushes and joins the write-behind thread.
pub struct StoreClient {
    shared: Arc<Shared>,
    /// `Some` until drop; taking it closes the queue so the drain
    /// thread can exit.
    tx: Option<SyncSender<Put>>,
    drain: Option<JoinHandle<()>>,
}

impl StoreClient {
    /// A client for the store behind the `tuned` daemon at `addr`, over
    /// real TCP. Does not dial until the first call.
    #[must_use]
    pub fn connect(addr: &str, obs: Arc<obs::Registry>) -> Self {
        Self::connect_on(TcpTransport::shared(), addr, obs)
    }

    /// Like [`StoreClient::connect`], over an injected transport.
    #[must_use]
    pub fn connect_on(transport: Arc<dyn Transport>, addr: &str, obs: Arc<obs::Registry>) -> Self {
        let shared = Arc::new(Shared {
            transport,
            addr: addr.to_string(),
            obs,
            conn: Mutex::new(None),
            failures: AtomicU32::new(0),
            pending: AtomicU64::new(0),
        });
        let (tx, rx) = sync_channel(PUT_QUEUE);
        let worker = Arc::clone(&shared);
        let drain = std::thread::Builder::new()
            .name("store-drain".into())
            .spawn(move || drain_puts(&worker, &rx))
            .ok();
        Self {
            shared,
            tx: Some(tx),
            drain,
        }
    }

    /// The stored fitness for `genes` in the cell `spec` defines, or
    /// `None` on a miss *or any failure* — callers fall back to
    /// measuring, so the two are deliberately indistinguishable.
    #[must_use]
    pub fn get(&self, spec: &JobSpec, genes: &[i64]) -> Option<f64> {
        let shared = &self.shared;
        if shared.dormant() {
            return None;
        }
        let mut slot = shared.conn.lock().expect("store conn poisoned");
        if slot.is_none() {
            *slot = shared.dial();
            if slot.is_none() {
                shared.note_failure();
                return None;
            }
        }
        let conn = slot.as_mut().expect("connection just established");
        match conn.store_get(spec, genes) {
            Ok(found) => {
                shared.note_success();
                shared
                    .obs
                    .counter(if found.is_some() {
                        "store_client_hits"
                    } else {
                        "store_client_misses"
                    })
                    .inc();
                found
            }
            Err(_) => {
                *slot = None; // poisoned protocol state; redial next time
                shared.note_failure();
                None
            }
        }
    }

    /// Queues one fresh measurement for write-behind. Never blocks;
    /// drops (and counts) the record if the queue is full.
    pub fn put(&self, spec: &JobSpec, genes: &[i64], fitness: f64) {
        let msg = Put {
            spec: spec.clone(),
            genes: genes.to_vec(),
            fitness,
        };
        let Some(tx) = &self.tx else { return };
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        match tx.try_send(msg) {
            Ok(()) => {}
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.shared.pending.fetch_sub(1, Ordering::SeqCst);
                self.shared.obs.counter("store_client_put_drops").inc();
            }
        }
    }

    /// Puts enqueued but not yet attempted. Tests poll this to zero
    /// before asserting on daemon-side state.
    #[must_use]
    pub fn pending_puts(&self) -> u64 {
        self.shared.pending.load(Ordering::SeqCst)
    }
}

impl Drop for StoreClient {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue; the drain loop exits
        if let Some(handle) = self.drain.take() {
            let _ = handle.join();
        }
    }
}

/// The write-behind loop: owns its own connection so puts never contend
/// with the eval path's lookups.
fn drain_puts(shared: &Shared, rx: &Receiver<Put>) {
    let mut conn: Option<Client> = None;
    while let Ok(put) = rx.recv() {
        if conn.is_none() {
            conn = shared.dial();
        }
        let sent = conn
            .as_mut()
            .is_some_and(|c| c.store_put(&put.spec, &put.genes, put.fitness).is_ok());
        if sent {
            shared.note_success();
            shared.obs.counter("store_client_puts").inc();
        } else {
            conn = None;
            shared.note_failure();
            shared.obs.counter("store_client_put_drops").inc();
        }
        shared.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::GaConfig;
    use jit::Scenario;
    use served::daemon::{Daemon, DaemonConfig};
    use served::{RunDir, Server};
    use std::time::Instant;
    use tuner::Goal;

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            name: "Opt:Tot".into(),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: "x86-p4".into(),
            suite: vec!["db".into()],
            ga: GaConfig {
                pop_size: 6,
                generations: 2,
                threads: 1,
                seed,
                stagnation_limit: None,
                ..GaConfig::default()
            },
            strategy: "ga".into(),
            problem: "inline".into(),
            tenant: "default".into(),
            online: None,
            drift_pos: None,
        }
    }

    /// A `tuned` server with a fresh store, on an OS-assigned port.
    fn start_daemon(tag: &str) -> (String, Daemon, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("storec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = stored::Store::open(dir.join("store")).unwrap();
        let daemon = Daemon::start(
            DaemonConfig {
                workers: 1,
                store: Some(Arc::new(store)),
                ..DaemonConfig::default()
            },
            RunDir::open(&dir).unwrap(),
        )
        .unwrap();
        let server = Server::bind("127.0.0.1:0", daemon.clone()).unwrap();
        let addr = server.local_addr().to_string();
        std::thread::spawn(move || server.serve().expect("serve"));
        (addr, daemon, dir)
    }

    fn wait_drained(client: &StoreClient) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.pending_puts() > 0 {
            assert!(
                Instant::now() < deadline,
                "write-behind queue never drained"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn put_is_written_behind_and_get_reads_it_back_bit_exactly() {
        let (addr, daemon, dir) = start_daemon("rt");
        let obs = Arc::new(obs::Registry::new());
        let client = StoreClient::connect(&addr, Arc::clone(&obs));
        let s = spec(1);
        let genes = vec![23, 13, 5, 9, 4];

        assert_eq!(client.get(&s, &genes), None, "empty store misses");
        let fitness = 1.0625f64;
        client.put(&s, &genes, fitness);
        wait_drained(&client);

        let got = client.get(&s, &genes).expect("stored record found");
        assert_eq!(got.to_bits(), fitness.to_bits(), "bit-exact round trip");
        assert_eq!(obs.counter("store_client_puts").get(), 1);
        assert_eq!(obs.counter("store_client_hits").get(), 1);
        assert_eq!(obs.counter("store_client_misses").get(), 1);
        assert_eq!(obs.counter("store_client_errors").get(), 0);

        drop(client);
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreachable_daemon_degrades_to_none_and_goes_dormant() {
        // A bound-then-dropped listener gives an address nothing serves.
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap().to_string();
        drop(dead);

        let obs = Arc::new(obs::Registry::new());
        let client = StoreClient::connect(&addr, Arc::clone(&obs));
        let s = spec(2);
        for _ in 0..MAX_CONSECUTIVE_FAILURES + 2 {
            assert_eq!(client.get(&s, &[23, 13, 5, 9, 4]), None);
        }
        // Dormancy caps the damage: dials stop at the failure limit.
        assert_eq!(
            obs.counter("store_client_errors").get(),
            u64::from(MAX_CONSECUTIVE_FAILURES)
        );
        client.put(&s, &[23, 13, 5, 9, 4], 1.0);
        wait_drained(&client);
        assert_eq!(obs.counter("store_client_puts").get(), 0);
        assert!(obs.counter("store_client_put_drops").get() >= 1);
    }
}
