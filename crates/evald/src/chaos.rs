//! Fault injection for the dispatcher's failure paths.
//!
//! Real worker fleets lose processes, stall on overloaded hosts, and
//! drop TCP connections mid-request. The integration tests need those
//! failures on demand and *reproducibly*, so chaos is driven by a seeded
//! [`simrng::Rng`] rather than ambient entropy: the same
//! `--chaos drop:0.25 --chaos-seed 7` run injects the same faults.
//!
//! Chaos only perturbs *delivery* (connections dropped, responses
//! delayed) — never the fitness values themselves — so a chaotic run
//! still produces bit-identical tuning results; it just takes longer.

use std::sync::Mutex;
use std::time::Duration;

use simrng::Rng;

/// What faults to inject, parsed from `drop:P,delay:D` syntax.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Probability (0..=1) of dropping the connection instead of
    /// answering an `eval` request.
    pub drop_prob: f64,
    /// Fixed extra latency added before every `eval` response.
    pub delay: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            delay: Duration::ZERO,
        }
    }
}

impl ChaosConfig {
    /// Parses a spec like `drop:0.1,delay:50ms`. Each clause is
    /// optional; durations accept `ms`, `s`, or a bare millisecond
    /// count.
    ///
    /// # Errors
    /// Unknown clause names, out-of-range probabilities, or unparseable
    /// durations.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once(':')
                .ok_or_else(|| format!("chaos clause '{clause}' is not key:value"))?;
            match key.trim() {
                "drop" => {
                    let p: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad drop probability '{value}'"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("drop probability {p} outside 0..=1"));
                    }
                    cfg.drop_prob = p;
                }
                "delay" => cfg.delay = parse_duration(value.trim())?,
                other => return Err(format!("unknown chaos clause '{other}'")),
            }
        }
        Ok(cfg)
    }

    /// Whether any fault is configured.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.delay > Duration::ZERO
    }
}

/// Parses `50ms`, `2s`, or a bare number of milliseconds.
fn parse_duration(text: &str) -> Result<Duration, String> {
    let (digits, scale_ms) = if let Some(d) = text.strip_suffix("ms") {
        (d, 1u64)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1000u64)
    } else {
        (text, 1u64)
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad duration '{text}'"))?;
    Ok(Duration::from_millis(n * scale_ms))
}

/// A configured fault injector: call [`Chaos::delay`] and
/// [`Chaos::should_drop`] around each response.
#[derive(Debug)]
pub struct Chaos {
    cfg: ChaosConfig,
    rng: Mutex<Rng>,
}

impl Chaos {
    /// A fault injector over a seeded RNG (seed it from `--chaos-seed`
    /// for reproducible test runs).
    #[must_use]
    pub fn new(cfg: ChaosConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: Mutex::new(Rng::seed_from_u64(seed)),
        }
    }

    /// A no-fault injector.
    #[must_use]
    pub fn inert() -> Self {
        Self::new(ChaosConfig::default(), 0)
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Rolls the dice: should this request's connection be dropped?
    #[must_use]
    pub fn should_drop(&self) -> bool {
        if self.cfg.drop_prob <= 0.0 {
            return false;
        }
        self.rng
            .lock()
            .expect("chaos rng poisoned")
            .chance(self.cfg.drop_prob)
    }

    /// Sleeps the configured injected latency (no-op when zero).
    pub fn delay(&self) {
        if self.cfg.delay > Duration::ZERO {
            std::thread::sleep(self.cfg.delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let c = ChaosConfig::parse("drop:0.1,delay:50ms").unwrap();
        assert!((c.drop_prob - 0.1).abs() < 1e-12);
        assert_eq!(c.delay, Duration::from_millis(50));
        assert!(c.is_active());
    }

    #[test]
    fn parses_partial_and_empty_specs() {
        assert_eq!(
            ChaosConfig::parse("delay:2s").unwrap().delay,
            Duration::from_secs(2)
        );
        assert_eq!(
            ChaosConfig::parse("delay:75").unwrap().delay,
            Duration::from_millis(75)
        );
        let none = ChaosConfig::parse("").unwrap();
        assert_eq!(none, ChaosConfig::default());
        assert!(!none.is_active());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "drop",
            "drop:2.0",
            "drop:-0.5",
            "drop:x",
            "delay:abcms",
            "jitter:5",
        ] {
            assert!(ChaosConfig::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn drop_rolls_are_seed_deterministic() {
        let cfg = ChaosConfig::parse("drop:0.5").unwrap();
        let a = Chaos::new(cfg.clone(), 42);
        let b = Chaos::new(cfg, 42);
        let rolls_a: Vec<bool> = (0..64).map(|_| a.should_drop()).collect();
        let rolls_b: Vec<bool> = (0..64).map(|_| b.should_drop()).collect();
        assert_eq!(rolls_a, rolls_b);
        assert!(rolls_a.iter().any(|&r| r), "p=0.5 over 64 rolls");
        assert!(rolls_a.iter().any(|&r| !r));
    }

    #[test]
    fn inert_chaos_never_drops() {
        let c = Chaos::inert();
        assert!((0..32).all(|_| !c.should_drop()));
    }
}
