//! `evald` — the stateless remote fitness-evaluation worker.
//!
//! The paper's GA spends its hours in fitness measurement (§4: repeated
//! SPECjvm98 runs per tuning cell). `evald` is the horizontal tier for
//! that cost: a process that answers `eval` RPCs by running the exact
//! pure `jit::measure` path the in-process tuner runs, so a `tuned`
//! daemon can fan a generation's cache misses out over N workers and
//! still produce **bit-identical** results (fitness is a pure function
//! of the genome; results merge into the GA memo table keyed by genome).
//!
//! * [`server`] — the eval RPC server: per-connection `task` handshake,
//!   pipelined `eval` requests, the same defensive line-delimited JSON
//!   framing as `tuned`;
//! * [`cache`] — a per-process [`tuner::Tuner`] cache keyed by the
//!   task-relevant part of the job spec, so repeated connections for the
//!   same job reuse the default-heuristic measurements;
//! * [`register`] — the registrar thread: announces the worker to a
//!   `tuned` daemon and heartbeats so the dispatcher's health checks see
//!   it (re-registering automatically after a daemon restart);
//! * [`storec`] — a read-through/write-behind client for the daemon's
//!   persistent fitness store (`--store ADDR`): the worker asks the
//!   cluster whether a genome was already measured before burning CPU
//!   on it, and reports fresh measurements back asynchronously;
//! * [`chaos`] — fault injection for integration tests
//!   (`--chaos drop:0.1,delay:50ms`): probabilistically drop connections
//!   mid-request and delay responses, driven by a seeded RNG so test
//!   runs are reproducible.
//!
//! Like the rest of the workspace: plain `std`, no external crates.

pub mod cache;
pub mod chaos;
pub mod register;
pub mod server;
pub mod storec;

pub use cache::ProblemCache;
pub use chaos::{Chaos, ChaosConfig};
pub use register::spawn_registrar;
pub use server::EvalWorker;
pub use storec::StoreClient;
