//! The registrar thread: announces this worker to a `tuned` daemon and
//! keeps heartbeating so the dispatcher's health checks see it.
//!
//! The loop is deliberately forgiving: any failure (daemon not up yet,
//! daemon restarted, transient network error) drops the connection and
//! retries on the next tick, re-sending `register` first — so a worker
//! started before its daemon, or surviving a daemon restart, joins the
//! pool as soon as one is listening. The daemon side is equally
//! forgiving: a `heartbeat` from an unknown address auto-registers it.

use std::io::{BufReader, BufWriter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use served::json::Json;
use served::proto::{read_frame, write_frame, Frame};
use served::{NetStream, TcpTransport, Transport};

/// How long each connect / reply read may take before the tick is
/// abandoned and retried.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Spawns the registrar thread over real TCP. `daemon_addr` is the
/// `tuned` protocol address; `advertise` is the `host:port` *this
/// worker's eval server* listens on (what the daemon will dial back);
/// `interval` is the heartbeat period. The thread exits promptly once
/// `stop` is raised.
#[must_use]
pub fn spawn_registrar(
    daemon_addr: String,
    advertise: String,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    spawn_registrar_on(
        TcpTransport::shared(),
        daemon_addr,
        advertise,
        interval,
        stop,
    )
}

/// Like [`spawn_registrar`], over an explicit transport (the simulation
/// harness passes a `sim::SimTransport`, putting the heartbeat cadence
/// on the virtual clock).
#[must_use]
pub fn spawn_registrar_on(
    transport: Arc<dyn Transport>,
    daemon_addr: String,
    advertise: String,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("evald-registrar".into())
        .spawn(move || registrar_loop(&*transport, &daemon_addr, &advertise, interval, &stop))
        .expect("cannot spawn registrar thread")
}

type HalfPair = (BufReader<Box<dyn NetStream>>, BufWriter<Box<dyn NetStream>>);

fn registrar_loop(
    transport: &dyn Transport,
    daemon_addr: &str,
    advertise: &str,
    interval: Duration,
    stop: &AtomicBool,
) {
    let mut conn: Option<HalfPair> = None;
    let mut registered = false;
    while !stop.load(Ordering::SeqCst) {
        if conn.is_none() {
            registered = false;
            conn = open(transport, daemon_addr);
        }
        if let Some((reader, writer)) = conn.as_mut() {
            let verb = if registered { "heartbeat" } else { "register" };
            let req = Json::obj(vec![
                ("cmd", Json::Str(verb.into())),
                ("addr", Json::Str(advertise.into())),
            ]);
            let sent = write_frame(writer, &req).is_ok();
            let acked = sent
                && match read_frame(reader) {
                    Frame::Line(line) => {
                        served::json::parse(&line)
                            .ok()
                            .and_then(|v| v.get("ok").and_then(Json::as_bool))
                            == Some(true)
                    }
                    _ => false,
                };
            if acked {
                registered = true;
            } else {
                conn = None; // reconnect and re-register next tick
            }
        }
        sleep_interruptibly(transport, interval, stop);
    }
}

fn open(transport: &dyn Transport, daemon_addr: &str) -> Option<HalfPair> {
    let stream = transport.connect(daemon_addr, IO_TIMEOUT).ok()?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).ok()?;
    let write_half = stream.try_clone().ok()?;
    Some((BufReader::new(stream), BufWriter::new(write_half)))
}

/// Sleeps up to `total` on the transport clock, waking early (in ≤50 ms)
/// when `stop` is raised.
fn sleep_interruptibly(transport: &dyn Transport, total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(50);
    let mut left = total;
    while left > Duration::ZERO && !stop.load(Ordering::SeqCst) {
        let step = left.min(slice);
        transport.sleep(step);
        left -= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use served::proto::parse_request;
    use std::net::TcpListener;

    /// A fake daemon that records the verbs it receives and always acks.
    fn fake_daemon() -> (std::net::SocketAddr, std::sync::mpsc::Receiver<String>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                let tx = tx.clone();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                loop {
                    match read_frame(&mut reader) {
                        Frame::Line(line) => {
                            let (cmd, _) = parse_request(&line).unwrap();
                            tx.send(cmd).unwrap();
                            if write_frame(&mut writer, &served::proto::ok_with(vec![])).is_err() {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
            }
        });
        (addr, rx)
    }

    #[test]
    fn registers_then_heartbeats() {
        let (addr, rx) = fake_daemon();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_registrar(
            addr.to_string(),
            "127.0.0.1:12345".into(),
            Duration::from_millis(20),
            Arc::clone(&stop),
        );
        let first = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(first, "register");
        let second = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(second, "heartbeat");
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn survives_a_daemon_that_is_not_up_yet() {
        let stop = Arc::new(AtomicBool::new(false));
        // Nothing listens on port 1; the loop must keep retrying quietly
        // and exit cleanly when stopped.
        let handle = spawn_registrar(
            "127.0.0.1:1".into(),
            "127.0.0.1:12345".into(),
            Duration::from_millis(10),
            Arc::clone(&stop),
        );
        std::thread::sleep(Duration::from_millis(60));
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }
}
