//! The eval RPC server: the worker-side half of the dispatch protocol.
//!
//! One thread per connection, same defensive framing as `tuned`
//! (oversized frames kill the connection; malformed JSON gets an error
//! envelope and the connection survives). A connection speaks:
//!
//! ```text
//! → {"cmd":"task","job":{...JobSpec...}}    bind this connection to a cell
//! ← {"ok":true}
//! → {"cmd":"eval","id":7,"genes":[23,...]}  any number, pipelined
//! ← {"ok":true,"id":7,"fitness":0.94...}
//! → {"cmd":"eval_batch","id":"1","evals":[{"id":0,"genes":[...]},...]}
//! ← {"ok":true,"id":"1","results":[{"id":0,"fitness":...},
//!        {"id":3,"error":"..."}]}           one frame per whole batch
//! ```
//!
//! plus `ping`, `metrics`, and `shutdown`. `eval_batch` carries a whole
//! generation's worth of genomes in one round-trip with per-item
//! results (partial-failure semantics: a bad genome yields an error
//! entry, not a failed envelope). Fitness goes through
//! [`problems::Problem::fitness`] — the identical pure measurement
//! path the in-process daemon runs — which is what makes distributed
//! runs bit-identical to local ones. The job spec names the problem, so
//! one worker serves `inline`, `flags` and `dss` evals side by side.

use std::io::{BufReader, BufWriter};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use problems::Problem;
use served::checkpoint::f64_to_json;
use served::json::Json;
use served::proto::{
    err, eval_batch_response, ok_with, parse_eval_batch_request, parse_request, read_frame,
    write_frame, EvalOutcome, Frame,
};
use served::{JobSpec, NetListener, NetStream, TcpTransport, Transport};

use crate::cache::ProblemCache;
use crate::chaos::Chaos;
use crate::storec::StoreClient;

/// How long a connection may sit idle before its thread is reclaimed.
/// The dispatcher opens a fresh connection per generation batch, so idle
/// connections are stale ones.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Poll interval of the accept loop.
const POLL: Duration = Duration::from_millis(50);

/// The worker's own counters (served by its `metrics` verb).
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Eval requests answered.
    pub evals: AtomicU64,
    /// Connections dropped by chaos injection.
    pub chaos_drops: AtomicU64,
    /// Frames answered with an error envelope.
    pub protocol_errors: AtomicU64,
}

/// The eval worker server. Owns the listener; serves until `shutdown`
/// arrives or the stop flag is raised.
pub struct EvalWorker {
    transport: Arc<dyn Transport>,
    listener: Box<dyn NetListener>,
    cache: Arc<ProblemCache>,
    chaos: Arc<Chaos>,
    counters: Arc<WorkerCounters>,
    obs: Arc<obs::Registry>,
    store: Option<Arc<StoreClient>>,
    stop: Arc<AtomicBool>,
}

impl EvalWorker {
    /// Binds to `addr` over real TCP (use port 0 for an OS-assigned
    /// port). Records into the process-wide [`obs::global`] registry.
    ///
    /// # Errors
    /// Propagates bind errors.
    pub fn bind(addr: &str, chaos: Chaos) -> Result<Self, String> {
        Self::bind_with_obs(addr, chaos, Arc::clone(obs::global()))
    }

    /// Like [`EvalWorker::bind`], but records into `obs` — tests inject
    /// a private registry (often with an [`obs::ManualClock`]) so
    /// assertions are exact and unpolluted by other tests.
    ///
    /// # Errors
    /// Propagates bind errors.
    pub fn bind_with_obs(
        addr: &str,
        chaos: Chaos,
        obs: Arc<obs::Registry>,
    ) -> Result<Self, String> {
        Self::bind_on(TcpTransport::shared(), addr, chaos, obs)
    }

    /// Binds to `addr` over `transport` (the simulation harness passes
    /// a `sim::SimTransport`).
    ///
    /// # Errors
    /// Propagates bind errors.
    pub fn bind_on(
        transport: Arc<dyn Transport>,
        addr: &str,
        chaos: Chaos,
        obs: Arc<obs::Registry>,
    ) -> Result<Self, String> {
        let listener = transport
            .bind(addr)
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        Ok(Self {
            transport,
            listener,
            cache: Arc::new(ProblemCache::new()),
            chaos: Arc::new(chaos),
            counters: Arc::new(WorkerCounters::default()),
            obs,
            store: None,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Attaches a persistent-fitness-store client: evals check the
    /// cluster's store before measuring and report fresh measurements
    /// back (write-behind). `None` leaves the worker store-free.
    #[must_use]
    pub fn with_store(mut self, store: Option<Arc<StoreClient>>) -> Self {
        self.store = store;
        self
    }

    /// The bound `host:port` (useful after binding port 0).
    #[must_use]
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// A flag that makes [`EvalWorker::serve`] return when raised.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The worker's counters.
    #[must_use]
    pub fn counters(&self) -> Arc<WorkerCounters> {
        Arc::clone(&self.counters)
    }

    /// Accepts and serves connections until stopped. Connection threads
    /// are detached and die with their sockets.
    ///
    /// # Errors
    /// Propagates listener failures.
    pub fn serve(&self) -> Result<(), String> {
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept(POLL) {
                Ok(Some(stream)) => {
                    served::Metrics::bump(&self.counters.connections);
                    self.obs.counter("evald_connections").inc();
                    let cache = Arc::clone(&self.cache);
                    let chaos = Arc::clone(&self.chaos);
                    let counters = Arc::clone(&self.counters);
                    let reg = Arc::clone(&self.obs);
                    let stop = Arc::clone(&self.stop);
                    let transport = Arc::clone(&self.transport);
                    let store = self.store.clone();
                    let _ =
                        std::thread::Builder::new()
                            .name("evald-conn".into())
                            .spawn(move || {
                                serve_connection(
                                    stream,
                                    &cache,
                                    &chaos,
                                    &counters,
                                    &reg,
                                    &stop,
                                    &transport,
                                    store.as_deref(),
                                );
                            });
                }
                Ok(None) => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: Box<dyn NetStream>,
    cache: &ProblemCache,
    chaos: &Chaos,
    counters: &WorkerCounters,
    reg: &obs::Registry,
    stop: &AtomicBool,
    transport: &Arc<dyn Transport>,
    store: Option<&StoreClient>,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    // The cell this connection evaluates for, set by the `task` verb.
    // The spec rides along so store lookups can name the cell.
    let mut task: Option<(Arc<dyn Problem>, JobSpec)> = None;

    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let line = match read_frame(&mut reader) {
            Frame::Line(line) => line,
            Frame::Eof => return,
            Frame::Oversized => {
                served::Metrics::bump(&counters.protocol_errors);
                let _ = write_frame(&mut writer, &err("frame exceeds 1 MiB; closing"));
                return;
            }
            Frame::Err(_) => return, // idle timeout or broken pipe
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Ok((cmd, body)) => match cmd.as_str() {
                "ping" => ok_with(vec![("pong", Json::Bool(true))]),
                "task" => match body.get("job") {
                    None => err("task needs a 'job' object"),
                    // Constructing a Problem on a cache miss is real CPU
                    // work: hold the busy bracket so a simulated clock
                    // cannot time the handshake out underneath it.
                    Some(job) => match {
                        let _busy = served::net::busy(&**transport);
                        JobSpec::from_json(job).and_then(|s| cache.get(&s).map(|hit| (s, hit)))
                    } {
                        Ok((s, (t, was_cached))) => {
                            reg.counter(if was_cached {
                                "evald_task_cache_hits"
                            } else {
                                "evald_task_cache_misses"
                            })
                            .inc();
                            task = Some((t, s));
                            ok_with(vec![])
                        }
                        Err(e) => err(e),
                    },
                },
                "eval" => match eval(
                    &body,
                    task.as_ref(),
                    chaos,
                    counters,
                    reg,
                    &**transport,
                    store,
                ) {
                    Ok(v) => v,
                    Err(Dropped) => return, // chaos: die without replying
                },
                "eval_batch" => match eval_batch(
                    &body,
                    task.as_ref(),
                    chaos,
                    counters,
                    reg,
                    &**transport,
                    store,
                ) {
                    Ok(v) => v,
                    Err(Dropped) => return, // chaos: die mid-batch, no reply
                },
                "metrics" => ok_with(vec![(
                    "metrics",
                    Json::obj(vec![
                        (
                            "connections",
                            Json::Int(counters.connections.load(Ordering::Relaxed) as i64),
                        ),
                        (
                            "evals",
                            Json::Int(counters.evals.load(Ordering::Relaxed) as i64),
                        ),
                        (
                            "chaos_drops",
                            Json::Int(counters.chaos_drops.load(Ordering::Relaxed) as i64),
                        ),
                        (
                            "protocol_errors",
                            Json::Int(counters.protocol_errors.load(Ordering::Relaxed) as i64),
                        ),
                    ]),
                )]),
                "shutdown" => {
                    let _ = write_frame(&mut writer, &ok_with(vec![]));
                    stop.store(true, Ordering::SeqCst);
                    return;
                }
                other => {
                    served::Metrics::bump(&counters.protocol_errors);
                    err(format!("unknown cmd '{other}'"))
                }
            },
            Err(e) => {
                served::Metrics::bump(&counters.protocol_errors);
                err(e)
            }
        };
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
    }
}

/// Marker: chaos decided this connection dies without a reply.
struct Dropped;

/// Handles one `eval` request. Validates the genes against the
/// problem's space *before* evaluating — a remote peer must never be
/// able to panic the worker (problem decoders may assert on arity), and
/// an out-of-space genome would poison the shared fitness store.
#[allow(clippy::too_many_arguments)]
fn eval(
    body: &Json,
    task: Option<&(Arc<dyn Problem>, JobSpec)>,
    chaos: &Chaos,
    counters: &WorkerCounters,
    reg: &obs::Registry,
    transport: &dyn Transport,
    store: Option<&StoreClient>,
) -> Result<Json, Dropped> {
    let Some((problem, spec)) = task else {
        served::Metrics::bump(&counters.protocol_errors);
        return Ok(err("no task set on this connection (send 'task' first)"));
    };
    let Some(id) = body.get("id").and_then(Json::as_usize) else {
        served::Metrics::bump(&counters.protocol_errors);
        return Ok(err("eval needs a numeric 'id'"));
    };
    let genes: Option<Vec<i64>> = body
        .get("genes")
        .and_then(Json::as_arr)
        .and_then(|items| items.iter().map(Json::as_i64).collect());
    let Some(genes) = genes else {
        served::Metrics::bump(&counters.protocol_errors);
        return Ok(err("eval needs an integer 'genes' array"));
    };
    match measure(
        &genes, problem, spec, chaos, counters, reg, transport, store,
    )? {
        Ok(fitness) => Ok(ok_with(vec![
            ("id", Json::Int(id as i64)),
            ("fitness", f64_to_json(fitness)),
        ])),
        Err(e) => Ok(err(e)),
    }
}

/// Handles one `eval_batch` request: every item is measured through the
/// same path as a single `eval`, and per-item failures come back as
/// `{"id":N,"error":...}` entries instead of failing the envelope —
/// partial-failure semantics at batch granularity. A chaos drop kills
/// the connection mid-batch without a reply, exactly like the
/// single-eval verb, so the dispatcher re-dispatches the whole
/// unanswered remainder.
#[allow(clippy::too_many_arguments)]
fn eval_batch(
    body: &Json,
    task: Option<&(Arc<dyn Problem>, JobSpec)>,
    chaos: &Chaos,
    counters: &WorkerCounters,
    reg: &obs::Registry,
    transport: &dyn Transport,
    store: Option<&StoreClient>,
) -> Result<Json, Dropped> {
    let Some((problem, spec)) = task else {
        served::Metrics::bump(&counters.protocol_errors);
        return Ok(err("no task set on this connection (send 'task' first)"));
    };
    let (batch_id, evals) = match parse_eval_batch_request(body) {
        Ok(parsed) => parsed,
        Err(e) => {
            served::Metrics::bump(&counters.protocol_errors);
            return Ok(err(e));
        }
    };
    let mut results = Vec::with_capacity(evals.len());
    for req in &evals {
        let outcome = match measure(
            &req.genes, problem, spec, chaos, counters, reg, transport, store,
        )? {
            Ok(fitness) => EvalOutcome::Fitness(fitness),
            Err(e) => EvalOutcome::Error(e),
        };
        results.push((req.id, outcome));
    }
    reg.histogram("evald_batch_size").record(evals.len() as u64);
    Ok(eval_batch_response(batch_id, &results))
}

/// Measures one genome: space validation, chaos injection, store
/// read-through/write-behind, and the busy-bracketed fitness call —
/// shared verbatim by the `eval` and `eval_batch` verbs so both speak
/// the identical pure measurement path.
#[allow(clippy::too_many_arguments)]
fn measure(
    genes: &[i64],
    problem: &Arc<dyn Problem>,
    spec: &JobSpec,
    chaos: &Chaos,
    counters: &WorkerCounters,
    reg: &obs::Registry,
    transport: &dyn Transport,
    store: Option<&StoreClient>,
) -> Result<Result<f64, String>, Dropped> {
    if !problem.space().contains(genes) {
        served::Metrics::bump(&counters.protocol_errors);
        return Ok(Err(format!(
            "genes {genes:?} outside problem '{}'s space",
            problem.id()
        )));
    }
    if chaos.should_drop() {
        served::Metrics::bump(&counters.chaos_drops);
        reg.counter("evald_chaos_drops").inc();
        return Err(Dropped);
    }
    chaos.delay();
    // Another worker (or a past run) may already have measured this
    // genome: one short store lookup is far cheaper than a benchmark
    // run, and a stored fitness is bit-identical to a fresh one.
    if let Some(hit) = store.and_then(|s| s.get(spec, genes)) {
        reg.counter("evald_store_hits").inc();
        served::Metrics::bump(&counters.evals);
        reg.counter("evald_evals").inc();
        return Ok(Ok(hit));
    }
    if store.is_some() {
        reg.counter("evald_store_misses").inc();
    }
    let started = reg.now_micros();
    // The measurement is real CPU work: hold the busy bracket so a
    // simulated clock cannot advance the dispatcher's request deadline
    // past us while we compute.
    let fitness = {
        let _busy = served::net::busy(transport);
        problem.fitness(genes)
    };
    reg.histogram("evald_eval_micros")
        .record(reg.now_micros().saturating_sub(started));
    if let Some(s) = store {
        s.put(spec, genes, fitness);
    }
    served::Metrics::bump(&counters.evals);
    reg.counter("evald_evals").inc();
    Ok(Ok(fitness))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::GaConfig;
    use inliner::InlineParams;
    use jit::Scenario;
    use served::proto::read_frame;
    use std::io::Write;
    use std::net::TcpStream;
    use tuner::{Goal, Tuner};

    fn spec() -> JobSpec {
        JobSpec {
            name: "Opt:Tot".into(),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: "x86-p4".into(),
            suite: vec!["db".into()],
            ga: GaConfig {
                pop_size: 6,
                generations: 2,
                threads: 1,
                seed: 11,
                stagnation_limit: None,
                ..GaConfig::default()
            },
            strategy: "ga".into(),
            problem: "inline".into(),
            tenant: "default".into(),
            online: None,
            drift_pos: None,
        }
    }

    struct TestConn {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    }

    impl TestConn {
        fn open(addr: &str) -> Self {
            let stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let write_half = stream.try_clone().unwrap();
            Self {
                reader: BufReader::new(stream),
                writer: BufWriter::new(write_half),
            }
        }

        fn roundtrip(&mut self, req: &Json) -> Json {
            write_frame(&mut self.writer, req).unwrap();
            match read_frame(&mut self.reader) {
                Frame::Line(line) => served::json::parse(&line).unwrap(),
                other => panic!("expected a response line, got {other:?}"),
            }
        }

        fn raw(&mut self, text: &str) -> Json {
            self.writer.write_all(text.as_bytes()).unwrap();
            self.writer.write_all(b"\n").unwrap();
            self.writer.flush().unwrap();
            match read_frame(&mut self.reader) {
                Frame::Line(line) => served::json::parse(&line).unwrap(),
                other => panic!("expected a response line, got {other:?}"),
            }
        }
    }

    fn start_worker(chaos: Chaos) -> (String, Arc<AtomicBool>) {
        let worker = EvalWorker::bind("127.0.0.1:0", chaos).unwrap();
        let addr = worker.local_addr();
        let stop = worker.stop_flag();
        std::thread::spawn(move || worker.serve().unwrap());
        (addr, stop)
    }

    fn task_frame() -> Json {
        Json::obj(vec![
            ("cmd", Json::Str("task".into())),
            ("job", spec().to_json()),
        ])
    }

    fn eval_frame(id: i64, genes: &[i64]) -> Json {
        Json::obj(vec![
            ("cmd", Json::Str("eval".into())),
            ("id", Json::Int(id)),
            (
                "genes",
                Json::Arr(genes.iter().map(|&g| Json::Int(g)).collect()),
            ),
        ])
    }

    #[test]
    fn answers_evals_with_the_exact_local_fitness() {
        let (addr, stop) = start_worker(Chaos::inert());
        let mut conn = TestConn::open(&addr);
        assert_eq!(
            conn.roundtrip(&task_frame()).get("ok"),
            Some(&Json::Bool(true))
        );

        let s = spec();
        let local = Tuner::new(s.task().unwrap(), s.training().unwrap(), s.adapt_cfg());
        let genes = InlineParams::jikes_default().to_genes();
        let expected = local.fitness(&InlineParams::from_genes(&genes));

        let resp = conn.roundtrip(&eval_frame(3, &genes));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("id"), Some(&Json::Int(3)));
        let got = served::checkpoint::f64_from_json(resp.get("fitness").unwrap()).unwrap();
        assert_eq!(got.to_bits(), expected.to_bits(), "bit-identical fitness");
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn one_worker_serves_every_problem_side_by_side() {
        let (addr, stop) = start_worker(Chaos::inert());
        for &problem in problems::KNOWN {
            let s = JobSpec {
                problem: problem.into(),
                ..spec()
            };
            let p = s.build_problem().unwrap();
            let genes = p.space().random(&mut simrng::Rng::seed_from_u64(7));
            let expected = p.fitness(&genes);

            let mut conn = TestConn::open(&addr);
            let bind = conn.roundtrip(&Json::obj(vec![
                ("cmd", Json::Str("task".into())),
                ("job", s.to_json()),
            ]));
            assert_eq!(bind.get("ok"), Some(&Json::Bool(true)), "{problem}");
            let resp = conn.roundtrip(&eval_frame(1, &genes));
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{problem}");
            let got = served::checkpoint::f64_from_json(resp.get("fitness").unwrap()).unwrap();
            assert_eq!(got.to_bits(), expected.to_bits(), "{problem} fitness bits");

            // A genome of the wrong arity for *this* problem bounces.
            let wrong = vec![0i64; genes.len() + 1];
            let bad = conn.roundtrip(&eval_frame(2, &wrong));
            assert_eq!(bad.get("ok"), Some(&Json::Bool(false)), "{problem}");
        }
        stop.store(true, Ordering::SeqCst);
    }

    fn eval_batch_frame(batch_id: u64, items: &[(usize, Vec<i64>)]) -> Json {
        let evals: Vec<served::proto::EvalRequest> = items
            .iter()
            .map(|(id, genes)| served::proto::EvalRequest {
                id: *id,
                genes: genes.clone(),
            })
            .collect();
        served::proto::eval_batch_request(batch_id, &evals)
    }

    #[test]
    fn eval_batch_answers_every_item_bit_identically_in_one_frame() {
        let (addr, stop) = start_worker(Chaos::inert());
        let mut conn = TestConn::open(&addr);
        conn.roundtrip(&task_frame());

        let s = spec();
        let p = s.build_problem().unwrap();
        let mut rng = simrng::Rng::seed_from_u64(3);
        let genomes: Vec<Vec<i64>> = (0..5).map(|_| p.space().random(&mut rng)).collect();

        let resp = conn.roundtrip(&eval_batch_frame(
            42,
            &genomes
                .iter()
                .enumerate()
                .map(|(i, g)| (i, g.clone()))
                .collect::<Vec<_>>(),
        ));
        let (batch_id, results) = served::proto::parse_eval_batch_response(&resp).unwrap();
        assert_eq!(batch_id, 42, "batch id must echo");
        assert_eq!(results.len(), genomes.len());
        for (id, outcome) in &results {
            let expected = p.fitness(&genomes[*id]);
            match outcome {
                served::proto::EvalOutcome::Fitness(f) => {
                    assert_eq!(f.to_bits(), expected.to_bits(), "genome {id}");
                }
                served::proto::EvalOutcome::Error(e) => panic!("genome {id} errored: {e}"),
            }
        }
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn eval_batch_reports_bad_items_without_failing_the_envelope() {
        let (addr, stop) = start_worker(Chaos::inert());
        let mut conn = TestConn::open(&addr);
        conn.roundtrip(&task_frame());
        let good = InlineParams::jikes_default().to_genes();
        let resp = conn.roundtrip(&eval_batch_frame(
            1,
            &[(0, good.clone()), (1, vec![-999, -999]), (2, good.clone())],
        ));
        let (_, results) = served::proto::parse_eval_batch_response(&resp).unwrap();
        assert!(
            matches!(results[0].1, served::proto::EvalOutcome::Fitness(_)),
            "good item before the bad one must still be measured"
        );
        assert!(
            matches!(results[1].1, served::proto::EvalOutcome::Error(_)),
            "out-of-space genes become a per-item error"
        );
        assert!(
            matches!(results[2].1, served::proto::EvalOutcome::Fitness(_)),
            "good item after the bad one must still be measured"
        );
        // The connection survives a partial failure.
        let ping = conn.roundtrip(&Json::obj(vec![("cmd", Json::Str("ping".into()))]));
        assert_eq!(ping.get("ok"), Some(&Json::Bool(true)));
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn eval_batch_without_task_is_an_error_not_a_panic() {
        let (addr, stop) = start_worker(Chaos::inert());
        let mut conn = TestConn::open(&addr);
        let resp = conn.roundtrip(&eval_batch_frame(0, &[(0, vec![1, 2, 3, 4, 5])]));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn eval_without_task_is_an_error_not_a_panic() {
        let (addr, stop) = start_worker(Chaos::inert());
        let mut conn = TestConn::open(&addr);
        let resp = conn.roundtrip(&eval_frame(0, &[1, 2, 3, 4, 5]));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn out_of_range_genes_are_rejected() {
        let (addr, stop) = start_worker(Chaos::inert());
        let mut conn = TestConn::open(&addr);
        conn.roundtrip(&task_frame());
        // Wrong length and wildly out-of-range values: both must come
        // back as error envelopes, and the connection must survive.
        for genes in [vec![1i64, 2], vec![-999, -999, -999, -999, -999]] {
            let resp = conn.roundtrip(&eval_frame(0, &genes));
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{genes:?}");
        }
        let ping = conn.roundtrip(&Json::obj(vec![("cmd", Json::Str("ping".into()))]));
        assert_eq!(ping.get("ok"), Some(&Json::Bool(true)));
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn malformed_json_gets_an_error_and_the_connection_survives() {
        let (addr, stop) = start_worker(Chaos::inert());
        let mut conn = TestConn::open(&addr);
        let resp = conn.raw("this is not json");
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        let ping = conn.roundtrip(&Json::obj(vec![("cmd", Json::Str("ping".into()))]));
        assert_eq!(ping.get("ok"), Some(&Json::Bool(true)));
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn chaos_drop_closes_the_connection_without_a_reply() {
        let cfg = crate::chaos::ChaosConfig::parse("drop:1.0").unwrap();
        let (addr, stop) = start_worker(Chaos::new(cfg, 1));
        let mut conn = TestConn::open(&addr);
        conn.roundtrip(&task_frame());
        let genes = InlineParams::jikes_default().to_genes();
        write_frame(&mut conn.writer, &eval_frame(0, &genes)).unwrap();
        // The worker must close without replying: EOF, not a frame.
        match read_frame(&mut conn.reader) {
            Frame::Eof => {}
            other => panic!("expected EOF from a chaos drop, got {other:?}"),
        }
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn store_backed_worker_serves_repeat_genomes_from_the_store() {
        // A real `tuned` server with a store, for the worker to lean on.
        let dir = std::env::temp_dir().join(format!("evald-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let daemon = served::Daemon::start(
            served::DaemonConfig {
                workers: 1,
                store: Some(Arc::new(stored::Store::open(dir.join("store")).unwrap())),
                ..served::DaemonConfig::default()
            },
            served::RunDir::open(&dir).unwrap(),
        )
        .unwrap();
        let server = served::Server::bind("127.0.0.1:0", daemon.clone()).unwrap();
        let daemon_addr = server.local_addr().to_string();
        std::thread::spawn(move || server.serve().expect("serve"));

        let reg = Arc::new(obs::Registry::new());
        let store = Arc::new(crate::StoreClient::connect(&daemon_addr, Arc::clone(&reg)));
        let worker = EvalWorker::bind_with_obs("127.0.0.1:0", Chaos::inert(), Arc::clone(&reg))
            .unwrap()
            .with_store(Some(Arc::clone(&store)));
        let addr = worker.local_addr();
        let stop = worker.stop_flag();
        std::thread::spawn(move || worker.serve().unwrap());

        let mut conn = TestConn::open(&addr);
        conn.roundtrip(&task_frame());
        let genes = InlineParams::jikes_default().to_genes();

        // First eval: a store miss, measured locally, put written behind.
        let first = conn.roundtrip(&eval_frame(0, &genes));
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(reg.counter("evald_store_misses").get(), 1);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while store.pending_puts() > 0 {
            assert!(std::time::Instant::now() < deadline, "put never drained");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(reg.counter("store_client_puts").get(), 1);

        // Second eval of the same genome: answered from the store,
        // bit-identical to the measured fitness.
        let second = conn.roundtrip(&eval_frame(1, &genes));
        assert_eq!(second.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(reg.counter("evald_store_hits").get(), 1);
        assert_eq!(
            first.get("fitness"),
            second.get("fitness"),
            "stored fitness must be bit-identical"
        );

        stop.store(true, Ordering::SeqCst);
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_and_shutdown_verbs_work() {
        let (addr, _stop) = start_worker(Chaos::inert());
        let mut conn = TestConn::open(&addr);
        conn.roundtrip(&task_frame());
        let genes = InlineParams::jikes_default().to_genes();
        conn.roundtrip(&eval_frame(0, &genes));
        let m = conn.roundtrip(&Json::obj(vec![("cmd", Json::Str("metrics".into()))]));
        assert_eq!(m.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(m.get("metrics").unwrap().get("evals"), Some(&Json::Int(1)));
        let down = conn.roundtrip(&Json::obj(vec![("cmd", Json::Str("shutdown".into()))]));
        assert_eq!(down.get("ok"), Some(&Json::Bool(true)));
        // The accept loop winds down; a new connect may linger in the
        // backlog, so just confirm the flag did its job via EOF here.
        assert!(matches!(read_frame(&mut conn.reader), Frame::Eof));
    }
}
