//! `evald` — a remote fitness-evaluation worker process.
//!
//! ```text
//! evald [--addr HOST:PORT] [--addr-file PATH]
//!       [--register DAEMON_ADDR] [--advertise HOST:PORT]
//!       [--heartbeat-ms N] [--store DAEMON_ADDR]
//!       [--chaos drop:P,delay:D] [--chaos-seed N]
//! ```
//!
//! Binds the eval server (`--addr`, default `127.0.0.1:0` — an
//! OS-assigned port), optionally writes the bound address to
//! `--addr-file` (so scripts binding port 0 can discover it), and — when
//! `--register` names a `tuned` daemon — announces itself there and
//! heartbeats every `--heartbeat-ms` (default 1000). `--advertise`
//! overrides the address sent to the daemon (needed when the daemon must
//! dial back through a different interface). `--store` points at a
//! `tuned` daemon whose persistent fitness store this worker should
//! consult before measuring (and report fresh measurements back to);
//! usually the same address as `--register`. `--chaos` injects faults
//! for integration testing; see `evald::chaos`.

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

use evald::{spawn_registrar, Chaos, ChaosConfig, EvalWorker, StoreClient};

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("evald: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--key value` flags out of an argument list (same convention as
/// the `tuned` binary).
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .windows(2)
            .rev()
            .find(|w| w[0] == key)
            .map(|w| w[1].as_str())
    }

    fn parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        self.get(key)
            .map(|v| v.parse().map_err(|_| format!("bad value for {key}: '{v}'")))
            .transpose()
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let addr = flags.get("--addr").unwrap_or("127.0.0.1:0");
    let chaos_cfg = match flags.get("--chaos") {
        Some(spec) => ChaosConfig::parse(spec)?,
        None => ChaosConfig::default(),
    };
    let chaos_seed = flags.parse("--chaos-seed")?.unwrap_or(0u64);
    if chaos_cfg.is_active() {
        eprintln!("evald: chaos mode active: {chaos_cfg:?} (seed {chaos_seed})");
    }

    let store = flags.get("--store").map(|daemon_addr| {
        std::sync::Arc::new(StoreClient::connect(
            daemon_addr,
            std::sync::Arc::clone(obs::global()),
        ))
    });
    let worker = EvalWorker::bind(addr, Chaos::new(chaos_cfg, chaos_seed))?.with_store(store);
    let bound = worker.local_addr();
    if let Some(path) = flags.get("--addr-file") {
        std::fs::write(path, bound.to_string())
            .map_err(|e| format!("cannot write addr file {path}: {e}"))?;
    }
    println!("evald listening on {bound}");

    let registrar = match flags.get("--register") {
        Some(daemon_addr) => {
            let advertise = flags
                .get("--advertise")
                .map_or_else(|| bound.to_string(), str::to_string);
            let interval =
                Duration::from_millis(flags.parse("--heartbeat-ms")?.unwrap_or(1000u64).max(10));
            Some(spawn_registrar(
                daemon_addr.to_string(),
                advertise,
                interval,
                worker.stop_flag(),
            ))
        }
        None => None,
    };

    let result = worker.serve();
    worker.stop_flag().store(true, Ordering::SeqCst);
    if let Some(handle) = registrar {
        let _ = handle.join();
    }
    result
}
