//! A per-process [`Problem`] cache.
//!
//! Every dispatcher connection opens with a `task` handshake naming the
//! job it will send evals for. Building a [`Problem`] measures its
//! default configuration over the whole training suite — exactly the
//! cost a worker should pay once per (problem, scenario, goal, arch,
//! suite) cell, not once per connection. The cache keys on the
//! fitness-relevant part of the job spec (the GA config and display
//! name are irrelevant to fitness), so reconnects, parallel
//! connections, and even different jobs over the same cell all share
//! one problem instance.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use problems::Problem;
use served::json::Json;
use served::JobSpec;

/// Shared, lazily populated map from task cell to [`Problem`].
#[derive(Default)]
pub struct ProblemCache {
    map: Mutex<HashMap<String, Arc<dyn Problem>>>,
}

impl ProblemCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The cache key: the spec's JSON with the fitness-irrelevant fields
    /// (`name`, `ga`, `strategy`) removed. The `problem` field stays —
    /// a `flags` job over a cell must never share an instance with an
    /// `inline` job over the same cell. Deterministic because
    /// [`Json::to_text`] serializes object keys in insertion order.
    fn key(spec: &JobSpec) -> String {
        match spec.to_json() {
            Json::Obj(pairs) => Json::Obj(
                pairs
                    .into_iter()
                    .filter(|(k, _)| k != "name" && k != "ga" && k != "strategy")
                    .collect(),
            )
            .to_text(),
            other => other.to_text(),
        }
    }

    /// The problem for a job's task cell, building (and caching) it on
    /// first use. Holding the map lock across the build is deliberate:
    /// concurrent connections for the same cell wait instead of
    /// measuring the defaults twice. The boolean reports whether the
    /// problem was already cached (`true` = hit).
    ///
    /// # Errors
    /// Propagates spec validation errors (unknown benchmark / arch /
    /// problem names).
    pub fn get(&self, spec: &JobSpec) -> Result<(Arc<dyn Problem>, bool), String> {
        let key = Self::key(spec);
        let mut map = self.map.lock().expect("problem cache poisoned");
        if let Some(p) = map.get(&key) {
            return Ok((Arc::clone(p), true));
        }
        let problem = spec.build_problem()?;
        map.insert(key, Arc::clone(&problem));
        Ok((problem, false))
    }

    /// How many distinct task cells have been built.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("problem cache poisoned").len()
    }

    /// Whether no problem has been built yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::GaConfig;
    use jit::Scenario;
    use tuner::Goal;

    fn spec(name: &str, seed: u64, suite: &[&str]) -> JobSpec {
        JobSpec {
            name: name.into(),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: "x86-p4".into(),
            suite: suite.iter().map(|s| (*s).to_string()).collect(),
            ga: GaConfig {
                pop_size: 6,
                generations: 2,
                threads: 1,
                seed,
                stagnation_limit: None,
                ..GaConfig::default()
            },
            strategy: "ga".into(),
            problem: "inline".into(),
            tenant: "default".into(),
            online: None,
            drift_pos: None,
        }
    }

    #[test]
    fn same_cell_shares_one_problem() {
        let cache = ProblemCache::new();
        let (a, hit_a) = cache.get(&spec("a", 1, &["db"])).unwrap();
        // Different name and GA config, same task cell.
        let (b, hit_b) = cache.get(&spec("b", 999, &["db"])).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A different search strategy over the same cell hits too: the
        // optimizer is irrelevant to the fitness function.
        let (c, hit_c) = cache
            .get(&JobSpec {
                strategy: "race".into(),
                ..spec("c", 5, &["db"])
            })
            .unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        assert!(hit_c, "strategy must not split the cache cell");
        assert!(!hit_a, "first build is a miss");
        assert!(hit_b, "same cell is a hit");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_problems_over_one_cell_get_different_instances() {
        let cache = ProblemCache::new();
        let (a, _) = cache.get(&spec("a", 1, &["db"])).unwrap();
        let (b, hit_b) = cache
            .get(&JobSpec {
                problem: "dss".into(),
                ..spec("a", 1, &["db"])
            })
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!hit_b, "problem id must split the cache cell");
        assert_eq!(a.id(), "inline");
        assert_eq!(b.id(), "dss");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn different_suites_get_different_problems() {
        let cache = ProblemCache::new();
        let (a, _) = cache.get(&spec("a", 1, &["db"])).unwrap();
        let (b, _) = cache.get(&spec("a", 1, &["jess"])).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn bad_suite_name_propagates() {
        let cache = ProblemCache::new();
        // JobSpec::from_json validates names, but a hand-built spec can
        // carry garbage — the cache must surface it, not panic.
        assert!(cache.get(&spec("a", 1, &["no-such-benchmark"])).is_err());
        assert!(cache.is_empty());
    }
}
