// Gated: needs the crates.io `proptest` crate (see the `proptest`
// feature note in this crate's Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests: the inlining transformation is semantics-preserving
//! and structurally sound on arbitrary random programs and arbitrary
//! in-range parameter vectors.

use proptest::prelude::*;

use inliner::{inline_program, HotSites, InlineParams};
use ir::interp::{run, InterpLimits};
use ir::method::MethodId;
use ir::size::method_size;
use ir::testgen::{random_program, GenConfig};
use ir::validate::validate;
use simrng::Rng;

fn limits() -> InterpLimits {
    InterpLimits {
        fuel: 5_000_000,
        max_depth: 64,
    }
}

fn all_ids(p: &ir::Program) -> Vec<MethodId> {
    p.methods.iter().map(|m| m.id).collect()
}

prop_compose! {
    /// An arbitrary parameter vector spanning (and slightly exceeding) the
    /// Table 1 ranges, including the degenerate all-zero point.
    fn arb_params()(
        callee_max in 0u32..80,
        always in 0u32..45,
        depth in 0u32..20,
        caller_max in 0u32..6000,
        hot in 0u32..600,
    ) -> InlineParams {
        InlineParams {
            callee_max_size: callee_max,
            always_inline_size: always,
            max_inline_depth: depth,
            caller_max_size: caller_max,
            hot_callee_max_size: hot,
        }
    }
}

prop_compose! {
    fn arb_cfg()(
        n_methods in 2u32..12,
        max_block in 2u32..7,
        nesting in 1u32..4,
        trips in 1u32..6,
        call_prob in 0.1f64..0.5,
    ) -> GenConfig {
        GenConfig {
            n_methods,
            max_block_stmts: max_block,
            max_nesting: nesting,
            max_trips: trips,
            max_params: 3,
            call_prob,
            block_prob: 0.25,
            branches: true,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline invariant: for any program, any parameters, and any hot
    /// set, inlining preserves the return value, the heap contents, and the
    /// semantic-step count.
    #[test]
    fn inlining_preserves_semantics(seed in any::<u64>(), params in arb_params(), cfg in arb_cfg(), hot_frac in 0.0f64..1.0) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &cfg);
        // Mark a random subset of sites hot.
        let mut hot = HotSites::new();
        for m in &p.methods {
            for c in ir::stmt::call_sites(&m.body) {
                if rng.chance(hot_frac) {
                    hot.insert(c.site);
                }
            }
        }
        // Random DAGs can have exponential call amplification; discard
        // cases the baseline cannot run within the fuel budget (fuel use is
        // invariant under inlining, so keeping them would test nothing new).
        let before = match run(&p, &[], &limits()) {
            Ok(out) => out,
            Err(_) => { prop_assume!(false); unreachable!() }
        };
        let (q, _) = inline_program(&p, &params, &hot, &all_ids(&p));
        prop_assert!(validate(&q).is_empty(), "inlined program invalid: {:?}", validate(&q));
        let after = run(&q, &[], &limits()).expect("inlined program terminates");
        prop_assert_eq!(before.value, after.value);
        prop_assert_eq!(before.heap_digest, after.heap_digest);
        prop_assert_eq!(before.fuel_used, after.fuel_used);
        // Inlining can only remove dynamic calls, never add them.
        prop_assert!(after.calls_executed <= before.calls_executed);
    }

    /// Inlining never shrinks a method's estimated size below the original
    /// when something was inlined, and leaves it bit-identical when nothing
    /// was.
    #[test]
    fn size_monotonicity(seed in any::<u64>(), params in arb_params()) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &GenConfig::default());
        let (q, stats) = inline_program(&p, &params, &HotSites::new(), &all_ids(&p));
        for (orig, new) in p.methods.iter().zip(&q.methods) {
            let st = stats[&orig.id];
            if st.inlined == 0 {
                prop_assert_eq!(orig, new);
            } else {
                // A splice replaces a call (≥ 5 units) with a body plus
                // plumbing; bodies below ALWAYS_INLINE_SIZE can be smaller
                // than the call they replace, so sizes may shrink — but the
                // stats' achieved size must match the real method size.
                prop_assert_eq!(st.final_size, method_size(new));
            }
        }
    }

    /// Inlining with the disabled parameter vector is the identity.
    #[test]
    fn disabled_is_identity(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &GenConfig::default());
        let (q, _) = inline_program(&p, &InlineParams::disabled(), &HotSites::new(), &all_ids(&p));
        prop_assert_eq!(p, q);
    }

    /// The transformation is deterministic.
    #[test]
    fn transform_is_deterministic(seed in any::<u64>(), params in arb_params()) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &GenConfig::default());
        let (q1, s1) = inline_program(&p, &params, &HotSites::new(), &all_ids(&p));
        let (q2, s2) = inline_program(&p, &params, &HotSites::new(), &all_ids(&p));
        prop_assert_eq!(q1, q2);
        prop_assert_eq!(s1, s2);
    }

    /// Raising every threshold can only inline at least as many sites at
    /// the top level of each method (monotonicity of the *first-level*
    /// decision; deeper totals can vary because splices change caller size).
    #[test]
    fn more_permissive_params_inline_no_fewer_calls_dynamically(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &GenConfig::default());
        let tight = InlineParams {
            callee_max_size: 10,
            always_inline_size: 3,
            max_inline_depth: 1,
            caller_max_size: 100_000,
            hot_callee_max_size: 0,
        };
        let loose = InlineParams {
            callee_max_size: 100_000,
            always_inline_size: 100_000,
            max_inline_depth: 50,
            caller_max_size: 100_000,
            hot_callee_max_size: 0,
        };
        prop_assume!(run(&p, &[], &limits()).is_ok());
        let (qt, _) = inline_program(&p, &tight, &HotSites::new(), &all_ids(&p));
        let (ql, _) = inline_program(&p, &loose, &HotSites::new(), &all_ids(&p));
        let rt = run(&qt, &[], &limits()).unwrap();
        let rl = run(&ql, &[], &limits()).unwrap();
        // `loose` always-inlines everything non-recursive, so it executes
        // no more dynamic calls than `tight`.
        prop_assert!(rl.calls_executed <= rt.calls_executed);
    }
}
