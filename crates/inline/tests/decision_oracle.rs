// Gated: needs the crates.io `proptest` crate (see the `proptest`
// feature note in this crate's Cargo.toml).
#![cfg(feature = "proptest")]

//! Randomized cross-check of the decision procedures against independent
//! oracle transliterations of the paper's Fig. 3 and Fig. 4 pseudo-code,
//! plus end-to-end checks that the *transformer* obeys the decisions it
//! is given.

use proptest::prelude::*;

use inliner::{hot_decision, static_decision, InlineParams};

/// Literal transliteration of Fig. 3 (kept deliberately separate from the
/// library implementation).
fn fig3_oracle(callee: u32, depth: u32, caller: u32, p: &InlineParams) -> bool {
    if callee > p.callee_max_size {
        return false;
    }
    if callee < p.always_inline_size {
        return true;
    }
    if depth > p.max_inline_depth {
        return false;
    }
    if caller > p.caller_max_size {
        return false;
    }
    true
}

/// Literal transliteration of Fig. 4.
fn fig4_oracle(callee: u32, p: &InlineParams) -> bool {
    callee <= p.hot_callee_max_size
}

prop_compose! {
    fn arb_params()(
        a in 0u32..=80,
        b in 0u32..=50,
        c in 0u32..=20,
        d in 0u32..=5000,
        e in 0u32..=500,
    ) -> InlineParams {
        InlineParams {
            callee_max_size: a,
            always_inline_size: b,
            max_inline_depth: c,
            caller_max_size: d,
            hot_callee_max_size: e,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn static_decision_matches_fig3_oracle(
        params in arb_params(),
        callee in 0u32..=100,
        depth in 0u32..=25,
        caller in 0u32..=6000,
    ) {
        prop_assert_eq!(
            static_decision(callee, depth, caller, &params).is_inline(),
            fig3_oracle(callee, depth, caller, &params),
            "callee={} depth={} caller={} params={}",
            callee, depth, caller, params
        );
    }

    #[test]
    fn hot_decision_matches_fig4_oracle(params in arb_params(), callee in 0u32..=600) {
        prop_assert_eq!(
            hot_decision(callee, &params).is_inline(),
            fig4_oracle(callee, &params),
            "callee={} params={}",
            callee, params
        );
    }

    /// The always-inline short-circuit: when the callee is below both
    /// ALWAYS_INLINE_SIZE and CALLEE_MAX_SIZE, depth and caller size are
    /// irrelevant — a subtle ordering property of the original heuristic.
    #[test]
    fn always_inline_ignores_depth_and_caller(
        params in arb_params(),
        frac in 0.0f64..1.0,
        d1 in 0u32..=25, d2 in 0u32..=25,
        c1 in 0u32..=6000, c2 in 0u32..=6000,
    ) {
        prop_assume!(params.always_inline_size > 0);
        // Construct a callee inside the always-inline band directly.
        let upper = (params.always_inline_size - 1).min(params.callee_max_size);
        let callee = (frac * f64::from(upper + 1)).floor() as u32;
        prop_assume!(callee < params.always_inline_size && callee <= params.callee_max_size);
        prop_assert!(static_decision(callee, d1, c1, &params).is_inline());
        prop_assert_eq!(
            static_decision(callee, d1, c1, &params),
            static_decision(callee, d2, c2, &params)
        );
    }

    /// Oversized callees are rejected regardless of everything else —
    /// test 1 dominates even the always-inline test.
    #[test]
    fn callee_cap_dominates(params in arb_params(), depth in 0u32..=25, caller in 0u32..=6000) {
        let callee = params.callee_max_size.saturating_add(1);
        prop_assert!(!static_decision(callee, depth, caller, &params).is_inline());
    }
}
