//! The Jikes-RVM-style inlining subsystem: the tunable heuristic of the
//! paper (*Automatic Tuning of Inlining Heuristics*, Cavazos & O'Boyle,
//! SC 2005) and the inlining transformation it controls.
//!
//! Three pieces:
//!
//! * [`params::InlineParams`] — the five tunable thresholds of the paper's
//!   Table 1, with the Jikes RVM default values (Table 4, column 1) and the
//!   genetic-algorithm search ranges;
//! * [`decision`] — the decision procedures, transcribed from the paper's
//!   Fig. 3 (optimizing heuristic: a cascade of four size/depth tests) and
//!   Fig. 4 (adaptive hot-call-site heuristic: a single size test);
//! * [`transform`] — the inliner itself: a bottom-up body-splicing pass that
//!   renames the callee's registers into the caller's (grown) frame, wires
//!   arguments and return values through `Mov`s, tracks the growing caller
//!   size estimate (so `CALLER_MAX_SIZE` bounds cumulative expansion),
//!   guards against recursion via an inline stack, and records per-decision
//!   statistics.
//!
//! The transformation is semantics-preserving; `tests/` in this crate prove
//! it with property-based testing against the IR interpreter.

pub mod decision;
pub mod params;
pub mod transform;

pub use decision::{hot_decision, static_decision, InlineDecision, RejectReason};
pub use params::{InlineParams, ParamRanges, PARAM_NAMES};
pub use transform::{
    inline_method, inline_method_traced, inline_program, DecisionRecord, HotSites, InlineStats,
};
