//! The tunable inlining parameters (the paper's Table 1) and their Jikes
//! RVM default values (Table 4, column "Default").

/// The five parameters controlling the Jikes RVM inlining heuristic.
///
/// Units are "estimated machine instructions" as computed by
/// [`ir::size::method_size`]; depths count nested inlining decisions at a
/// call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InlineParams {
    /// Maximum callee size allowable to inline (Fig. 3, test 1).
    pub callee_max_size: u32,
    /// Callees smaller than this are always inlined (Fig. 3, test 2).
    pub always_inline_size: u32,
    /// Maximum inlining depth at a call site (Fig. 3, test 3).
    pub max_inline_depth: u32,
    /// Maximum caller size to inline into (Fig. 3, test 4).
    pub caller_max_size: u32,
    /// Maximum *hot* callee size to inline (Fig. 4) — only consulted under
    /// the adaptive compilation scenario.
    pub hot_callee_max_size: u32,
}

impl InlineParams {
    /// The values shipped with Jikes RVM 2.3.3 (paper Table 4, "Default").
    #[must_use]
    pub fn jikes_default() -> Self {
        Self {
            callee_max_size: 23,
            always_inline_size: 11,
            max_inline_depth: 5,
            caller_max_size: 2048,
            hot_callee_max_size: 135,
        }
    }

    /// Parameters that inline nothing (used as the "no inlining" baseline
    /// of the paper's Fig. 1): every callee fails the `CALLEE_MAX_SIZE`
    /// test (all method sizes are ≥ 1) and the hot test.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            callee_max_size: 0,
            always_inline_size: 0,
            max_inline_depth: 0,
            caller_max_size: 0,
            hot_callee_max_size: 0,
        }
    }

    /// Constructs parameters from a genome vector in the fixed order of
    /// [`PARAM_NAMES`].
    ///
    /// # Panics
    /// Panics if `genes.len() != 5`.
    #[must_use]
    pub fn from_genes(genes: &[i64]) -> Self {
        assert_eq!(genes.len(), 5, "inline genome must have 5 genes");
        let g = |i: usize| -> u32 { genes[i].clamp(0, i64::from(u32::MAX)) as u32 };
        Self {
            callee_max_size: g(0),
            always_inline_size: g(1),
            max_inline_depth: g(2),
            caller_max_size: g(3),
            hot_callee_max_size: g(4),
        }
    }

    /// The genome vector for this parameter set (inverse of
    /// [`from_genes`](Self::from_genes)).
    #[must_use]
    pub fn to_genes(self) -> Vec<i64> {
        vec![
            i64::from(self.callee_max_size),
            i64::from(self.always_inline_size),
            i64::from(self.max_inline_depth),
            i64::from(self.caller_max_size),
            i64::from(self.hot_callee_max_size),
        ]
    }
}

impl Default for InlineParams {
    fn default() -> Self {
        Self::jikes_default()
    }
}

impl std::fmt::Display for InlineParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[callee_max={}, always={}, depth={}, caller_max={}, hot_callee_max={}]",
            self.callee_max_size,
            self.always_inline_size,
            self.max_inline_depth,
            self.caller_max_size,
            self.hot_callee_max_size
        )
    }
}

/// Parameter names in genome order (for reports and Table 4 output).
pub const PARAM_NAMES: [&str; 5] = [
    "CALLEE_MAX_SIZE",
    "ALWAYS_INLINE_SIZE",
    "MAX_INLINE_DEPTH",
    "CALLER_MAX_SIZE",
    "HOT_CALLEE_MAX_SIZE",
];

/// The search ranges of the paper's Table 1 (inclusive), in genome order.
///
/// The `ALWAYS_INLINE_SIZE` upper bound is reconstructed as 30 (the table
/// row is partially illegible in the source; the paper's found values range
/// 6–16 and the Jikes default is 11, all comfortably inside 1–30).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamRanges {
    /// Inclusive `(lo, hi)` bounds per gene.
    pub bounds: [(i64, i64); 5],
}

impl ParamRanges {
    /// Table 1 ranges.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            bounds: [(1, 50), (1, 30), (1, 15), (1, 4000), (1, 400)],
        }
    }

    /// Ranges for the optimizing scenario, where `HOT_CALLEE_MAX_SIZE` is
    /// unused (the paper reports "NA" for it under `Opt`): the hot gene is
    /// pinned to the default so the search space collapses to four
    /// dimensions.
    #[must_use]
    pub fn paper_opt_only() -> Self {
        let mut r = Self::paper();
        let hot = i64::from(InlineParams::jikes_default().hot_callee_max_size);
        r.bounds[4] = (hot, hot);
        r
    }

    /// Total number of distinct genomes in the search space.
    #[must_use]
    pub fn cardinality(&self) -> u128 {
        self.bounds
            .iter()
            .map(|(lo, hi)| (hi - lo + 1) as u128)
            .product()
    }

    /// Whether a genome lies inside the ranges.
    #[must_use]
    pub fn contains(&self, genes: &[i64]) -> bool {
        genes.len() == 5
            && genes
                .iter()
                .zip(&self.bounds)
                .all(|(g, (lo, hi))| g >= lo && g <= hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table4() {
        let d = InlineParams::jikes_default();
        assert_eq!(d.callee_max_size, 23);
        assert_eq!(d.always_inline_size, 11);
        assert_eq!(d.max_inline_depth, 5);
        assert_eq!(d.caller_max_size, 2048);
        assert_eq!(d.hot_callee_max_size, 135);
    }

    #[test]
    fn genome_roundtrip() {
        let p = InlineParams {
            callee_max_size: 49,
            always_inline_size: 15,
            max_inline_depth: 10,
            caller_max_size: 60,
            hot_callee_max_size: 138,
        };
        assert_eq!(InlineParams::from_genes(&p.to_genes()), p);
    }

    #[test]
    fn from_genes_clamps_out_of_domain_values() {
        let p = InlineParams::from_genes(&[-5, 11, 5, 2048, 135]);
        assert_eq!(p.callee_max_size, 0);
    }

    #[test]
    #[should_panic(expected = "5 genes")]
    fn from_genes_rejects_wrong_length() {
        let _ = InlineParams::from_genes(&[1, 2, 3]);
    }

    #[test]
    fn paper_ranges_are_large() {
        let r = ParamRanges::paper();
        // The paper quotes ~3e11 keys; our reconstructed table gives ~3.6e10,
        // far beyond exhaustive search either way.
        assert!(r.cardinality() > 1e10 as u128, "{}", r.cardinality());
    }

    #[test]
    fn ranges_contain_defaults() {
        let r = ParamRanges::paper();
        assert!(r.contains(&InlineParams::jikes_default().to_genes()));
        assert!(!r.contains(&InlineParams::disabled().to_genes()));
        assert!(!r.contains(&[1, 1, 1, 1]));
    }

    #[test]
    fn opt_only_ranges_pin_hot_gene() {
        let r = ParamRanges::paper_opt_only();
        assert_eq!(r.bounds[4], (135, 135));
        assert!(r.cardinality() < ParamRanges::paper().cardinality());
    }

    #[test]
    fn display_is_readable() {
        let s = InlineParams::jikes_default().to_string();
        assert!(s.contains("callee_max=23"));
    }
}
