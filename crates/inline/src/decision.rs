//! The inlining decision procedures, transcribed from the paper.
//!
//! [`static_decision`] is Fig. 3 ("Optimizing Inlining Heuristic"):
//!
//! ```text
//! inliningHeuristic(calleeSize, inlineDepth, callerSize)
//!   if (calleeSize > CALLEE_MAX_SIZE)      return NO;
//!   if (calleeSize < ALWAYS_INLINE_SIZE)   return YES;
//!   if (inlineDepth > MAX_INLINE_DEPTH)    return NO;
//!   if (callerSize > CALLER_MAX_SIZE)      return NO;
//!   return YES;
//! ```
//!
//! [`hot_decision`] is Fig. 4 ("Adaptive Inlining Heuristic"), used for
//! profile-identified hot call sites during adaptive recompilation:
//!
//! ```text
//! inlineHotCallSite(calleeSize)
//!   if (calleeSize > HOT_CALLEE_MAX_SIZE)  return NO;
//!   return YES;
//! ```
//!
//! The test order matters: a tiny callee is always inlined *even at depths
//! beyond `MAX_INLINE_DEPTH` or into oversized callers*, because the
//! always-inline test precedes those tests — a subtlety of the original
//! heuristic that our truth-table tests pin down.

use crate::params::InlineParams;

/// Why a call site was not inlined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Fig. 3 test 1: callee bigger than `CALLEE_MAX_SIZE`.
    CalleeTooBig,
    /// Fig. 3 test 3: inline depth beyond `MAX_INLINE_DEPTH`.
    TooDeep,
    /// Fig. 3 test 4: caller grew beyond `CALLER_MAX_SIZE`.
    CallerTooBig,
    /// Fig. 4: hot callee bigger than `HOT_CALLEE_MAX_SIZE`.
    HotCalleeTooBig,
    /// Inline-stack guard: the callee is already being inlined along this
    /// chain (direct or mutual recursion).
    Recursive,
    /// Machine limit: inlining would overflow the caller's register frame.
    FrameLimit,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectReason::CalleeTooBig => "callee exceeds CALLEE_MAX_SIZE",
            RejectReason::TooDeep => "depth exceeds MAX_INLINE_DEPTH",
            RejectReason::CallerTooBig => "caller exceeds CALLER_MAX_SIZE",
            RejectReason::HotCalleeTooBig => "hot callee exceeds HOT_CALLEE_MAX_SIZE",
            RejectReason::Recursive => "recursive call chain",
            RejectReason::FrameLimit => "register frame limit",
        };
        f.write_str(s)
    }
}

/// Outcome of a decision procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InlineDecision {
    /// Inline, because the callee was below `ALWAYS_INLINE_SIZE`.
    YesAlways,
    /// Inline, because all tests passed.
    Yes,
    /// Do not inline.
    No(RejectReason),
}

impl InlineDecision {
    /// Whether the decision is to inline.
    #[must_use]
    pub fn is_inline(self) -> bool {
        matches!(self, InlineDecision::Yes | InlineDecision::YesAlways)
    }
}

/// Fig. 3: the optimizing-compiler heuristic.
///
/// `inline_depth` is the number of inlining steps already taken at this
/// call site (0 for a call site in the original method body).
#[must_use]
pub fn static_decision(
    callee_size: u32,
    inline_depth: u32,
    caller_size: u32,
    params: &InlineParams,
) -> InlineDecision {
    if callee_size > params.callee_max_size {
        return InlineDecision::No(RejectReason::CalleeTooBig);
    }
    if callee_size < params.always_inline_size {
        return InlineDecision::YesAlways;
    }
    if inline_depth > params.max_inline_depth {
        return InlineDecision::No(RejectReason::TooDeep);
    }
    if caller_size > params.caller_max_size {
        return InlineDecision::No(RejectReason::CallerTooBig);
    }
    InlineDecision::Yes
}

/// Fig. 4: the adaptive hot-call-site heuristic.
#[must_use]
pub fn hot_decision(callee_size: u32, params: &InlineParams) -> InlineDecision {
    if callee_size > params.hot_callee_max_size {
        return InlineDecision::No(RejectReason::HotCalleeTooBig);
    }
    InlineDecision::Yes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> InlineParams {
        InlineParams {
            callee_max_size: 23,
            always_inline_size: 11,
            max_inline_depth: 5,
            caller_max_size: 2048,
            hot_callee_max_size: 135,
        }
    }

    #[test]
    fn test1_large_callee_rejected_first() {
        // Even at depth 0 in a tiny caller.
        assert_eq!(
            static_decision(24, 0, 1, &params()),
            InlineDecision::No(RejectReason::CalleeTooBig)
        );
        // Boundary: exactly CALLEE_MAX_SIZE passes test 1.
        assert!(static_decision(23, 0, 1, &params()).is_inline());
    }

    #[test]
    fn test2_tiny_callee_always_inlined() {
        // Depth and caller size are irrelevant for tiny callees: the
        // always-inline test fires before the depth and caller tests.
        assert_eq!(
            static_decision(10, 99, 1_000_000, &params()),
            InlineDecision::YesAlways
        );
        // Boundary: size == ALWAYS_INLINE_SIZE is NOT "less than".
        assert_ne!(
            static_decision(11, 99, 1_000_000, &params()),
            InlineDecision::YesAlways
        );
    }

    #[test]
    fn test3_depth_limit() {
        assert_eq!(
            static_decision(15, 6, 100, &params()),
            InlineDecision::No(RejectReason::TooDeep)
        );
        // Boundary: depth == MAX_INLINE_DEPTH passes.
        assert_eq!(static_decision(15, 5, 100, &params()), InlineDecision::Yes);
    }

    #[test]
    fn test4_caller_limit() {
        assert_eq!(
            static_decision(15, 0, 2049, &params()),
            InlineDecision::No(RejectReason::CallerTooBig)
        );
        // Boundary: caller == CALLER_MAX_SIZE passes.
        assert_eq!(static_decision(15, 0, 2048, &params()), InlineDecision::Yes);
    }

    #[test]
    fn all_tests_pass_means_yes() {
        assert_eq!(static_decision(20, 3, 500, &params()), InlineDecision::Yes);
    }

    #[test]
    fn hot_test_is_a_single_threshold() {
        assert_eq!(hot_decision(135, &params()), InlineDecision::Yes);
        assert_eq!(
            hot_decision(136, &params()),
            InlineDecision::No(RejectReason::HotCalleeTooBig)
        );
    }

    #[test]
    fn disabled_params_inline_nothing() {
        let p = InlineParams::disabled();
        for size in 1..200 {
            assert!(!static_decision(size, 0, 1, &p).is_inline(), "size {size}");
            assert!(!hot_decision(size, &p).is_inline(), "hot size {size}");
        }
    }

    #[test]
    fn exhaustive_truth_table_against_reference() {
        // Cross-check the cascade against a direct transliteration for a
        // grid of inputs.
        let p = params();
        let reference = |callee: u32, depth: u32, caller: u32| -> bool {
            if callee > p.callee_max_size {
                return false;
            }
            if callee < p.always_inline_size {
                return true;
            }
            if depth > p.max_inline_depth {
                return false;
            }
            if caller > p.caller_max_size {
                return false;
            }
            true
        };
        for callee in [0, 1, 10, 11, 12, 22, 23, 24, 100] {
            for depth in [0, 1, 4, 5, 6, 20] {
                for caller in [0, 1, 2047, 2048, 2049, 100_000] {
                    assert_eq!(
                        static_decision(callee, depth, caller, &p).is_inline(),
                        reference(callee, depth, caller),
                        "callee={callee} depth={depth} caller={caller}"
                    );
                }
            }
        }
    }
}
