//! The inlining transformation: body splicing under the heuristic's
//! control.
//!
//! For each call site the transformer consults the decision procedures of
//! [`crate::decision`]; on YES it replaces the call with
//!
//! 1. one `Mov` per parameter (argument → renamed callee parameter
//!    register),
//! 2. the callee's body with every register shifted into a freshly
//!    reserved block of the caller's frame,
//! 3. one `Mov` for the return value (if the call's result is used),
//!
//! and then recursively considers the *callee's* call sites at
//! `depth + 1` — so `MAX_INLINE_DEPTH` bounds transitive inlining exactly as
//! in Jikes RVM. The running caller-size estimate grows with each decision,
//! which is what gives `CALLER_MAX_SIZE` its cumulative-code-growth meaning.
//!
//! Guards beyond the paper's pseudo-code (both present in Jikes RVM's
//! implementation): an **inline stack** rejects direct or mutual recursion,
//! and a **frame limit** rejects splices that would overflow the `u16`
//! register file.

use std::collections::{HashMap, HashSet};

use ir::method::{Method, MethodId};
use ir::op::{OpKind, Operand, Reg};
use ir::program::Program;
use ir::size::{body_size, method_size};
use ir::stmt::{CallSiteId, CallStmt, OpStmt, Stmt};

use crate::decision::{hot_decision, static_decision, InlineDecision, RejectReason};
use crate::params::InlineParams;

/// One record of the `-verbose:inline`-style decision trace: what the
/// heuristic saw and what it chose, at one (possibly spliced) call site.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// The call site (stable under splicing — copies share the id).
    pub site: CallSiteId,
    /// The callee under consideration.
    pub callee: MethodId,
    /// Inline depth at the decision (0 = original body).
    pub depth: u32,
    /// The callee's estimated (bytecode) size.
    pub callee_size: u32,
    /// The caller's running size estimate at decision time.
    pub caller_size: u32,
    /// Whether the site was profiled hot (Fig. 4 applied).
    pub hot: bool,
    /// The verdict.
    pub decision: InlineDecision,
}

/// The set of call sites the adaptive system's profile marked hot.
///
/// Hot sites are decided by the Fig. 4 single-threshold test instead of the
/// Fig. 3 cascade. Pass an empty set under the optimizing scenario.
pub type HotSites = HashSet<CallSiteId>;

/// Per-method inlining statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InlineStats {
    /// Call sites examined (including sites inside spliced bodies).
    pub considered: u32,
    /// Sites inlined (all kinds).
    pub inlined: u32,
    /// Sites inlined by the always-inline test.
    pub always_inlined: u32,
    /// Hot sites examined with the Fig. 4 test.
    pub hot_considered: u32,
    /// Hot sites inlined.
    pub hot_inlined: u32,
    /// Rejections: callee exceeded `CALLEE_MAX_SIZE`.
    pub rej_callee_size: u32,
    /// Rejections: depth exceeded `MAX_INLINE_DEPTH`.
    pub rej_depth: u32,
    /// Rejections: caller exceeded `CALLER_MAX_SIZE`.
    pub rej_caller_size: u32,
    /// Rejections: hot callee exceeded `HOT_CALLEE_MAX_SIZE`.
    pub rej_hot_size: u32,
    /// Rejections: recursion guard.
    pub rej_recursive: u32,
    /// Rejections: register-frame limit.
    pub rej_frame: u32,
    /// Estimated size of the method after inlining (the `S` the compile-time
    /// model charges for).
    pub final_size: u32,
    /// Deepest inline depth actually spliced.
    pub max_depth_spliced: u32,
}

impl InlineStats {
    /// Accumulates another method's stats into this one.
    pub fn merge(&mut self, o: &InlineStats) {
        self.considered += o.considered;
        self.inlined += o.inlined;
        self.always_inlined += o.always_inlined;
        self.hot_considered += o.hot_considered;
        self.hot_inlined += o.hot_inlined;
        self.rej_callee_size += o.rej_callee_size;
        self.rej_depth += o.rej_depth;
        self.rej_caller_size += o.rej_caller_size;
        self.rej_hot_size += o.rej_hot_size;
        self.rej_recursive += o.rej_recursive;
        self.rej_frame += o.rej_frame;
        self.final_size += o.final_size;
        self.max_depth_spliced = self.max_depth_spliced.max(o.max_depth_spliced);
    }

    fn record_reject(&mut self, r: RejectReason) {
        match r {
            RejectReason::CalleeTooBig => self.rej_callee_size += 1,
            RejectReason::TooDeep => self.rej_depth += 1,
            RejectReason::CallerTooBig => self.rej_caller_size += 1,
            RejectReason::HotCalleeTooBig => self.rej_hot_size += 1,
            RejectReason::Recursive => self.rej_recursive += 1,
            RejectReason::FrameLimit => self.rej_frame += 1,
        }
    }
}

struct Inliner<'a> {
    program: &'a Program,
    params: &'a InlineParams,
    hot: &'a HotSites,
    stats: InlineStats,
    /// Next free register in the caller frame (u32 to detect u16 overflow).
    next_reg: u32,
    /// Running caller size estimate (Fig. 3's `callerSize`).
    caller_size: u32,
    /// Methods on the current inline chain (recursion guard).
    stack: Vec<MethodId>,
    /// Optional `-verbose:inline` trace sink.
    trace: Option<Vec<DecisionRecord>>,
}

impl Inliner<'_> {
    fn remap(o: Operand, offset: u16) -> Operand {
        match o {
            Operand::Reg(r) => Operand::Reg(Reg(r.0 + offset)),
            imm @ Operand::Imm(_) => imm,
        }
    }

    fn decide(&mut self, call: &CallStmt, depth: u32) -> InlineDecision {
        let callee = self.program.method(call.callee);
        let callee_size = method_size(callee);
        self.stats.considered += 1;

        let is_hot = self.hot.contains(&call.site);
        let decision = if self.stack.contains(&call.callee) {
            InlineDecision::No(RejectReason::Recursive)
        } else {
            let d = if is_hot {
                self.stats.hot_considered += 1;
                hot_decision(callee_size, self.params)
            } else {
                static_decision(callee_size, depth, self.caller_size, self.params)
            };
            if d.is_inline() && self.next_reg + u32::from(callee.n_regs) > u32::from(u16::MAX) {
                InlineDecision::No(RejectReason::FrameLimit)
            } else {
                d
            }
        };
        if let Some(trace) = &mut self.trace {
            trace.push(DecisionRecord {
                site: call.site,
                callee: call.callee,
                depth,
                callee_size,
                caller_size: self.caller_size,
                hot: is_hot,
                decision,
            });
        }
        decision
    }

    fn expand_body(&mut self, body: &[Stmt], offset: u16, depth: u32, out: &mut Vec<Stmt>) {
        for stmt in body {
            match stmt {
                Stmt::Op(o) => out.push(Stmt::Op(OpStmt {
                    op: o.op,
                    dst: Reg(o.dst.0 + offset),
                    a: Self::remap(o.a, offset),
                    b: Self::remap(o.b, offset),
                })),
                Stmt::Loop { trips, body } => {
                    let mut inner = Vec::with_capacity(body.len());
                    self.expand_body(body, offset, depth, &mut inner);
                    out.push(Stmt::Loop {
                        trips: *trips,
                        body: inner,
                    });
                }
                Stmt::If {
                    cond,
                    prob_true,
                    then_b,
                    else_b,
                } => {
                    let mut t = Vec::with_capacity(then_b.len());
                    let mut e = Vec::with_capacity(else_b.len());
                    self.expand_body(then_b, offset, depth, &mut t);
                    self.expand_body(else_b, offset, depth, &mut e);
                    out.push(Stmt::If {
                        cond: Self::remap(*cond, offset),
                        prob_true: *prob_true,
                        then_b: t,
                        else_b: e,
                    });
                }
                Stmt::Call(c) => {
                    let remapped = CallStmt {
                        site: c.site,
                        callee: c.callee,
                        args: c.args.iter().map(|a| Self::remap(*a, offset)).collect(),
                        dst: c.dst.map(|d| Reg(d.0 + offset)),
                    };
                    let decision = self.decide(&remapped, depth);
                    let was_hot = self.hot.contains(&remapped.site);
                    match decision {
                        InlineDecision::Yes | InlineDecision::YesAlways => {
                            self.stats.inlined += 1;
                            if decision == InlineDecision::YesAlways {
                                self.stats.always_inlined += 1;
                            }
                            if was_hot {
                                self.stats.hot_inlined += 1;
                            }
                            self.splice(&remapped, depth, out);
                        }
                        InlineDecision::No(reason) => {
                            self.stats.record_reject(reason);
                            out.push(Stmt::Call(remapped));
                        }
                    }
                }
            }
        }
    }

    /// Splices the callee body for an already-approved call.
    fn splice(&mut self, call: &CallStmt, depth: u32, out: &mut Vec<Stmt>) {
        let callee = self.program.method(call.callee);
        let new_offset = self.next_reg as u16;
        self.next_reg += u32::from(callee.n_regs);
        // Jikes-style size bookkeeping: the caller estimate grows by the
        // callee body it just absorbed.
        self.caller_size = self.caller_size.saturating_add(body_size(&callee.body));
        self.stats.max_depth_spliced = self.stats.max_depth_spliced.max(depth + 1);

        // 1. Argument plumbing.
        for (i, arg) in call.args.iter().enumerate() {
            out.push(Stmt::Op(OpStmt {
                op: OpKind::Mov,
                dst: Reg(new_offset + i as u16),
                a: *arg, // already remapped by the caller
                b: Operand::Imm(0),
            }));
        }
        // 2. Body, with nested call sites considered at depth + 1.
        self.stack.push(call.callee);
        self.expand_body(&callee.body, new_offset, depth + 1, out);
        self.stack.pop();
        // 3. Return-value plumbing.
        if let Some(dst) = call.dst {
            out.push(Stmt::Op(OpStmt {
                op: OpKind::Mov,
                dst,
                a: Self::remap(callee.ret, new_offset),
                b: Operand::Imm(0),
            }));
        }
    }
}

/// Applies the inlining heuristic to one method, returning the transformed
/// method and the decision statistics.
///
/// Decisions are made against the *original* program (callee sizes are
/// bytecode sizes, as in a JIT that inlines from bytecode), so transforming
/// methods in any order yields the same result.
#[must_use]
pub fn inline_method(
    program: &Program,
    id: MethodId,
    params: &InlineParams,
    hot: &HotSites,
) -> (Method, InlineStats) {
    let (m, stats, _) = inline_method_impl(program, id, params, hot, false);
    (m, stats)
}

/// Like [`inline_method`], but also returns the full decision trace — the
/// `-verbose:inline` log a compiler engineer would read to understand why
/// a site was or wasn't inlined. Records appear in decision order,
/// including decisions inside spliced bodies (recognizable by `depth > 0`).
#[must_use]
pub fn inline_method_traced(
    program: &Program,
    id: MethodId,
    params: &InlineParams,
    hot: &HotSites,
) -> (Method, InlineStats, Vec<DecisionRecord>) {
    inline_method_impl(program, id, params, hot, true)
}

fn inline_method_impl(
    program: &Program,
    id: MethodId,
    params: &InlineParams,
    hot: &HotSites,
    traced: bool,
) -> (Method, InlineStats, Vec<DecisionRecord>) {
    let m = program.method(id);
    let mut inliner = Inliner {
        program,
        params,
        hot,
        stats: InlineStats::default(),
        next_reg: u32::from(m.n_regs),
        caller_size: method_size(m),
        stack: vec![id],
        trace: if traced { Some(Vec::new()) } else { None },
    };
    let mut body = Vec::with_capacity(m.body.len());
    inliner.expand_body(&m.body, 0, 0, &mut body);

    let n_regs = inliner.next_reg as u16;
    let mut out = Method {
        id: m.id,
        name: m.name.clone(),
        n_params: m.n_params,
        n_regs,
        body,
        ret: m.ret,
    };
    // The achieved size (may differ from the running estimate because the
    // estimate never subtracts the replaced call instructions).
    inliner.stats.final_size = method_size(&out);
    // Frames never shrink below the original.
    out.n_regs = out.n_regs.max(m.n_regs);
    (out, inliner.stats, inliner.trace.unwrap_or_default())
}

/// Applies [`inline_method`] to every listed method, producing a new
/// program (unlisted methods are copied verbatim) plus per-method stats.
#[must_use]
pub fn inline_program(
    program: &Program,
    params: &InlineParams,
    hot: &HotSites,
    targets: &[MethodId],
) -> (Program, HashMap<MethodId, InlineStats>) {
    let target_set: HashSet<MethodId> = targets.iter().copied().collect();
    let mut stats = HashMap::with_capacity(target_set.len());
    let methods = program
        .methods
        .iter()
        .map(|m| {
            if target_set.contains(&m.id) {
                let (nm, st) = inline_method(program, m.id, params, hot);
                stats.insert(m.id, st);
                nm
            } else {
                m.clone()
            }
        })
        .collect();
    (
        Program {
            name: program.name.clone(),
            methods,
            entry: program.entry,
            heap_size: program.heap_size,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::builder::{demo_program, MethodBuilder, ProgramBuilder};
    use ir::interp::{run, InterpLimits};
    use ir::validate::validate;

    use ir::op::OpKind;

    fn all_ids(p: &Program) -> Vec<MethodId> {
        p.methods.iter().map(|m| m.id).collect()
    }

    #[test]
    fn demo_inlines_and_preserves_semantics() {
        let p = demo_program();
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let (q, stats) = inline_program(
            &p,
            &InlineParams::jikes_default(),
            &HotSites::new(),
            &all_ids(&p),
        );
        assert!(validate(&q).is_empty());
        let after = run(&q, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.value, after.value);
        assert_eq!(before.heap_digest, after.heap_digest);
        assert_eq!(before.fuel_used, after.fuel_used);
        // `inc` (size ~5) is below ALWAYS_INLINE_SIZE=11 → inlined.
        let main_stats = stats
            .values()
            .find(|s| s.inlined > 0)
            .expect("some inlining");
        assert_eq!(main_stats.always_inlined, main_stats.inlined);
        // The 10 dynamic calls disappear.
        assert_eq!(after.calls_executed, 0);
        assert_eq!(before.calls_executed, 10);
    }

    #[test]
    fn disabled_params_leave_program_unchanged() {
        let p = demo_program();
        let (q, stats) = inline_program(
            &p,
            &InlineParams::disabled(),
            &HotSites::new(),
            &all_ids(&p),
        );
        assert_eq!(p, q);
        assert!(stats.values().all(|s| s.inlined == 0));
    }

    /// Builds main -> a -> b -> c chain where every method is tiny.
    fn chain(depths: u32) -> Program {
        let mut pb = ProgramBuilder::new("chain");
        let mut prev: Option<MethodId> = None;
        for i in 0..depths {
            let mut mb = MethodBuilder::new(format!("c{i}"), 1);
            let v = mb.op(OpKind::Add, mb.param(0), 1i64);
            if let Some(callee) = prev {
                let site = pb.fresh_site();
                let r = mb.call(site, callee, vec![v.into()], true).unwrap();
                mb.ret(r);
            } else {
                mb.ret(v);
            }
            prev = Some(pb.add(mb));
        }
        let mut main = MethodBuilder::new("main", 0);
        let site = pb.fresh_site();
        let r = main
            .call(site, prev.unwrap(), vec![0i64.into()], true)
            .unwrap();
        main.ret(r);
        let id = pb.add(main);
        pb.entry(id);
        pb.build().unwrap()
    }

    #[test]
    fn depth_limit_bounds_transitive_inlining() {
        let p = chain(10);
        // Tiny methods are always-inlined regardless of depth, so use
        // params where the chain methods pass via the general tests only.
        let params = InlineParams {
            callee_max_size: 50,
            always_inline_size: 1, // nothing is "tiny"
            max_inline_depth: 3,
            caller_max_size: 4000,
            hot_callee_max_size: 0,
        };
        let (m, stats) = inline_method(&p, p.entry, &params, &HotSites::new());
        // Depth 0,1,2,3 inline (4 splices); the 5th call site is at depth 4.
        assert_eq!(stats.max_depth_spliced, 4);
        assert!(stats.rej_depth >= 1);
        // The transformed method still calls the rest of the chain.
        assert!(m.call_site_count() >= 1);
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let (q, _) = inline_program(&p, &params, &HotSites::new(), &all_ids(&p));
        let after = run(&q, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.value, after.value);
    }

    #[test]
    fn always_inline_overrides_depth() {
        let p = chain(10);
        let params = InlineParams {
            callee_max_size: 50,
            always_inline_size: 30, // every chain method is "tiny"
            max_inline_depth: 1,
            caller_max_size: 4000,
            hot_callee_max_size: 0,
        };
        let (m, stats) = inline_method(&p, p.entry, &params, &HotSites::new());
        assert_eq!(stats.inlined, 10, "entire chain absorbed");
        assert_eq!(m.call_site_count(), 0);
    }

    #[test]
    fn recursion_is_never_inlined() {
        let mut pb = ProgramBuilder::new("rec");
        let rec_id = pb.declare();
        let mut rec = MethodBuilder::new("rec", 1);
        let arg = rec.param(0);
        let dec = rec.op(OpKind::Sub, arg, 1i64);
        rec.begin_if(arg, 0.4);
        let site = pb.fresh_site();
        rec.call(site, rec_id, vec![dec.into()], false);
        rec.end();
        rec.ret(dec);
        pb.define(rec_id, rec);
        let mut main = MethodBuilder::new("main", 0);
        let s = pb.fresh_site();
        let r = main.call(s, rec_id, vec![9i64.into()], true).unwrap();
        main.ret(r);
        let main_id = pb.add(main);
        pb.entry(main_id);
        let p = pb.build().unwrap();

        let generous = InlineParams {
            callee_max_size: 4000,
            always_inline_size: 4000,
            max_inline_depth: 15,
            caller_max_size: 100_000,
            hot_callee_max_size: 400,
        };
        // Inlining rec into main: the outer call inlines, the inner
        // self-call must be rejected as recursive.
        let (m, stats) = inline_method(&p, main_id, &generous, &HotSites::new());
        assert_eq!(stats.rej_recursive, 1);
        assert_eq!(m.call_site_count(), 1);
        // And rec's own body never absorbs itself.
        let (_, rec_stats) = inline_method(&p, rec_id, &generous, &HotSites::new());
        assert_eq!(rec_stats.rej_recursive, 1);
        assert_eq!(rec_stats.inlined, 0);
        // Semantics hold.
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let (q, _) = inline_program(&p, &generous, &HotSites::new(), &all_ids(&p));
        let after = run(&q, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.value, after.value);
        assert_eq!(before.heap_digest, after.heap_digest);
    }

    #[test]
    fn caller_growth_blocks_later_sites() {
        // main calls mid twice; mid is big enough that after the first
        // splice the caller exceeds CALLER_MAX_SIZE.
        let mut pb = ProgramBuilder::new("grow");
        let mut mid = MethodBuilder::new("mid", 1);
        let mut acc = mid.param(0);
        for _ in 0..20 {
            acc = mid.op(OpKind::Add, acc, 1i64);
        }
        mid.ret(acc);
        let mid_id = pb.add(mid);
        let mut main = MethodBuilder::new("main", 0);
        let s1 = pb.fresh_site();
        let r1 = main.call(s1, mid_id, vec![1i64.into()], true).unwrap();
        let s2 = pb.fresh_site();
        let r2 = main.call(s2, mid_id, vec![r1.into()], true).unwrap();
        main.ret(r2);
        let main_id = pb.add(main);
        pb.entry(main_id);
        let p = pb.build().unwrap();

        // mid size = 2 overhead + 20 adds = 22; main size ≈ 2 + 2*8 = 18.
        // caller_max 25: first splice ok (18 ≤ 25), then caller ≈ 38 > 25.
        let params = InlineParams {
            callee_max_size: 30,
            always_inline_size: 1,
            max_inline_depth: 5,
            caller_max_size: 25,
            hot_callee_max_size: 0,
        };
        let (m, stats) = inline_method(&p, main_id, &params, &HotSites::new());
        assert_eq!(stats.inlined, 1);
        assert_eq!(stats.rej_caller_size, 1);
        assert_eq!(m.call_site_count(), 1);
    }

    #[test]
    fn hot_sites_use_fig4_test() {
        // Callee too big for the static cascade but below the hot limit.
        let mut pb = ProgramBuilder::new("hot");
        let mut big = MethodBuilder::new("big", 1);
        let mut acc = big.param(0);
        for _ in 0..60 {
            acc = big.op(OpKind::Add, acc, 1i64);
        }
        big.ret(acc);
        let big_id = pb.add(big);
        let mut main = MethodBuilder::new("main", 0);
        let hot_site = pb.fresh_site();
        let cold_site = pb.fresh_site();
        let a = main
            .call(hot_site, big_id, vec![1i64.into()], true)
            .unwrap();
        let b = main.call(cold_site, big_id, vec![a.into()], true).unwrap();
        main.ret(b);
        let main_id = pb.add(main);
        pb.entry(main_id);
        let p = pb.build().unwrap();

        let params = InlineParams::jikes_default(); // callee_max 23 < 62
        let hot: HotSites = [hot_site].into_iter().collect();
        let (m, stats) = inline_method(&p, main_id, &params, &hot);
        assert_eq!(stats.hot_considered, 1);
        assert_eq!(stats.hot_inlined, 1);
        assert_eq!(stats.rej_callee_size, 1); // the cold site
        assert_eq!(m.call_site_count(), 1);
        // Semantics preserved.
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let (q, _) = inline_program(&p, &params, &hot, &all_ids(&p));
        let after = run(&q, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.value, after.value);
    }

    #[test]
    fn trace_records_every_decision_in_order() {
        let p = chain(4);
        let params = InlineParams {
            callee_max_size: 50,
            always_inline_size: 1,
            max_inline_depth: 2,
            caller_max_size: 4000,
            hot_callee_max_size: 0,
        };
        let (method, stats, trace) = inline_method_traced(&p, p.entry, &params, &HotSites::new());
        assert_eq!(trace.len() as u32, stats.considered);
        // Depths increase along the splice chain: 0, 1, 2, then reject.
        let depths: Vec<u32> = trace.iter().map(|r| r.depth).collect();
        assert_eq!(depths, vec![0, 1, 2, 3]);
        assert!(trace[..3].iter().all(|r| r.decision.is_inline()));
        assert_eq!(trace[3].decision, InlineDecision::No(RejectReason::TooDeep));
        // Caller size grows monotonically along the trace.
        assert!(trace
            .windows(2)
            .all(|w| w[1].caller_size >= w[0].caller_size));
        // Untraced and traced runs agree.
        let (m2, s2) = inline_method(&p, p.entry, &params, &HotSites::new());
        assert_eq!(method, m2);
        assert_eq!(stats, s2);
    }

    #[test]
    fn trace_marks_hot_sites() {
        let p = chain(2);
        let site = ir::stmt::call_sites(&p.method(p.entry).body)[0].site;
        let hot: HotSites = [site].into_iter().collect();
        let (_, _, trace) = inline_method_traced(&p, p.entry, &InlineParams::jikes_default(), &hot);
        assert!(trace.iter().any(|r| r.hot && r.site == site));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = InlineStats {
            considered: 2,
            inlined: 1,
            max_depth_spliced: 3,
            ..InlineStats::default()
        };
        let b = InlineStats {
            considered: 5,
            rej_depth: 2,
            max_depth_spliced: 1,
            ..InlineStats::default()
        };
        a.merge(&b);
        assert_eq!(a.considered, 7);
        assert_eq!(a.rej_depth, 2);
        assert_eq!(a.max_depth_spliced, 3);
    }

    #[test]
    fn transformed_program_validates() {
        let p = chain(6);
        let (q, _) = inline_program(
            &p,
            &InlineParams::jikes_default(),
            &HotSites::new(),
            &all_ids(&p),
        );
        assert!(validate(&q).is_empty(), "{:?}", validate(&q));
    }
}
