//! Property tests: every search strategy respects its bounds, and a
//! snapshot/restore cycle replays exactly the batch an uninterrupted
//! run would ask next.
//!
//! Gated behind the bare `proptest` cargo feature because the
//! `proptest` crate is not vendored (offline, zero-dependency builds).
//! To run:
//!
//! ```text
//! # on a networked machine:
//! #   add `proptest = "1"` under [dev-dependencies] in crates/search/Cargo.toml
//! cargo test -p inlinetune-search --features proptest
//! ```

#![cfg(feature = "proptest")]

use ga::{GaConfig, Ranges};
use proptest::prelude::*;
use search::Strategy as _;

/// Deterministic synthetic fitness over arbitrary-arity genomes.
fn fitness(g: &[i64]) -> f64 {
    g.iter()
        .enumerate()
        .map(|(i, &x)| ((x as f64) / (i as f64 + 3.0)).sin())
        .sum::<f64>()
}

/// `inline::params`-shaped bounds: a handful of genes, each a non-empty
/// inclusive range with positive low ends (the paper's cascade never
/// admits zero), including degenerate pinned genes like the Opt
/// scenario's fixed adaptive threshold.
fn arb_bounds() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((1i64..=200, 0i64..=400), 2..=6)
        .prop_map(|v| v.into_iter().map(|(lo, w)| (lo, lo + w)).collect())
}

fn arb_spec() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("ga"),
        Just("random"),
        Just("hillclimb"),
        Just("anneal"),
        Just("grid"),
        Just("race"),
        Just("race:anneal+grid"),
    ]
}

fn cfg(seed: u64, pop: usize, gens: usize) -> GaConfig {
    GaConfig {
        pop_size: pop,
        generations: gens,
        threads: 1,
        seed,
        stagnation_limit: None,
        ..GaConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_ask_stays_within_bounds(
        bounds in arb_bounds(),
        spec in arb_spec(),
        seed in any::<u64>(),
        pop in 2usize..=10,
        gens in 1usize..=8,
    ) {
        let ranges = Ranges::new(bounds);
        let mut s = search::build(spec, ranges.clone(), cfg(seed, pop, gens)).unwrap();
        let mut guard = 0;
        while !s.is_done() {
            let batch = s.ask();
            for g in &batch {
                prop_assert!(
                    ranges.contains(g),
                    "{spec} proposed {g:?} outside {ranges:?}"
                );
            }
            let scores: Vec<f64> = batch.iter().map(|g| fitness(g)).collect();
            s.tell(&batch, &scores);
            guard += 1;
            prop_assert!(guard < 2_000, "{spec} never terminated");
        }
        if let Some((g, _)) = s.best() {
            prop_assert!(ranges.contains(&g));
        }
    }

    #[test]
    fn snapshot_restore_ask_equals_uninterrupted_ask(
        bounds in arb_bounds(),
        spec in arb_spec(),
        seed in any::<u64>(),
        rounds_before in 0usize..6,
    ) {
        let ranges = Ranges::new(bounds);
        let mut s = search::build(spec, ranges, cfg(seed, 6, 8)).unwrap();
        for _ in 0..rounds_before {
            if s.is_done() {
                break;
            }
            let batch = s.ask();
            let scores: Vec<f64> = batch.iter().map(|g| fitness(g)).collect();
            s.tell(&batch, &scores);
        }
        let uninterrupted = s.ask();
        let mut resumed = search::restore(s.snapshot()).unwrap();
        prop_assert_eq!(
            resumed.ask(),
            uninterrupted,
            "{} restore replayed a different batch",
            spec
        );
        prop_assert_eq!(resumed.rounds(), s.rounds());
        prop_assert_eq!(resumed.evaluations(), s.evaluations());
    }
}
