//! Regression: the GA behind the `Strategy` trait must reproduce the
//! legacy `ga::GaState` run *exactly* — same seed, same best genome,
//! same per-generation fitness trace, same counters — so the search
//! seam cannot silently change published experiment numbers.

use ga::{GaConfig, GaState, LocalEvaluator, Ranges};
use search::{restore, step_with, Strategy};

/// The paper's Adapt-scenario bounds.
fn paper_ranges() -> Ranges {
    Ranges::new(vec![(1, 50), (1, 30), (1, 15), (1, 4000), (1, 400)])
}

/// A deterministic stand-in for the simulator's fitness surface, with
/// interactions between genes so the GA's trajectory is non-trivial.
fn fitness(g: &[i64]) -> f64 {
    let (a, b, c, d, e) = (
        g[0] as f64,
        g[1] as f64,
        g[2] as f64,
        g[3] as f64,
        g[4] as f64,
    );
    let size_term = ((a - 29.0) / 50.0).powi(2) + ((b - 17.0) / 30.0).powi(2);
    let depth_term = ((c - 6.0) / 15.0).powi(2);
    let cascade = ((d - 1500.0) / 4000.0).powi(2) * (1.0 + ((e - 150.0) / 400.0).abs());
    (1.0 + size_term + depth_term + cascade).ln()
}

fn cfg(seed: u64, generations: usize) -> GaConfig {
    GaConfig {
        pop_size: 12,
        generations,
        threads: 1,
        seed,
        stagnation_limit: Some(8),
        ..GaConfig::default()
    }
}

#[test]
fn adapter_reproduces_legacy_run_bit_for_bit() {
    for seed in [0x6a11, 2005, 42] {
        // The legacy path: GaState driven directly with a closure.
        let mut legacy = GaState::new(paper_ranges(), cfg(seed, 40));
        while !legacy.step(&fitness) {}

        // The new path: the same engine behind ask/tell.
        let mut adapted = search::build("ga", paper_ranges(), cfg(seed, 40)).unwrap();
        let backend = LocalEvaluator::new(fitness, 1);
        while !step_with(adapted.as_mut(), &backend) {}

        // Same best genome, same fitness bits.
        let (lg, lf) = legacy.best().expect("legacy best");
        let (ag, af) = adapted.best().expect("adapted best");
        assert_eq!(lg, &ag, "seed {seed}: best genome diverged");
        assert_eq!(
            lf.to_bits(),
            af.to_bits(),
            "seed {seed}: fitness bits diverged"
        );

        // Same fitness trace, generation by generation.
        let legacy_trace: Vec<u64> = legacy
            .history()
            .iter()
            .map(|g| g.best_fitness.to_bits())
            .collect();
        let adapted_snapshot = match adapted.snapshot() {
            search::StrategySnapshot::Ga(s) => s,
            other => panic!("ga adapter must snapshot as Ga, got {}", other.kind()),
        };
        let adapted_trace: Vec<u64> = adapted_snapshot
            .history
            .iter()
            .map(|g| g.best_fitness.to_bits())
            .collect();
        assert_eq!(legacy_trace, adapted_trace, "seed {seed}: trace diverged");

        // Same bookkeeping (memoization behaved identically).
        assert_eq!(legacy.evaluations(), adapted.evaluations());
        assert_eq!(legacy.cache_hits(), adapted.cache_hits());
        assert_eq!(legacy.generation(), adapted.rounds());

        // And the full snapshots agree, which covers population, RNG
        // state, memo contents and stagnation bookkeeping at once.
        assert_eq!(legacy.snapshot(), adapted_snapshot);
    }
}

#[test]
fn adapter_survives_snapshot_restore_mid_run_like_the_engine() {
    let backend = LocalEvaluator::new(fitness, 1);
    let mut uninterrupted = search::build("ga", paper_ranges(), cfg(7, 25)).unwrap();
    let mut cycled = search::build("ga", paper_ranges(), cfg(7, 25)).unwrap();
    while !uninterrupted.is_done() {
        cycled = restore(cycled.snapshot()).expect("restore");
        step_with(uninterrupted.as_mut(), &backend);
        step_with(cycled.as_mut(), &backend);
    }
    assert!(cycled.is_done());
    let (ug, uf) = uninterrupted.best().unwrap();
    let (cg, cf) = cycled.best().unwrap();
    assert_eq!(ug, cg);
    assert_eq!(uf.to_bits(), cf.to_bits());
}

#[test]
fn adapter_stops_early_on_stagnation_exactly_like_the_engine() {
    // A flat surface stagnates immediately; both paths must stop at
    // the same generation, well before the configured maximum.
    let flat = |_: &[i64]| 1.0;
    let mut legacy = GaState::new(paper_ranges(), cfg(9, 500));
    while !legacy.step(&flat) {}
    let mut adapted = search::build("ga", paper_ranges(), cfg(9, 500)).unwrap();
    let backend = LocalEvaluator::new(flat, 1);
    while !step_with(adapted.as_mut(), &backend) {}
    assert!(legacy.generation() < 500, "stagnation limit never fired");
    assert_eq!(legacy.generation(), adapted.rounds());
}
