//! Deterministic coarse-to-fine grid refinement.
//!
//! Level 0 samples a 3-point lattice per gene (low, mid, high of the
//! full range) and sweeps the full factorial in lexicographic order.
//! When a level is exhausted, the window re-centers on the best genome
//! seen so far and halves per gene, then the next lattice is swept —
//! so the search spends its budget zooming into the best cell. No RNG
//! at all: the trajectory is a pure function of the fitness surface.

use std::sync::Arc;

use ga::{GaConfig, Genome, Ranges};

use crate::core::{Core, CoreSnapshot};
use crate::{Strategy, StrategySnapshot};

/// Coarse-to-fine factorial grid search.
pub struct Grid {
    core: Core,
    /// Current per-gene sampling window, always inside the bounds.
    window: Vec<(i64, i64)>,
    /// Next factorial index to sweep within the current level.
    cursor: usize,
    /// Refinement depth (level 0 spans the full ranges).
    level: usize,
    pending: Option<Pending>,
}

struct Pending {
    drawn: Vec<Genome>,
    misses: Vec<Genome>,
    /// Factorial indices consumed by this round (cursor advance).
    taken: usize,
}

impl Grid {
    pub fn new(ranges: Ranges, config: GaConfig, label: &str) -> Result<Self, String> {
        let window = ranges.iter().collect();
        Ok(Grid {
            core: Core::new(ranges, config, label)?,
            window,
            cursor: 0,
            level: 0,
            pending: None,
        })
    }

    pub fn restore(s: GridSnapshot, label: &str) -> Result<Self, String> {
        let core = Core::restore(s.core, label)?;
        if s.window.len() != core.ranges.len() {
            return Err("snapshot window arity does not match the bounds".into());
        }
        for (i, &(lo, hi)) in s.window.iter().enumerate() {
            let (blo, bhi) = core.ranges.gene(i);
            if lo > hi || lo < blo || hi > bhi {
                return Err(format!("snapshot window {lo}..{hi} escapes gene {i}"));
            }
        }
        let total = Self::lattice(&s.window).iter().map(Vec::len).product();
        if s.cursor > total {
            return Err("snapshot cursor is past the end of its lattice".into());
        }
        Ok(Grid {
            core,
            window: s.window,
            cursor: s.cursor,
            level: s.level,
            pending: None,
        })
    }

    /// The 3-point-per-gene sample lattice of a window (fewer points
    /// where the window is narrower than 3 values).
    fn lattice(window: &[(i64, i64)]) -> Vec<Vec<i64>> {
        window
            .iter()
            .map(|&(lo, hi)| {
                let mut v = vec![lo, lo + (hi - lo) / 2, hi];
                v.dedup();
                v
            })
            .collect()
    }

    /// The `idx`-th lattice point, lexicographic with the first gene
    /// most significant.
    fn decode(lattice: &[Vec<i64>], mut idx: usize) -> Genome {
        let mut g = vec![0; lattice.len()];
        for (i, samples) in lattice.iter().enumerate().rev() {
            g[i] = samples[idx % samples.len()];
            idx /= samples.len();
        }
        g
    }

    /// Halves the window around the best genome; flips `done` once the
    /// window has collapsed to a single point.
    fn refine(&mut self) {
        if self.window.iter().all(|&(lo, hi)| lo == hi) {
            self.core.done = true;
            return;
        }
        let center = self
            .core
            .best
            .as_ref()
            .expect("a completed grid level always has a best")
            .0
            .clone();
        self.window = self
            .window
            .iter()
            .zip(&center)
            .enumerate()
            .map(|(i, (&(lo, hi), &c))| {
                let (blo, bhi) = self.core.ranges.gene(i);
                let half = (hi - lo) / 4;
                ((c - half).max(blo), (c + half).min(bhi))
            })
            .collect();
        self.cursor = 0;
        self.level += 1;
    }
}

impl Strategy for Grid {
    fn kind(&self) -> &'static str {
        "grid"
    }

    fn config(&self) -> &GaConfig {
        &self.core.config
    }

    fn ask(&mut self) -> Vec<Genome> {
        if self.core.done {
            return Vec::new();
        }
        if self.pending.is_none() {
            let lattice = Self::lattice(&self.window);
            let total: usize = lattice.iter().map(Vec::len).product();
            let taken = self.core.batch_size().min(total - self.cursor);
            let drawn: Vec<Genome> = (self.cursor..self.cursor + taken)
                .map(|i| Self::decode(&lattice, i))
                .collect();
            let misses = self.core.split(&drawn);
            self.pending = Some(Pending {
                drawn,
                misses,
                taken,
            });
        }
        self.pending.as_ref().unwrap().misses.clone()
    }

    fn tell(&mut self, batch: &[Genome], scores: &[f64]) {
        if self.core.done && self.pending.is_none() {
            assert!(batch.is_empty(), "tell on a finished search");
            return;
        }
        let p = self.pending.take().expect("tell before ask");
        assert_eq!(batch, &p.misses[..], "tell batch must be what ask returned");
        self.core.commit(&p.drawn, batch, scores);
        self.cursor += p.taken;
        let total: usize = Self::lattice(&self.window).iter().map(Vec::len).product();
        if !self.core.done && self.cursor >= total {
            self.refine();
        }
    }

    fn is_done(&self) -> bool {
        self.core.done
    }

    fn best(&self) -> Option<(Genome, f64)> {
        self.core.best.clone()
    }

    fn evaluations(&self) -> usize {
        self.core.evaluations
    }

    fn cache_hits(&self) -> usize {
        self.core.cache_hits
    }

    fn rounds(&self) -> usize {
        self.core.rounds
    }

    fn snapshot(&self) -> StrategySnapshot {
        StrategySnapshot::Grid(GridSnapshot {
            core: self.core.snapshot(),
            window: self.window.clone(),
            cursor: self.cursor,
            level: self.level,
        })
    }

    fn set_obs(&mut self, registry: Arc<obs::Registry>) {
        self.core.obs = registry;
    }
}

/// Checkpoint of a [`Grid`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridSnapshot {
    pub core: CoreSnapshot,
    pub window: Vec<(i64, i64)>,
    pub cursor: usize,
    pub level: usize,
}
