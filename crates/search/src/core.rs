//! Shared bookkeeping for the non-GA strategies: the fitness memo, the
//! proposal budget, best-so-far tracking, and per-strategy obs series.
//!
//! The GA engine keeps all of this inside `ga::GaState`; the other
//! strategies compose this struct instead so they agree exactly on what
//! "budget", "evaluation" and "cache hit" mean: the budget counts
//! *proposals* (`pop_size * generations`, matching the GA's population
//! draws), a proposal already in the memo is a cache hit, and only memo
//! misses reach the evaluation backend.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ga::{GaConfig, GeneKind, Genome, Ranges};

/// Mutable search bookkeeping embedded by every non-GA strategy.
pub(crate) struct Core {
    pub ranges: Ranges,
    pub config: GaConfig,
    /// Obs label for this strategy's metric series (the kind, or the
    /// race member name).
    pub label: String,
    pub memo: HashMap<Genome, f64>,
    /// Genomes proposed so far, memo hits included — the budget unit.
    pub proposed: usize,
    pub evaluations: usize,
    pub cache_hits: usize,
    pub best: Option<(Genome, f64)>,
    pub rounds: usize,
    pub done: bool,
    /// Deliberately outside the snapshot: observability is not search
    /// state, so injecting a registry can never change results.
    pub obs: Arc<obs::Registry>,
}

impl Core {
    pub fn new(ranges: Ranges, config: GaConfig, label: &str) -> Result<Self, String> {
        if config.pop_size == 0 || config.generations == 0 {
            return Err(format!(
                "strategy '{label}' needs pop_size >= 1 and generations >= 1"
            ));
        }
        Ok(Core {
            ranges,
            config,
            label: label.to_string(),
            memo: HashMap::new(),
            proposed: 0,
            evaluations: 0,
            cache_hits: 0,
            best: None,
            rounds: 0,
            done: false,
            obs: Arc::clone(obs::global()),
        })
    }

    /// Total proposals the strategy may make: the GA's population draws.
    pub fn budget(&self) -> usize {
        self.config.pop_size * self.config.generations
    }

    /// How many genomes the next round may propose.
    pub fn batch_size(&self) -> usize {
        self.config.pop_size.min(self.budget() - self.proposed)
    }

    /// The subset of `drawn` the backend must evaluate: not in the memo,
    /// first occurrence within the batch.
    pub fn split(&self, drawn: &[Genome]) -> Vec<Genome> {
        let mut seen: HashSet<&Genome> = HashSet::new();
        let mut misses = Vec::new();
        for g in drawn {
            if self.memo.contains_key(g) {
                continue;
            }
            if seen.insert(g) {
                misses.push(g.clone());
            }
        }
        misses
    }

    /// Commits a round: merges scores, advances counters and best, and
    /// flips `done` once the budget is spent.
    pub fn commit(&mut self, drawn: &[Genome], misses: &[Genome], scores: &[f64]) {
        assert_eq!(
            misses.len(),
            scores.len(),
            "one score per asked genome (strategy '{}')",
            self.label
        );
        let hits = drawn.iter().filter(|g| self.memo.contains_key(*g)).count();
        for (g, &s) in misses.iter().zip(scores) {
            let s = if s.is_finite() { s } else { f64::INFINITY };
            self.memo.insert(g.clone(), s);
        }
        self.proposed += drawn.len();
        self.evaluations += misses.len();
        self.cache_hits += hits;
        for g in drawn {
            let s = self.memo[g];
            match &self.best {
                Some((_, b)) if s >= *b => {}
                _ => self.best = Some((g.clone(), s)),
            }
        }
        self.rounds += 1;
        if self.proposed >= self.budget() {
            self.done = true;
        }
        let labels = [("strategy", self.label.as_str())];
        self.obs
            .counter(&obs::labeled("search_rounds", &labels))
            .inc();
        self.obs
            .counter(&obs::labeled("search_evaluations", &labels))
            .add(misses.len() as u64);
        self.obs
            .counter(&obs::labeled("search_cache_hits", &labels))
            .add(hits as u64);
        self.obs
            .histogram(&obs::labeled("search_round_evals", &labels))
            .record(misses.len() as u64);
    }

    /// Best genome of this round's draw, by post-merge memo score
    /// (strict improvement, first wins on ties).
    pub fn round_best(&self, drawn: &[Genome]) -> Option<(Genome, f64)> {
        let mut best: Option<(Genome, f64)> = None;
        for g in drawn {
            let s = self.memo[g];
            match &best {
                Some((_, b)) if s >= *b => {}
                _ => best = Some((g.clone(), s)),
            }
        }
        best
    }

    pub fn snapshot(&self) -> CoreSnapshot {
        let mut memo: Vec<(Genome, f64)> = self.memo.iter().map(|(g, &f)| (g.clone(), f)).collect();
        memo.sort_by(|a, b| a.0.cmp(&b.0));
        CoreSnapshot {
            bounds: self.ranges.iter().collect(),
            kinds: self.ranges.kinds().to_vec(),
            config: self.config.clone(),
            memo,
            proposed: self.proposed,
            evaluations: self.evaluations,
            cache_hits: self.cache_hits,
            best: self.best.clone(),
            rounds: self.rounds,
            done: self.done,
        }
    }

    pub fn restore(s: CoreSnapshot, label: &str) -> Result<Self, String> {
        if s.bounds.is_empty() {
            return Err("snapshot has no gene bounds".into());
        }
        if s.bounds.iter().any(|&(lo, hi)| lo > hi) {
            return Err("snapshot has inverted gene bounds".into());
        }
        if s.config.pop_size == 0 || s.config.generations == 0 {
            return Err("snapshot config has a zero pop_size or generations".into());
        }
        if s.kinds.len() != s.bounds.len() {
            return Err(format!(
                "snapshot has {} gene kinds for {} bounds",
                s.kinds.len(),
                s.bounds.len()
            ));
        }
        let ranges = Ranges::with_kinds(s.bounds, s.kinds);
        for (g, _) in s.memo.iter().chain(s.best.iter()) {
            if !ranges.contains(g) {
                return Err(format!("snapshot genome {g:?} is out of bounds"));
            }
        }
        Ok(Core {
            ranges,
            config: s.config,
            label: label.to_string(),
            memo: s.memo.into_iter().collect(),
            proposed: s.proposed,
            evaluations: s.evaluations,
            cache_hits: s.cache_hits,
            best: s.best,
            rounds: s.rounds,
            done: s.done,
            obs: Arc::clone(obs::global()),
        })
    }
}

/// The serializable part of [`Core`]; embedded by every non-GA
/// strategy snapshot. The memo is sorted by genome so snapshot bytes
/// are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSnapshot {
    pub bounds: Vec<(i64, i64)>,
    pub kinds: Vec<GeneKind>,
    pub config: GaConfig,
    pub memo: Vec<(Genome, f64)>,
    pub proposed: usize,
    pub evaluations: usize,
    pub cache_hits: usize,
    pub best: Option<(Genome, f64)>,
    pub rounds: usize,
    pub done: bool,
}
