//! Budget-matched portfolio racing.
//!
//! A [`Race`] drives N member strategies in lockstep rounds under **one
//! shared evaluation budget** (`pop_size * generations` backend calls —
//! the same budget a lone strategy gets) and one shared fitness memo.
//! Per round it unions the members' asks, evaluates each distinct new
//! genome once, and answers every member from the merged memo; a genome
//! some other member already paid for is a *shared hit* — the
//! measurement that says how much the portfolio's members overlap.
//! Members whose best trails the leader by more than [`ELIM_TOLERANCE`]
//! for [`ELIM_PATIENCE`] consecutive rounds are eliminated (their
//! results still count; their budget share goes to the survivors).
//!
//! Member `name` searches under the derived seed
//! `child_seed(config.seed, "race/name")`, so duplicated kinds explore
//! independently and member streams never collide with the job's own.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ga::{GaConfig, GeneKind, Genome, Ranges};
use simrng::child_seed;

use crate::{restore_labeled, Standing, Strategy, StrategySnapshot};

/// Relative fitness slack before a member counts as trailing the leader.
const ELIM_TOLERANCE: f64 = 0.02;

/// Consecutive trailing rounds before elimination.
const ELIM_PATIENCE: usize = 5;

/// Rounds before any elimination can happen (early leads are noisy).
const ELIM_MIN_ROUNDS: usize = 10;

struct Member {
    name: String,
    strategy: Box<dyn Strategy>,
    eliminated: bool,
    stale_rounds: usize,
}

struct RoundAsk {
    batch: Vec<Genome>,
    /// Member proposals answered by the shared memo (or by another
    /// member's identical proposal this round) instead of the backend.
    shared: usize,
}

struct Pending {
    /// One entry per member; `None` for members that were not asked
    /// (eliminated or individually done).
    asks: Vec<Option<RoundAsk>>,
    misses: Vec<Genome>,
}

/// N strategies under one shared budget and one shared fitness memo.
pub struct Race {
    config: GaConfig,
    ranges: Ranges,
    members: Vec<Member>,
    memo: HashMap<Genome, f64>,
    evaluations: usize,
    shared_hits: usize,
    rounds: usize,
    done: bool,
    obs: Arc<obs::Registry>,
    pending: Option<Pending>,
}

impl Race {
    /// Builds a race from member kinds (duplicates get `#2`, `#3`…
    /// name suffixes and independent derived seeds).
    pub fn new(kinds: &[String], ranges: Ranges, config: GaConfig) -> Result<Self, String> {
        if kinds.len() < 2 {
            return Err("a race needs at least 2 members".into());
        }
        let mut counts: HashMap<&str, usize> = HashMap::new();
        let mut members = Vec::with_capacity(kinds.len());
        for kind in kinds {
            let n = counts.entry(kind.as_str()).or_insert(0);
            *n += 1;
            let name = if *n == 1 {
                kind.clone()
            } else {
                format!("{kind}#{n}")
            };
            let member_cfg = GaConfig {
                seed: child_seed(config.seed, &format!("race/{name}")),
                ..config.clone()
            };
            let strategy = crate::build_single(kind, &name, ranges.clone(), member_cfg)?;
            members.push(Member {
                name,
                strategy,
                eliminated: false,
                stale_rounds: 0,
            });
        }
        Ok(Race {
            config,
            ranges,
            members,
            memo: HashMap::new(),
            evaluations: 0,
            shared_hits: 0,
            rounds: 0,
            done: false,
            obs: Arc::clone(obs::global()),
            pending: None,
        })
    }

    pub fn restore(s: RaceSnapshot) -> Result<Self, String> {
        if s.bounds.is_empty() || s.bounds.iter().any(|&(lo, hi)| lo > hi) {
            return Err("race snapshot has invalid gene bounds".into());
        }
        if s.members.len() < 2 {
            return Err("race snapshot has fewer than 2 members".into());
        }
        if s.kinds.len() != s.bounds.len() {
            return Err(format!(
                "race snapshot has {} gene kinds for {} bounds",
                s.kinds.len(),
                s.bounds.len()
            ));
        }
        let ranges = Ranges::with_kinds(s.bounds, s.kinds);
        let mut members = Vec::with_capacity(s.members.len());
        for m in s.members {
            let strategy = restore_labeled(m.snapshot, Some(&m.name))?;
            members.push(Member {
                name: m.name,
                strategy,
                eliminated: m.eliminated,
                stale_rounds: m.stale_rounds,
            });
        }
        Ok(Race {
            config: s.config,
            ranges,
            members,
            memo: s.memo.into_iter().collect(),
            evaluations: s.evaluations,
            shared_hits: s.shared_hits,
            rounds: s.rounds,
            done: s.done,
            obs: Arc::clone(obs::global()),
            pending: None,
        })
    }

    /// Shared backend-evaluation budget: what one lone strategy gets.
    fn budget(&self) -> usize {
        self.config.pop_size * self.config.generations
    }

    /// Bumps trailing counters and eliminates dominated members, always
    /// keeping at least one member un-eliminated.
    fn eliminate_dominated(&mut self) {
        let leader = self
            .members
            .iter()
            .filter(|m| !m.eliminated)
            .filter_map(|m| m.strategy.best().map(|(_, f)| f))
            .fold(f64::INFINITY, f64::min);
        if !leader.is_finite() {
            return;
        }
        let threshold = leader * (1.0 + ELIM_TOLERANCE);
        for m in &mut self.members {
            if m.eliminated {
                continue;
            }
            let trailing = match m.strategy.best() {
                Some((_, f)) => f > threshold,
                None => true,
            };
            if trailing {
                m.stale_rounds += 1;
            } else {
                m.stale_rounds = 0;
            }
        }
        if self.rounds < ELIM_MIN_ROUNDS {
            return;
        }
        for i in 0..self.members.len() {
            let survivors = self.members.iter().filter(|m| !m.eliminated).count();
            if survivors <= 1 {
                break;
            }
            let m = &mut self.members[i];
            if !m.eliminated && m.stale_rounds >= ELIM_PATIENCE {
                m.eliminated = true;
                self.obs
                    .counter(&obs::labeled("race_eliminations", &[("strategy", &m.name)]))
                    .inc();
            }
        }
    }
}

impl Strategy for Race {
    fn kind(&self) -> &'static str {
        "race"
    }

    fn config(&self) -> &GaConfig {
        &self.config
    }

    fn seed_population(&mut self, seeds: &[Genome]) -> usize {
        // Forward to every member; only those with seeding semantics
        // (warmstart) accept any. Must run before the first ask so the
        // pending round can't go stale.
        assert!(self.pending.is_none(), "seed_population during a round");
        self.members
            .iter_mut()
            .map(|m| m.strategy.seed_population(seeds))
            .sum()
    }

    fn ask(&mut self) -> Vec<Genome> {
        if self.done {
            return Vec::new();
        }
        if self.pending.is_none() {
            let mut seen: HashSet<Genome> = HashSet::new();
            let mut misses = Vec::new();
            let mut asks = Vec::with_capacity(self.members.len());
            for m in &mut self.members {
                if m.eliminated || m.strategy.is_done() {
                    asks.push(None);
                    continue;
                }
                let batch = m.strategy.ask();
                let mut shared = 0;
                for g in &batch {
                    if self.memo.contains_key(g) {
                        shared += 1;
                    } else if seen.insert(g.clone()) {
                        misses.push(g.clone());
                    } else {
                        shared += 1;
                    }
                }
                asks.push(Some(RoundAsk { batch, shared }));
            }
            self.pending = Some(Pending { asks, misses });
        }
        self.pending.as_ref().unwrap().misses.clone()
    }

    fn tell(&mut self, batch: &[Genome], scores: &[f64]) {
        if self.done && self.pending.is_none() {
            assert!(batch.is_empty(), "tell on a finished race");
            return;
        }
        let p = self.pending.take().expect("tell before ask");
        assert_eq!(batch, &p.misses[..], "tell batch must be what ask returned");
        assert_eq!(batch.len(), scores.len(), "one score per asked genome");
        for (g, &s) in batch.iter().zip(scores) {
            let s = if s.is_finite() { s } else { f64::INFINITY };
            self.memo.insert(g.clone(), s);
        }
        self.evaluations += batch.len();
        for (m, a) in self.members.iter_mut().zip(p.asks) {
            let Some(a) = a else { continue };
            let member_scores: Vec<f64> = a.batch.iter().map(|g| self.memo[g]).collect();
            self.shared_hits += a.shared;
            if a.shared > 0 {
                self.obs
                    .counter(&obs::labeled("race_shared_hits", &[("strategy", &m.name)]))
                    .add(a.shared as u64);
            }
            m.strategy.tell(&a.batch, &member_scores);
        }
        self.rounds += 1;
        self.obs.counter("race_rounds").inc();
        self.obs.counter("race_evaluations").add(batch.len() as u64);
        self.eliminate_dominated();
        let all_idle = self
            .members
            .iter()
            .all(|m| m.eliminated || m.strategy.is_done());
        if self.evaluations >= self.budget() || all_idle {
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn best(&self) -> Option<(Genome, f64)> {
        // Eliminated members' results still count; ties go to the
        // earliest member, so the answer is order-deterministic.
        let mut best: Option<(Genome, f64)> = None;
        for m in &self.members {
            if let Some((g, f)) = m.strategy.best() {
                match &best {
                    Some((_, b)) if f >= *b => {}
                    _ => best = Some((g, f)),
                }
            }
        }
        best
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// For a race, "cache hits" are the cross-member shared hits — the
    /// portfolio's reason to share one memo.
    fn cache_hits(&self) -> usize {
        self.shared_hits
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn snapshot(&self) -> StrategySnapshot {
        let mut memo: Vec<(Genome, f64)> = self.memo.iter().map(|(g, &f)| (g.clone(), f)).collect();
        memo.sort_by(|a, b| a.0.cmp(&b.0));
        StrategySnapshot::Race(RaceSnapshot {
            config: self.config.clone(),
            bounds: self.ranges.iter().collect(),
            kinds: self.ranges.kinds().to_vec(),
            memo,
            evaluations: self.evaluations,
            shared_hits: self.shared_hits,
            rounds: self.rounds,
            done: self.done,
            members: self
                .members
                .iter()
                .map(|m| MemberSnapshot {
                    name: m.name.clone(),
                    eliminated: m.eliminated,
                    stale_rounds: m.stale_rounds,
                    snapshot: m.strategy.snapshot(),
                })
                .collect(),
        })
    }

    fn set_obs(&mut self, registry: Arc<obs::Registry>) {
        for m in &mut self.members {
            m.strategy.set_obs(Arc::clone(&registry));
        }
        self.obs = registry;
    }

    fn standings(&self) -> Vec<Standing> {
        self.members
            .iter()
            .map(|m| Standing {
                name: m.name.clone(),
                best_fitness: m.strategy.best().map(|(_, f)| f),
                evaluations: m.strategy.evaluations(),
                eliminated: m.eliminated,
            })
            .collect()
    }
}

/// Checkpoint of a [`Race`]: the shared memo (sorted for deterministic
/// bytes) plus one recursive snapshot per member.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceSnapshot {
    pub config: GaConfig,
    pub bounds: Vec<(i64, i64)>,
    pub kinds: Vec<GeneKind>,
    pub memo: Vec<(Genome, f64)>,
    pub evaluations: usize,
    pub shared_hits: usize,
    pub rounds: usize,
    pub done: bool,
    pub members: Vec<MemberSnapshot>,
}

/// One member inside a [`RaceSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemberSnapshot {
    pub name: String,
    pub eliminated: bool,
    pub stale_rounds: usize,
    pub snapshot: StrategySnapshot,
}
