//! Restarting hill climb over the threshold cascade.
//!
//! Each round proposes a batch of neighbors of the current point,
//! using the GA's own mutation operator (geometric scaling on large
//! thresholds, ±small steps on small ones) as the neighborhood — the
//! natural move set for a cascade whose genes span three orders of
//! magnitude. Strict improvement moves the point; [`PATIENCE`] rounds
//! without improvement trigger a restart from a fresh uniform draw.

use std::sync::Arc;

use ga::ops::mutate;
use ga::{GaConfig, Genome, Ranges};
use simrng::Rng;

use crate::core::{Core, CoreSnapshot};
use crate::{Strategy, StrategySnapshot};

/// Per-gene mutation probability for neighbor proposals. Higher than
/// the GA default so most neighbors actually differ from the current
/// point (identical proposals are free memo hits, but spend budget).
const NEIGHBOR_PROB: f64 = 0.4;

/// Rounds without strict improvement before restarting from scratch.
const PATIENCE: usize = 4;

/// Restarting batch hill climb.
pub struct HillClimb {
    core: Core,
    /// RNG state as of the last round boundary (committed at `tell`).
    rng_state: [u64; 4],
    current: Option<(Genome, f64)>,
    stagnant: usize,
    restarts: usize,
    pending: Option<Pending>,
}

struct Pending {
    drawn: Vec<Genome>,
    misses: Vec<Genome>,
    rng_after: [u64; 4],
}

impl HillClimb {
    pub fn new(ranges: Ranges, config: GaConfig, label: &str) -> Result<Self, String> {
        let seed = config.seed;
        Ok(HillClimb {
            core: Core::new(ranges, config, label)?,
            rng_state: Rng::seed_from_u64(seed).state(),
            current: None,
            stagnant: 0,
            restarts: 0,
            pending: None,
        })
    }

    pub fn restore(s: HillSnapshot, label: &str) -> Result<Self, String> {
        let core = Core::restore(s.core, label)?;
        if let Some((g, _)) = &s.current {
            if !core.ranges.contains(g) {
                return Err(format!("snapshot current genome {g:?} is out of bounds"));
            }
        }
        Ok(HillClimb {
            core,
            rng_state: s.rng_state,
            current: s.current,
            stagnant: s.stagnant,
            restarts: s.restarts,
            pending: None,
        })
    }
}

impl Strategy for HillClimb {
    fn kind(&self) -> &'static str {
        "hillclimb"
    }

    fn config(&self) -> &GaConfig {
        &self.core.config
    }

    fn ask(&mut self) -> Vec<Genome> {
        if self.core.done {
            return Vec::new();
        }
        if self.pending.is_none() {
            let mut rng = Rng::from_state(self.rng_state);
            let n = self.core.batch_size();
            let drawn: Vec<Genome> = match &self.current {
                // Fresh start (or post-restart): sample uniformly.
                None => (0..n).map(|_| self.core.ranges.random(&mut rng)).collect(),
                Some((c, _)) => (0..n)
                    .map(|_| {
                        let mut g = c.clone();
                        mutate(&mut g, &self.core.ranges, NEIGHBOR_PROB, &mut rng);
                        g
                    })
                    .collect(),
            };
            let misses = self.core.split(&drawn);
            self.pending = Some(Pending {
                drawn,
                misses,
                rng_after: rng.state(),
            });
        }
        self.pending.as_ref().unwrap().misses.clone()
    }

    fn tell(&mut self, batch: &[Genome], scores: &[f64]) {
        if self.core.done && self.pending.is_none() {
            assert!(batch.is_empty(), "tell on a finished search");
            return;
        }
        let p = self.pending.take().expect("tell before ask");
        assert_eq!(batch, &p.misses[..], "tell batch must be what ask returned");
        self.rng_state = p.rng_after;
        self.core.commit(&p.drawn, batch, scores);
        let round_best = self.core.round_best(&p.drawn);
        match (&self.current, round_best) {
            (_, None) => {}
            (None, Some(found)) => self.current = Some(found),
            (Some((_, cur)), Some((g, f))) if f < *cur => {
                self.current = Some((g, f));
                self.stagnant = 0;
            }
            (Some(_), Some(_)) => {
                self.stagnant += 1;
                if self.stagnant >= PATIENCE {
                    self.current = None;
                    self.stagnant = 0;
                    self.restarts += 1;
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.core.done
    }

    fn best(&self) -> Option<(Genome, f64)> {
        self.core.best.clone()
    }

    fn evaluations(&self) -> usize {
        self.core.evaluations
    }

    fn cache_hits(&self) -> usize {
        self.core.cache_hits
    }

    fn rounds(&self) -> usize {
        self.core.rounds
    }

    fn snapshot(&self) -> StrategySnapshot {
        StrategySnapshot::HillClimb(HillSnapshot {
            core: self.core.snapshot(),
            rng_state: self.rng_state,
            current: self.current.clone(),
            stagnant: self.stagnant,
            restarts: self.restarts,
        })
    }

    fn set_obs(&mut self, registry: Arc<obs::Registry>) {
        self.core.obs = registry;
    }
}

/// Checkpoint of a [`HillClimb`].
#[derive(Debug, Clone, PartialEq)]
pub struct HillSnapshot {
    pub core: CoreSnapshot,
    pub rng_state: [u64; 4],
    pub current: Option<(Genome, f64)>,
    pub stagnant: usize,
    pub restarts: usize,
}
