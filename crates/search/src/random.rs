//! Uniform random search — the baseline every other strategy has to
//! beat for its extra machinery to be worth anything.

use std::sync::Arc;

use ga::{GaConfig, Genome, Ranges};
use simrng::Rng;

use crate::core::{Core, CoreSnapshot};
use crate::{Strategy, StrategySnapshot};

/// Draws `pop_size` uniform genomes per round until the proposal budget
/// (`pop_size * generations`) is spent.
pub struct RandomSearch {
    core: Core,
    /// RNG state as of the last round boundary. `ask` draws through a
    /// scratch copy; the advance commits only at `tell`, which is what
    /// makes `ask` repeatable and snapshots boundary-exact.
    rng_state: [u64; 4],
    pending: Option<Pending>,
}

struct Pending {
    drawn: Vec<Genome>,
    misses: Vec<Genome>,
    rng_after: [u64; 4],
}

impl RandomSearch {
    pub fn new(ranges: Ranges, config: GaConfig, label: &str) -> Result<Self, String> {
        let seed = config.seed;
        Ok(RandomSearch {
            core: Core::new(ranges, config, label)?,
            rng_state: Rng::seed_from_u64(seed).state(),
            pending: None,
        })
    }

    pub fn restore(s: RandomSnapshot, label: &str) -> Result<Self, String> {
        Ok(RandomSearch {
            core: Core::restore(s.core, label)?,
            rng_state: s.rng_state,
            pending: None,
        })
    }
}

impl Strategy for RandomSearch {
    fn kind(&self) -> &'static str {
        "random"
    }

    fn config(&self) -> &GaConfig {
        &self.core.config
    }

    fn ask(&mut self) -> Vec<Genome> {
        if self.core.done {
            return Vec::new();
        }
        if self.pending.is_none() {
            let mut rng = Rng::from_state(self.rng_state);
            let drawn: Vec<Genome> = (0..self.core.batch_size())
                .map(|_| self.core.ranges.random(&mut rng))
                .collect();
            let misses = self.core.split(&drawn);
            self.pending = Some(Pending {
                drawn,
                misses,
                rng_after: rng.state(),
            });
        }
        self.pending.as_ref().unwrap().misses.clone()
    }

    fn tell(&mut self, batch: &[Genome], scores: &[f64]) {
        if self.core.done && self.pending.is_none() {
            assert!(batch.is_empty(), "tell on a finished search");
            return;
        }
        let p = self.pending.take().expect("tell before ask");
        assert_eq!(batch, &p.misses[..], "tell batch must be what ask returned");
        self.rng_state = p.rng_after;
        self.core.commit(&p.drawn, batch, scores);
    }

    fn is_done(&self) -> bool {
        self.core.done
    }

    fn best(&self) -> Option<(Genome, f64)> {
        self.core.best.clone()
    }

    fn evaluations(&self) -> usize {
        self.core.evaluations
    }

    fn cache_hits(&self) -> usize {
        self.core.cache_hits
    }

    fn rounds(&self) -> usize {
        self.core.rounds
    }

    fn snapshot(&self) -> StrategySnapshot {
        StrategySnapshot::Random(RandomSnapshot {
            core: self.core.snapshot(),
            rng_state: self.rng_state,
        })
    }

    fn set_obs(&mut self, registry: Arc<obs::Registry>) {
        self.core.obs = registry;
    }
}

/// Checkpoint of a [`RandomSearch`]; the RNG state is the last round
/// boundary, mirroring `GaSnapshot`'s `rng_state`.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSnapshot {
    pub core: CoreSnapshot,
    pub rng_state: [u64; 4],
}
