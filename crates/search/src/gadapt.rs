//! The existing GA engine behind the [`Strategy`] trait.
//!
//! The adapter must be *bit-identical* to driving `ga::GaState`
//! directly: published experiment numbers depend on it. The engine's
//! `step_with` already separates RNG-free evaluation from RNG-consuming
//! breeding, so the adapter only has to (a) predict, in `ask`, exactly
//! which genomes the engine's own memo-miss scan will request, and
//! (b) replay the caller's scores through a fake evaluator in `tell`.
//! The prediction mirrors `GaState`'s evaluation scan: population
//! order, memoized genomes skipped, within-generation duplicates asked
//! once. A debug assertion inside [`Replay`] keeps the two in lockstep.

use std::collections::HashSet;
use std::sync::Arc;

use ga::{Evaluator, GaConfig, GaState, GenTiming, Genome, Ranges};

use crate::{Strategy, StrategySnapshot};

/// `ga::GaState` adapted to the ask/tell protocol.
pub struct Ga {
    state: GaState,
}

impl Ga {
    /// Seeds a fresh GA; panics on an invalid config, like `GaState::new`.
    pub fn new(ranges: Ranges, config: GaConfig) -> Self {
        Ga {
            state: GaState::new(ranges, config),
        }
    }

    /// Wraps an already-running engine (e.g. restored from a snapshot).
    pub fn from_state(state: GaState) -> Self {
        Ga { state }
    }

    /// The underlying engine, for callers that want its full history.
    pub fn state(&self) -> &GaState {
        &self.state
    }
}

/// Hands the engine the scores the caller already computed, asserting
/// the engine asks for exactly the batch `ask` predicted.
struct Replay<'a> {
    expected: &'a [Genome],
    scores: &'a [f64],
}

impl Evaluator for Replay<'_> {
    fn evaluate(&self, genomes: &[Genome]) -> Vec<f64> {
        assert_eq!(
            genomes, self.expected,
            "Ga adapter drifted from the engine's own memo-miss selection"
        );
        self.scores.to_vec()
    }
}

impl Strategy for Ga {
    fn kind(&self) -> &'static str {
        "ga"
    }

    fn config(&self) -> &GaConfig {
        self.state.config()
    }

    fn ask(&mut self) -> Vec<Genome> {
        if self.state.is_done() {
            return Vec::new();
        }
        // Mirror of the engine's evaluation scan: population order,
        // cached genomes skipped, duplicates asked once.
        let mut seen: HashSet<&Genome> = HashSet::new();
        let mut misses = Vec::new();
        for g in self.state.population() {
            if self.state.cached(g).is_some() {
                continue;
            }
            if seen.insert(g) {
                misses.push(g.clone());
            }
        }
        misses
    }

    fn tell(&mut self, batch: &[Genome], scores: &[f64]) {
        if self.state.is_done() {
            assert!(batch.is_empty(), "tell on a finished GA");
            return;
        }
        let _ = self.state.step_with(&Replay {
            expected: batch,
            scores,
        });
    }

    fn is_done(&self) -> bool {
        self.state.is_done()
    }

    fn best(&self) -> Option<(Genome, f64)> {
        self.state.best().map(|(g, f)| (g.clone(), f))
    }

    fn evaluations(&self) -> usize {
        self.state.evaluations()
    }

    fn cache_hits(&self) -> usize {
        self.state.cache_hits()
    }

    fn rounds(&self) -> usize {
        self.state.generation()
    }

    fn snapshot(&self) -> StrategySnapshot {
        StrategySnapshot::Ga(self.state.snapshot())
    }

    fn set_obs(&mut self, registry: Arc<obs::Registry>) {
        self.state.set_obs(registry);
    }

    fn last_timing(&self) -> Option<GenTiming> {
        self.state.last_timing()
    }
}
