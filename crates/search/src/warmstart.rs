//! Warm-started GA: the engine seeded from prior cells' best genomes.
//!
//! The strategy is a thin shell around [`Ga`]: identical breeding,
//! identical budget, identical checkpoints. The only difference is the
//! *initial population* — before the first round the caller may plant
//! seeds (typically [`stored::Store::warm_seeds`] for the job's workload
//! fingerprint), and the engine starts from them instead of a fully
//! random draw. At most **half** the population is seeded; the rest
//! stays a fresh random draw, because transferred genomes cluster
//! around other cells' optima and an all-seed population has no
//! diversity left to explore the new cell with. Everything else the GA
//! does — memoization, elitism, RNG discipline — applies unchanged, so:
//!
//! * with **no seeds** the strategy is bit-identical to `"ga"` under the
//!   same config seed (the cold-start fallback costs nothing);
//! * the seeded population lands in the engine's own snapshot, so
//!   kill-and-restart recovery needs no special casing: restoring a
//!   [`WarmstartSnapshot`] replays the warm trajectory bit for bit even
//!   though the store is never consulted again.
//!
//! Seeding is a pre-flight operation: once the first round has been
//! told, [`WarmStart::seed_population`] refuses (returns 0) rather than
//! silently discard search progress.

use std::sync::Arc;

use ga::{GaConfig, GaSnapshot, GaState, GenTiming, Genome, Ranges};

use crate::{Ga, Strategy, StrategySnapshot};

/// Snapshot of a [`WarmStart`] strategy: the planted seeds (for
/// provenance and round-tripping) plus the engine's own snapshot, which
/// already contains the seeded population.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmstartSnapshot {
    /// The seeds actually planted (clamped, deduplicated, truncated);
    /// empty for a cold start.
    pub seeds: Vec<Genome>,
    /// The wrapped engine's full state.
    pub ga: GaSnapshot,
}

/// A GA whose initial population can be seeded from a fitness store.
pub struct WarmStart {
    ga: Ga,
    seeds: Vec<Genome>,
}

impl WarmStart {
    /// Builds a cold warm-start (no seeds planted yet): bit-identical
    /// to [`Ga::new`] until [`seed_population`](Self::seed_population)
    /// is called.
    ///
    /// # Panics
    /// Panics on degenerate configs, like `GaState::new`.
    #[must_use]
    pub fn new(ranges: Ranges, config: GaConfig) -> Self {
        WarmStart {
            ga: Ga::new(ranges, config),
            seeds: Vec::new(),
        }
    }

    /// Rebuilds from a snapshot.
    pub fn restore(snapshot: WarmstartSnapshot) -> Result<Self, String> {
        Ok(WarmStart {
            ga: Ga::from_state(GaState::restore(snapshot.ga)?),
            seeds: snapshot.seeds,
        })
    }

    /// The seeds planted into the initial population (empty when cold).
    #[must_use]
    pub fn seeds(&self) -> &[Genome] {
        &self.seeds
    }
}

impl Strategy for WarmStart {
    fn kind(&self) -> &'static str {
        "warmstart"
    }

    fn config(&self) -> &GaConfig {
        self.ga.config()
    }

    fn seed_population(&mut self, seeds: &[Genome]) -> usize {
        if self.ga.rounds() > 0 || self.ga.evaluations() > 0 {
            // Seeding after the search has moved would throw away real
            // progress; refuse rather than restart silently.
            return 0;
        }
        let state = self.ga.state();
        let ranges = state.ranges().clone();
        let config = state.config().clone();
        // Transferred genomes cluster around *other* cells' optima;
        // filling the whole population with them leaves the search no
        // random material to explore this cell with. Cap planting at
        // half the population — the other half stays a fresh draw.
        let cap = (config.pop_size / 2).max(1);
        // Mirror the engine's own acceptance rule so `self.seeds`
        // records exactly what was planted.
        let mut accepted: Vec<Genome> = Vec::new();
        for s in seeds {
            if s.len() != ranges.len() {
                continue;
            }
            let mut g = s.clone();
            ranges.clamp(&mut g);
            if !accepted.contains(&g) {
                accepted.push(g);
                if accepted.len() == cap {
                    break;
                }
            }
        }
        if accepted.is_empty() {
            return 0;
        }
        self.ga = Ga::from_state(GaState::with_seeds(ranges, config, &accepted));
        self.seeds = accepted;
        self.seeds.len()
    }

    fn ask(&mut self) -> Vec<Genome> {
        self.ga.ask()
    }

    fn tell(&mut self, batch: &[Genome], scores: &[f64]) {
        self.ga.tell(batch, scores);
    }

    fn is_done(&self) -> bool {
        self.ga.is_done()
    }

    fn best(&self) -> Option<(Genome, f64)> {
        self.ga.best()
    }

    fn evaluations(&self) -> usize {
        self.ga.evaluations()
    }

    fn cache_hits(&self) -> usize {
        self.ga.cache_hits()
    }

    fn rounds(&self) -> usize {
        self.ga.rounds()
    }

    fn snapshot(&self) -> StrategySnapshot {
        let StrategySnapshot::Ga(ga) = self.ga.snapshot() else {
            unreachable!("the wrapped Ga always snapshots as Ga");
        };
        StrategySnapshot::Warmstart(WarmstartSnapshot {
            seeds: self.seeds.clone(),
            ga,
        })
    }

    fn set_obs(&mut self, registry: Arc<obs::Registry>) {
        self.ga.set_obs(registry);
    }

    fn last_timing(&self) -> Option<GenTiming> {
        self.ga.last_timing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step_with;
    use ga::{Evaluator, LocalEvaluator};

    fn ranges() -> Ranges {
        Ranges::new(vec![(1, 50), (1, 30), (1, 15), (1, 400)])
    }

    fn cfg(seed: u64) -> GaConfig {
        GaConfig {
            pop_size: 8,
            generations: 10,
            threads: 1,
            seed,
            stagnation_limit: None,
            ..GaConfig::default()
        }
    }

    fn fitness(g: &[i64]) -> f64 {
        g.iter()
            .zip([7.0, 11.0, 3.0, 120.0])
            .map(|(&x, t)| ((x as f64 - t) / t).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn unseeded_warmstart_matches_plain_ga_bit_for_bit() {
        let backend = LocalEvaluator::new(fitness, 1);
        let mut warm: Box<dyn Strategy> = Box::new(WarmStart::new(ranges(), cfg(5)));
        let mut cold: Box<dyn Strategy> = Box::new(Ga::new(ranges(), cfg(5)));
        while !step_with(warm.as_mut(), &backend) {}
        while !step_with(cold.as_mut(), &backend) {}
        let (wg, wf) = warm.best().unwrap();
        let (cg, cf) = cold.best().unwrap();
        assert_eq!(wg, cg);
        assert_eq!(wf.to_bits(), cf.to_bits());
        assert_eq!(warm.evaluations(), cold.evaluations());
    }

    #[test]
    fn seeds_land_in_the_first_ask() {
        let mut s = WarmStart::new(ranges(), cfg(3));
        let seed = vec![7, 11, 3, 120];
        let planted = s.seed_population(&[seed.clone(), vec![1, 2], seed.clone()]);
        assert_eq!(planted, 1, "one valid seed after dedup/arity filtering");
        assert_eq!(s.seeds(), &[seed.clone()]);
        let batch = s.ask();
        assert!(batch.contains(&seed), "the seed must be proposed round 1");
    }

    #[test]
    fn seeding_a_good_genome_strictly_helps_round_one() {
        let backend = LocalEvaluator::new(fitness, 1);
        let run = |seeds: &[Genome]| {
            let mut s = WarmStart::new(ranges(), cfg(9));
            s.seed_population(seeds);
            let batch = s.ask();
            let scores = backend.evaluate(&batch);
            s.tell(&batch, &scores);
            s.best().unwrap().1
        };
        let cold = run(&[]);
        let warm = run(&[vec![7, 11, 3, 120]]);
        assert!(warm <= cold);
        assert_eq!(warm, 0.0, "the optimum seed must be found immediately");
    }

    #[test]
    fn planting_is_capped_at_half_the_population() {
        let mut s = WarmStart::new(ranges(), cfg(6)); // pop_size 8 → cap 4
        let seeds: Vec<Genome> = (1..=8).map(|i| vec![i, i, i, i]).collect();
        assert_eq!(s.seed_population(&seeds), 4);
        assert_eq!(s.seeds().len(), 4);
        let batch = s.ask();
        let planted = batch.iter().filter(|g| seeds.contains(g)).count();
        assert_eq!(planted, 4, "exactly the cap lands in round 1");
        assert!(
            batch.iter().any(|g| !seeds.contains(g)),
            "the other half of the population must stay a random draw"
        );
    }

    #[test]
    fn seeding_after_a_round_is_refused() {
        let backend = LocalEvaluator::new(fitness, 1);
        let mut s = WarmStart::new(ranges(), cfg(4));
        step_with(&mut s, &backend);
        let best_before = s.best().unwrap();
        assert_eq!(s.seed_population(&[vec![7, 11, 3, 120]]), 0);
        assert_eq!(s.best().unwrap(), best_before, "progress must survive");
    }

    #[test]
    fn snapshot_carries_seeds_and_restores_bit_identically() {
        let backend = LocalEvaluator::new(fitness, 1);
        let mut live = WarmStart::new(ranges(), cfg(8));
        live.seed_population(&[vec![2, 2, 2, 2], vec![40, 20, 10, 300]]);
        step_with(&mut live, &backend);
        let snap = live.snapshot();
        let StrategySnapshot::Warmstart(ws) = snap.clone() else {
            panic!("warmstart must snapshot as Warmstart");
        };
        assert_eq!(ws.seeds.len(), 2);
        let mut resumed = WarmStart::restore(ws).unwrap();
        assert_eq!(resumed.snapshot(), snap);
        while !step_with(&mut live, &backend) {}
        while !step_with(&mut resumed, &backend) {}
        assert_eq!(live.best(), resumed.best());
    }
}
