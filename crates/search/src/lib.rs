//! Pluggable search strategies over inlining-parameter genomes.
//!
//! The paper tunes the threshold cascade with exactly one optimizer — a
//! genetic algorithm — and never asks whether the GA earns its keep.
//! This crate puts the optimizer behind a seam so the question becomes
//! askable: a [`Strategy`] is anything that proposes genome batches
//! ([`Strategy::ask`]), learns their fitness ([`Strategy::tell`]), and
//! can be checkpointed mid-search ([`Strategy::snapshot`] /
//! [`restore`]). Six engines implement it:
//!
//! * [`Ga`] — the existing `ga` crate adapted behind the trait,
//!   bit-identical to driving `ga::GaState` directly with the same seed;
//! * [`WarmStart`] — the same GA, but its initial population can be
//!   seeded from a persistent fitness store's best prior genomes
//!   ([`Strategy::seed_population`]); unseeded it *is* `ga`, bit for bit;
//! * [`RandomSearch`] — uniform draws over the threshold cascade;
//! * [`HillClimb`] — restarting local search whose neighborhood is the
//!   GA's own mutation operator (geometric steps on the cascade);
//! * [`SimulatedAnnealing`] — batch-proposal Metropolis acceptance under
//!   a geometric cooling schedule;
//! * [`Grid`] — deterministic coarse-to-fine factorial refinement.
//!
//! On top sits [`Race`], a portfolio runner that drives N strategies
//! under **one shared evaluation budget** and one shared fitness memo —
//! a genome any member already paid for is free for every other member,
//! and strategies whose best trails the leader for long enough are
//! eliminated early.
//!
//! # Design constraints
//!
//! Everything downstream (the `tuned` daemon's kill-and-restart
//! recovery, distributed evaluation, the experiment tables) leans on two
//! properties, so every strategy must provide them:
//!
//! * **Determinism.** A strategy's trajectory is a pure function of its
//!   `GaConfig` seed; all randomness flows through `simrng`. `ask` is
//!   *repeatable*: calling it again without an intervening `tell`
//!   returns the same batch, because the RNG advance only commits at
//!   `tell`. Evaluation backends (local threads, remote workers) can
//!   therefore never leak scheduling order into the search.
//! * **Checkpointability.** [`Strategy::snapshot`] captures the state
//!   as of the last *completed* round — an in-flight `ask` is
//!   deliberately excluded — so [`restore`] followed by `ask` replays
//!   exactly the batch the uninterrupted run would have proposed.
//!
//! # The ask/tell round
//!
//! `ask` returns only the genomes the caller must actually evaluate:
//! each strategy keeps a fitness memo and never re-asks a genome it has
//! already scored. The batch may be *empty* while the strategy is not
//! done (a converged GA generation fully answered by its memo); the
//! caller must still call `tell` with the empty batch to commit the
//! round. [`step_with`] packages the loop:
//!
//! ```
//! use ga::{GaConfig, LocalEvaluator, Ranges};
//!
//! let ranges = Ranges::new(vec![(1, 50), (1, 30), (1, 15)]);
//! let cfg = GaConfig { pop_size: 8, generations: 5, threads: 1, ..GaConfig::default() };
//! let mut strategy = search::build("grid", ranges, cfg).unwrap();
//! let backend = LocalEvaluator::new(|g: &[i64]| g.iter().map(|&x| x as f64).sum(), 1);
//! while !search::step_with(strategy.as_mut(), &backend) {}
//! let (genome, fitness) = strategy.best().expect("searched");
//! assert_eq!(genome, vec![1, 1, 1]); // grid level 0 samples every low corner
//! assert_eq!(fitness, 3.0);
//! ```

use std::sync::Arc;

use ga::{Evaluator, GaConfig, GaSnapshot, GenTiming, Genome, PipelinedEvaluator, Ranges};

mod anneal;
mod core;
mod gadapt;
mod grid;
mod hill;
mod race;
mod random;
mod warmstart;

pub use anneal::SimulatedAnnealing;
pub use core::CoreSnapshot;
pub use gadapt::Ga;
pub use grid::{Grid, GridSnapshot};
pub use hill::{HillClimb, HillSnapshot};
pub use race::{MemberSnapshot, Race, RaceSnapshot};
pub use random::RandomSearch;
pub use warmstart::{WarmStart, WarmstartSnapshot};

/// Snapshot of a [`SimulatedAnnealing`] strategy.
pub type AnnealSnapshot = anneal::AnnealSnapshot;
/// Snapshot of a [`RandomSearch`] strategy.
pub type RandomSnapshot = random::RandomSnapshot;

/// The strategy kinds accepted on their own or as race members.
pub const KINDS: [&str; 6] = ["ga", "random", "hillclimb", "anneal", "grid", "warmstart"];

/// The members a bare `race` spec races (a spread of search styles:
/// population-based, pure exploration, pure exploitation).
const DEFAULT_RACE: [&str; 3] = ["ga", "random", "hillclimb"];

/// A deterministic, checkpointable batch optimizer over integer genomes.
///
/// The shared `GaConfig` doubles as the budget contract for every
/// strategy: `pop_size` is the per-round batch size and
/// `pop_size * generations` the total proposal budget, so different
/// strategies built from one config are budget-matched by construction.
pub trait Strategy: Send {
    /// The strategy's registered name (one of [`KINDS`], or `"race"`).
    fn kind(&self) -> &'static str;

    /// The config the strategy was built from (seed, batch size, budget).
    fn config(&self) -> &GaConfig;

    /// Plants warm-start seeds into the strategy's initial state,
    /// returning how many were actually accepted. Only meaningful
    /// *before the first round*; the default is a no-op — today only
    /// [`WarmStart`] (and a [`Race`] containing one) uses seeds.
    fn seed_population(&mut self, _seeds: &[Genome]) -> usize {
        0
    }

    /// The genomes to evaluate next: this round's proposals minus
    /// everything the strategy's memo already answers. Repeatable until
    /// the matching [`tell`](Self::tell); may be empty while
    /// [`is_done`](Self::is_done) is still false.
    fn ask(&mut self) -> Vec<Genome>;

    /// Commits a round: `batch` must be exactly what `ask` returned,
    /// `scores` one fitness per genome (lower is better; non-finite
    /// scores are treated as `+inf`).
    fn tell(&mut self, batch: &[Genome], scores: &[f64]);

    /// Whether the search has exhausted its budget (or converged).
    fn is_done(&self) -> bool;

    /// Best genome and fitness seen so far (`None` before any round).
    fn best(&self) -> Option<(Genome, f64)>;

    /// Fitness evaluations actually requested from the backend.
    fn evaluations(&self) -> usize;

    /// Proposals answered by the strategy's memo instead of the backend.
    fn cache_hits(&self) -> usize;

    /// Completed ask/tell rounds (the "generation" number in job status).
    fn rounds(&self) -> usize;

    /// Plain-data state as of the last completed round; feed to
    /// [`restore`] to resume bit-identically.
    fn snapshot(&self) -> StrategySnapshot;

    /// Routes the strategy's counters/histograms to a registry.
    /// Observability is not search state: injecting a registry never
    /// changes results.
    fn set_obs(&mut self, registry: Arc<obs::Registry>);

    /// Wall-time breakdown of the last round, if the strategy measures
    /// one (only [`Ga`] does today).
    fn last_timing(&self) -> Option<GenTiming> {
        None
    }

    /// Per-contender progress: one entry for a lone strategy, one per
    /// member for a [`Race`].
    fn standings(&self) -> Vec<Standing> {
        vec![Standing {
            name: self.kind().to_string(),
            best_fitness: self.best().map(|(_, f)| f),
            evaluations: self.evaluations(),
            eliminated: false,
        }]
    }
}

/// One contender's progress inside [`Strategy::standings`].
#[derive(Debug, Clone, PartialEq)]
pub struct Standing {
    /// Member name — the kind, suffixed `#2`, `#3`… for duplicates.
    pub name: String,
    /// Best fitness the member has seen (`None` before its first round).
    pub best_fitness: Option<f64>,
    /// Evaluations attributed to the member (for race members this
    /// includes proposals answered by the shared memo).
    pub evaluations: usize,
    /// Whether a race eliminated the member as dominated.
    pub eliminated: bool,
}

/// Plain-data checkpoint of any strategy, serializable by `served`.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategySnapshot {
    /// The GA engine's own snapshot, unchanged.
    Ga(GaSnapshot),
    Random(RandomSnapshot),
    HillClimb(HillSnapshot),
    Anneal(AnnealSnapshot),
    Grid(GridSnapshot),
    Warmstart(WarmstartSnapshot),
    Race(RaceSnapshot),
}

impl StrategySnapshot {
    /// The spec name of the strategy this snapshot came from.
    pub fn kind(&self) -> &'static str {
        match self {
            StrategySnapshot::Ga(_) => "ga",
            StrategySnapshot::Random(_) => "random",
            StrategySnapshot::HillClimb(_) => "hillclimb",
            StrategySnapshot::Anneal(_) => "anneal",
            StrategySnapshot::Grid(_) => "grid",
            StrategySnapshot::Warmstart(_) => "warmstart",
            StrategySnapshot::Race(_) => "race",
        }
    }

    /// Completed rounds at snapshot time (drives job "generation"
    /// numbers when the daemon recovers a checkpoint).
    pub fn rounds(&self) -> usize {
        match self {
            StrategySnapshot::Ga(s) => s.history.len(),
            StrategySnapshot::Random(s) => s.core.rounds,
            StrategySnapshot::HillClimb(s) => s.core.rounds,
            StrategySnapshot::Anneal(s) => s.core.rounds,
            StrategySnapshot::Grid(s) => s.core.rounds,
            StrategySnapshot::Warmstart(s) => s.ga.history.len(),
            StrategySnapshot::Race(s) => s.rounds,
        }
    }
}

fn unknown(name: &str) -> String {
    format!(
        "unknown strategy '{name}' (known: ga, random, hillclimb, anneal, grid, \
         warmstart, race, race:<a>+<b>[+<c>...])"
    )
}

/// Parses a strategy spec into its member kinds: a lone kind gives one
/// member, `race` the default trio, `race:a+b+...` an explicit field.
pub fn parse_spec(spec: &str) -> Result<Vec<String>, String> {
    if spec == "race" {
        return Ok(DEFAULT_RACE.iter().map(|s| s.to_string()).collect());
    }
    if let Some(rest) = spec.strip_prefix("race:") {
        let members: Vec<&str> = rest.split('+').collect();
        if members.len() < 2 {
            return Err(format!("a race needs at least 2 members, got '{spec}'"));
        }
        for m in &members {
            if !KINDS.contains(m) {
                return Err(unknown(m));
            }
        }
        return Ok(members.iter().map(|s| s.to_string()).collect());
    }
    if KINDS.contains(&spec) {
        Ok(vec![spec.to_string()])
    } else {
        Err(unknown(spec))
    }
}

/// Checks a strategy spec without building anything — what the wire
/// protocol calls on submit so bad specs become structured errors.
pub fn validate_spec(spec: &str) -> Result<(), String> {
    parse_spec(spec).map(|_| ())
}

/// Builds a strategy from a spec string. A race member named `name`
/// searches under the derived seed `child_seed(config.seed, "race/name")`
/// so duplicate kinds explore independently.
pub fn build(spec: &str, ranges: Ranges, config: GaConfig) -> Result<Box<dyn Strategy>, String> {
    let members = parse_spec(spec)?;
    if spec == "race" || spec.starts_with("race:") {
        Ok(Box::new(Race::new(&members, ranges, config)?))
    } else {
        build_single(&members[0], &members[0], ranges, config)
    }
}

/// Builds one non-race strategy; `label` names its obs metric series.
pub(crate) fn build_single(
    kind: &str,
    label: &str,
    ranges: Ranges,
    config: GaConfig,
) -> Result<Box<dyn Strategy>, String> {
    Ok(match kind {
        "ga" => Box::new(Ga::new(ranges, config)),
        "random" => Box::new(RandomSearch::new(ranges, config, label)?),
        "hillclimb" => Box::new(HillClimb::new(ranges, config, label)?),
        "anneal" => Box::new(SimulatedAnnealing::new(ranges, config, label)?),
        "grid" => Box::new(Grid::new(ranges, config, label)?),
        "warmstart" => Box::new(WarmStart::new(ranges, config)),
        other => return Err(unknown(other)),
    })
}

/// Rebuilds a strategy from its checkpoint. The resumed strategy's next
/// `ask` is bit-identical to what the uninterrupted run would have
/// proposed.
pub fn restore(snapshot: StrategySnapshot) -> Result<Box<dyn Strategy>, String> {
    restore_labeled(snapshot, None)
}

pub(crate) fn restore_labeled(
    snapshot: StrategySnapshot,
    label: Option<&str>,
) -> Result<Box<dyn Strategy>, String> {
    Ok(match snapshot {
        StrategySnapshot::Ga(s) => Box::new(Ga::from_state(ga::GaState::restore(s)?)),
        StrategySnapshot::Random(s) => {
            let label = label.unwrap_or("random");
            Box::new(RandomSearch::restore(s, label)?)
        }
        StrategySnapshot::HillClimb(s) => {
            let label = label.unwrap_or("hillclimb");
            Box::new(HillClimb::restore(s, label)?)
        }
        StrategySnapshot::Anneal(s) => {
            let label = label.unwrap_or("anneal");
            Box::new(SimulatedAnnealing::restore(s, label)?)
        }
        StrategySnapshot::Grid(s) => {
            let label = label.unwrap_or("grid");
            Box::new(Grid::restore(s, label)?)
        }
        StrategySnapshot::Warmstart(s) => Box::new(WarmStart::restore(s)?),
        StrategySnapshot::Race(s) => {
            if label.is_some() {
                return Err("a race cannot be a race member".into());
            }
            Box::new(Race::restore(s)?)
        }
    })
}

/// One full round through any evaluation backend: ask, evaluate the
/// misses, tell. Returns true once the strategy is done.
pub fn step_with<S, E>(strategy: &mut S, backend: &E) -> bool
where
    S: Strategy + ?Sized,
    E: Evaluator + ?Sized,
{
    if strategy.is_done() {
        return true;
    }
    let batch = strategy.ask();
    let scores = if batch.is_empty() {
        Vec::new()
    } else {
        backend.evaluate(&batch)
    };
    strategy.tell(&batch, &scores);
    strategy.is_done()
}

/// One round through a [`PipelinedEvaluator`], overlapping the caller's
/// own work with the in-flight evaluations: ask, begin the batch, run
/// `while_inflight` (e.g. persist the previous round's checkpoint) while
/// the backend works, then wait and tell.
///
/// Bit-identical to [`step_with`] for any strategy: `ask` is repeatable
/// until `tell` commits it, `while_inflight` only gets a shared borrow
/// (it can snapshot but not mutate), and a `snapshot` taken here
/// describes the last *completed* round — exactly what a checkpoint
/// written between rounds would contain.
///
/// `while_inflight` always runs, even on an empty batch, so work the
/// caller deferred into it (like that checkpoint) is never skipped.
pub fn step_pipelined<E>(
    strategy: &mut dyn Strategy,
    backend: &E,
    while_inflight: impl FnOnce(&dyn Strategy),
) -> bool
where
    E: PipelinedEvaluator + ?Sized,
{
    if strategy.is_done() {
        while_inflight(strategy);
        return true;
    }
    let batch = strategy.ask();
    let scores = if batch.is_empty() {
        while_inflight(strategy);
        Vec::new()
    } else {
        let pending = backend.begin(&batch);
        while_inflight(strategy);
        pending.wait()
    };
    strategy.tell(&batch, &scores);
    strategy.is_done()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::LocalEvaluator;

    fn ranges() -> Ranges {
        Ranges::new(vec![(1, 50), (1, 30), (1, 15), (1, 400)])
    }

    fn cfg(seed: u64) -> GaConfig {
        GaConfig {
            pop_size: 8,
            generations: 12,
            threads: 1,
            seed,
            stagnation_limit: None,
            ..GaConfig::default()
        }
    }

    /// A deterministic multimodal surface: strategies must find low
    /// values near (7, 11, 3, 120) without any real simulator.
    fn fitness(g: &[i64]) -> f64 {
        let target = [7.0, 11.0, 3.0, 120.0];
        g.iter()
            .zip(target)
            .map(|(&x, t)| {
                let d = (x as f64 - t) / t;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    fn all_specs() -> Vec<&'static str> {
        vec![
            "ga",
            "random",
            "hillclimb",
            "anneal",
            "grid",
            "warmstart",
            "race",
            "race:anneal+grid",
            "race:grid+grid",
            "race:warmstart+random",
        ]
    }

    #[test]
    fn every_strategy_terminates_and_improves() {
        let backend = LocalEvaluator::new(fitness, 1);
        for spec in all_specs() {
            let mut s = build(spec, ranges(), cfg(42)).unwrap();
            let mut steps = 0;
            while !step_with(s.as_mut(), &backend) {
                steps += 1;
                assert!(steps < 10_000, "{spec} never terminated");
            }
            let (g, f) = s.best().unwrap_or_else(|| panic!("{spec} found nothing"));
            assert!(ranges().contains(&g), "{spec} best out of bounds");
            assert!(f.is_finite());
            assert!(s.rounds() > 0);
            assert!(s.evaluations() > 0, "{spec} never evaluated");
            assert!(
                f < fitness(&[25, 15, 8, 200]),
                "{spec} did worse ({f}) than a mid-range guess"
            );
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let backend = LocalEvaluator::new(fitness, 1);
        for spec in all_specs() {
            let run = |seed| {
                let mut s = build(spec, ranges(), cfg(seed)).unwrap();
                while !step_with(s.as_mut(), &backend) {}
                (s.best().unwrap(), s.evaluations(), s.cache_hits())
            };
            let ((g1, f1), e1, h1) = run(7);
            let ((g2, f2), e2, h2) = run(7);
            assert_eq!(g1, g2, "{spec} genome drifted across identical runs");
            assert_eq!(f1.to_bits(), f2.to_bits());
            assert_eq!((e1, h1), (e2, h2));
        }
    }

    #[test]
    fn ask_is_repeatable_until_tell() {
        for spec in all_specs() {
            let mut s = build(spec, ranges(), cfg(11)).unwrap();
            let first = s.ask();
            let second = s.ask();
            assert_eq!(first, second, "{spec} ask must not advance without tell");
        }
    }

    #[test]
    fn asked_batches_stay_in_bounds_and_deduped() {
        let backend = LocalEvaluator::new(fitness, 1);
        for spec in all_specs() {
            let mut s = build(spec, ranges(), cfg(3)).unwrap();
            loop {
                if s.is_done() {
                    break;
                }
                let batch = s.ask();
                let mut seen = std::collections::HashSet::new();
                for g in &batch {
                    assert!(ranges().contains(g), "{spec} proposed {g:?} out of bounds");
                    assert!(
                        seen.insert(g.clone()),
                        "{spec} asked {g:?} twice in one batch"
                    );
                }
                let scores = backend.evaluate(&batch);
                s.tell(&batch, &scores);
            }
        }
    }

    #[test]
    fn snapshot_restore_is_bit_identical_every_round() {
        let backend = LocalEvaluator::new(fitness, 1);
        for spec in all_specs() {
            let mut live = build(spec, ranges(), cfg(5)).unwrap();
            let mut resumed = build(spec, ranges(), cfg(5)).unwrap();
            while !live.is_done() {
                // The resumed run goes through a snapshot/restore cycle
                // before every single round.
                resumed = restore(resumed.snapshot())
                    .unwrap_or_else(|e| panic!("{spec} restore failed: {e}"));
                assert_eq!(
                    live.snapshot(),
                    resumed.snapshot(),
                    "{spec} snapshots diverged"
                );
                step_with(live.as_mut(), &backend);
                step_with(resumed.as_mut(), &backend);
            }
            assert!(resumed.is_done());
            let (lg, lf) = live.best().unwrap();
            let (rg, rf) = resumed.best().unwrap();
            assert_eq!(lg, rg, "{spec} restore changed the best genome");
            assert_eq!(lf.to_bits(), rf.to_bits());
        }
    }

    #[test]
    fn pipelined_stepping_is_bit_identical_to_serial() {
        let backend = LocalEvaluator::new(fitness, 1);
        for spec in all_specs() {
            let mut serial = build(spec, ranges(), cfg(21)).unwrap();
            let mut piped = build(spec, ranges(), cfg(21)).unwrap();
            let mut deferred: Option<StrategySnapshot> = None;
            loop {
                let a = step_with(serial.as_mut(), &backend);
                // The pipelined run snapshots mid-flight every round, the
                // way the daemon defers its checkpoint write behind the
                // in-flight batch.
                let b = step_pipelined(piped.as_mut(), &backend, |s| {
                    deferred = Some(s.snapshot());
                });
                assert_eq!(a, b, "{spec} termination diverged");
                if a {
                    break;
                }
            }
            let (sg, sf) = serial.best().unwrap();
            let (pg, pf) = piped.best().unwrap();
            assert_eq!(sg, pg, "{spec} pipelining changed the best genome");
            assert_eq!(sf.to_bits(), pf.to_bits());
            assert_eq!(serial.evaluations(), piped.evaluations());
            assert_eq!(serial.cache_hits(), piped.cache_hits());
            // The deferred snapshot from the final round restores and
            // agrees it is done — a checkpoint one round behind replays
            // to the same terminal state.
            let resumed = restore(deferred.expect("while_inflight always runs")).unwrap();
            let _ = resumed;
        }
    }

    #[test]
    fn mid_round_snapshot_excludes_the_pending_ask() {
        for spec in all_specs() {
            let mut s = build(spec, ranges(), cfg(13)).unwrap();
            let before = s.snapshot();
            let batch = s.ask();
            assert_eq!(
                s.snapshot(),
                before,
                "{spec} snapshot must capture the last round boundary"
            );
            // A restore from that snapshot replays the identical batch.
            let mut resumed = restore(before).unwrap();
            assert_eq!(resumed.ask(), batch, "{spec} replayed a different batch");
        }
    }

    #[test]
    fn budget_is_respected() {
        let backend = LocalEvaluator::new(fitness, 1);
        for spec in ["random", "hillclimb", "anneal", "grid"] {
            let c = cfg(9);
            let budget = c.pop_size * c.generations;
            let mut s = build(spec, ranges(), c).unwrap();
            while !step_with(s.as_mut(), &backend) {}
            assert!(
                s.evaluations() + s.cache_hits() <= budget,
                "{spec} exceeded its proposal budget"
            );
        }
    }

    #[test]
    fn spec_parsing_accepts_known_and_rejects_unknown() {
        assert_eq!(parse_spec("ga").unwrap(), vec!["ga"]);
        assert_eq!(
            parse_spec("race").unwrap(),
            vec!["ga", "random", "hillclimb"]
        );
        assert_eq!(
            parse_spec("race:anneal+grid+ga").unwrap(),
            vec!["anneal", "grid", "ga"]
        );
        assert_eq!(parse_spec("warmstart").unwrap(), vec!["warmstart"]);
        for bad in ["", "gradient", "race:", "race:ga", "race:ga+bogus", "Race"] {
            assert!(validate_spec(bad).is_err(), "'{bad}' should be rejected");
        }
    }

    #[test]
    fn race_forwards_seeds_to_its_warmstart_member() {
        let mut s = build("race:warmstart+random", ranges(), cfg(19)).unwrap();
        let seed = vec![7, 11, 3, 120];
        assert_eq!(s.seed_population(&[seed.clone()]), 1);
        assert!(
            s.ask().contains(&seed),
            "the warmstart member's seed must surface in the race's union ask"
        );
        // Members without seeding semantics simply decline.
        let mut plain = build("race:grid+grid", ranges(), cfg(19)).unwrap();
        assert_eq!(plain.seed_population(&[seed]), 0);
    }

    #[test]
    fn race_shares_evaluations_across_members() {
        let backend = LocalEvaluator::new(fitness, 1);
        // Two identical deterministic grids: every proposal of the
        // second member is answered by the first member's evaluations.
        let mut s = build("race:grid+grid", ranges(), cfg(21)).unwrap();
        while !step_with(s.as_mut(), &backend) {}
        assert!(
            s.cache_hits() > 0,
            "duplicate members must hit the shared memo"
        );
        let standings = s.standings();
        assert_eq!(standings.len(), 2);
        assert_eq!(standings[0].name, "grid");
        assert_eq!(standings[1].name, "grid#2");
        assert_eq!(
            standings[0].best_fitness.unwrap().to_bits(),
            standings[1].best_fitness.unwrap().to_bits(),
            "identical members must agree on the best"
        );
    }

    #[test]
    fn race_eliminates_a_dominated_member() {
        // A fitness surface grid cannot descend: the optimum sits off
        // the coarse lattice, while hillclimb walks right to it.
        let needle = |g: &[i64]| {
            let d: f64 = g
                .iter()
                .zip([13.0, 23.0, 9.0, 333.0])
                .map(|(&x, t): (&i64, f64)| ((x as f64 - t) / t).powi(2))
                .sum();
            d.sqrt()
        };
        let backend = LocalEvaluator::new(needle, 1);
        let c = GaConfig {
            pop_size: 10,
            generations: 60,
            threads: 1,
            seed: 2,
            stagnation_limit: None,
            ..GaConfig::default()
        };
        let mut s = build("race:hillclimb+grid", ranges(), c).unwrap();
        while !step_with(s.as_mut(), &backend) {}
        let standings = s.standings();
        assert!(
            standings.iter().any(|m| m.eliminated),
            "a clearly dominated member should be eliminated: {standings:?}"
        );
        assert!(
            !standings.iter().all(|m| m.eliminated),
            "the leader must survive"
        );
    }

    #[test]
    fn obs_injection_does_not_change_results() {
        let backend = LocalEvaluator::new(fitness, 1);
        for spec in ["random", "race"] {
            let mut plain = build(spec, ranges(), cfg(30)).unwrap();
            let mut observed = build(spec, ranges(), cfg(30)).unwrap();
            observed.set_obs(Arc::new(obs::Registry::new()));
            while !step_with(plain.as_mut(), &backend) {}
            while !step_with(observed.as_mut(), &backend) {}
            assert_eq!(plain.best(), observed.best());
            assert_eq!(plain.evaluations(), observed.evaluations());
        }
    }

    #[test]
    fn per_strategy_obs_counters_are_recorded() {
        let backend = LocalEvaluator::new(fitness, 1);
        let reg = Arc::new(obs::Registry::new());
        let mut s = build("race:grid+grid", ranges(), cfg(17)).unwrap();
        s.set_obs(Arc::clone(&reg));
        while !step_with(s.as_mut(), &backend) {}
        let snap = reg.snapshot();
        assert!(snap.counter("race_evaluations") > 0);
        assert!(
            snap.counter(&obs::labeled("race_shared_hits", &[("strategy", "grid#2")])) > 0,
            "the duplicate member's shared hits must be attributed to it"
        );
        assert!(snap.counter(&obs::labeled("search_evaluations", &[("strategy", "grid")])) > 0);
    }
}
