//! Simulated annealing with batch proposals and sequential Metropolis
//! acceptance.
//!
//! Each round proposes `pop_size` neighbors of the current point (the
//! GA's mutation operator again), evaluates the memo misses, then walks
//! the batch in draw order accepting strictly-improving moves always and
//! worsening moves with probability `exp(-delta / T)`. The temperature
//! follows a geometric schedule indexed by budget progress, so the walk
//! is exploratory early and greedy late — and, like everything else
//! here, a pure function of the seed.

use std::sync::Arc;

use ga::ops::mutate;
use ga::{GaConfig, Genome, Ranges};
use simrng::Rng;

use crate::core::{Core, CoreSnapshot};
use crate::{Strategy, StrategySnapshot};

/// Per-gene mutation probability for neighbor proposals.
const NEIGHBOR_PROB: f64 = 0.4;

/// Start temperature, in fitness units (fitness is a geometric mean of
/// normalized metrics, so ~1.0; typical deltas are a few percent).
const T_START: f64 = 0.1;

/// Final temperature at budget exhaustion.
const T_END: f64 = 1e-3;

/// Batch-proposal simulated annealing.
pub struct SimulatedAnnealing {
    core: Core,
    /// RNG state as of the last round boundary. Both the proposal draw
    /// (in `ask`) and the acceptance draws (in `tell`) advance it, but
    /// the advance commits only at `tell`.
    rng_state: [u64; 4],
    current: Option<(Genome, f64)>,
    pending: Option<Pending>,
}

struct Pending {
    drawn: Vec<Genome>,
    misses: Vec<Genome>,
    rng_after: [u64; 4],
}

impl SimulatedAnnealing {
    pub fn new(ranges: Ranges, config: GaConfig, label: &str) -> Result<Self, String> {
        let seed = config.seed;
        Ok(SimulatedAnnealing {
            core: Core::new(ranges, config, label)?,
            rng_state: Rng::seed_from_u64(seed).state(),
            current: None,
            pending: None,
        })
    }

    pub fn restore(s: AnnealSnapshot, label: &str) -> Result<Self, String> {
        let core = Core::restore(s.core, label)?;
        if let Some((g, _)) = &s.current {
            if !core.ranges.contains(g) {
                return Err(format!("snapshot current genome {g:?} is out of bounds"));
            }
        }
        Ok(SimulatedAnnealing {
            core,
            rng_state: s.rng_state,
            current: s.current,
            pending: None,
        })
    }

    /// Temperature after `proposed` of `budget` proposals.
    fn temperature(progress: f64) -> f64 {
        T_START * (T_END / T_START).powf(progress.clamp(0.0, 1.0))
    }
}

impl Strategy for SimulatedAnnealing {
    fn kind(&self) -> &'static str {
        "anneal"
    }

    fn config(&self) -> &GaConfig {
        &self.core.config
    }

    fn ask(&mut self) -> Vec<Genome> {
        if self.core.done {
            return Vec::new();
        }
        if self.pending.is_none() {
            let mut rng = Rng::from_state(self.rng_state);
            let n = self.core.batch_size();
            let drawn: Vec<Genome> = match &self.current {
                None => (0..n).map(|_| self.core.ranges.random(&mut rng)).collect(),
                Some((c, _)) => (0..n)
                    .map(|_| {
                        let mut g = c.clone();
                        mutate(&mut g, &self.core.ranges, NEIGHBOR_PROB, &mut rng);
                        g
                    })
                    .collect(),
            };
            let misses = self.core.split(&drawn);
            self.pending = Some(Pending {
                drawn,
                misses,
                rng_after: rng.state(),
            });
        }
        self.pending.as_ref().unwrap().misses.clone()
    }

    fn tell(&mut self, batch: &[Genome], scores: &[f64]) {
        if self.core.done && self.pending.is_none() {
            assert!(batch.is_empty(), "tell on a finished search");
            return;
        }
        let p = self.pending.take().expect("tell before ask");
        assert_eq!(batch, &p.misses[..], "tell batch must be what ask returned");
        let proposed_before = self.core.proposed;
        self.core.commit(&p.drawn, batch, scores);
        let mut rng = Rng::from_state(p.rng_after);
        match self.current.take() {
            // First round: the chain starts at the best uniform draw.
            None => self.current = self.core.round_best(&p.drawn),
            Some((mut cg, mut cf)) => {
                // The whole batch anneals at the round-start temperature;
                // proposals were drawn around the round-start point.
                let progress = proposed_before as f64 / self.core.budget() as f64;
                let t = Self::temperature(progress);
                for g in &p.drawn {
                    let s = self.core.memo[g];
                    let delta = s - cf;
                    if delta < 0.0 || rng.chance((-delta / t).exp()) {
                        cg = g.clone();
                        cf = s;
                    }
                }
                self.current = Some((cg, cf));
            }
        }
        self.rng_state = rng.state();
    }

    fn is_done(&self) -> bool {
        self.core.done
    }

    fn best(&self) -> Option<(Genome, f64)> {
        self.core.best.clone()
    }

    fn evaluations(&self) -> usize {
        self.core.evaluations
    }

    fn cache_hits(&self) -> usize {
        self.core.cache_hits
    }

    fn rounds(&self) -> usize {
        self.core.rounds
    }

    fn snapshot(&self) -> StrategySnapshot {
        StrategySnapshot::Anneal(AnnealSnapshot {
            core: self.core.snapshot(),
            rng_state: self.rng_state,
            current: self.current.clone(),
        })
    }

    fn set_obs(&mut self, registry: Arc<obs::Registry>) {
        self.core.obs = registry;
    }
}

/// Checkpoint of a [`SimulatedAnnealing`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealSnapshot {
    pub core: CoreSnapshot,
    pub rng_state: [u64; 4],
    pub current: Option<(Genome, f64)>,
}
