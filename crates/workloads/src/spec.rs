//! The benchmark-shape specification: every knob of the synthetic program
//! generator.

/// Which suite a benchmark belongs to (the paper's train/test split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECjvm98 — the training suite (paper Table 2).
    SpecJvm98,
    /// DaCapo beta050224 subset + ipsixql + pseudojbb — the unseen test
    /// suite (paper Table 3).
    DaCapoJbb,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suite::SpecJvm98 => "SPECjvm98",
            Suite::DaCapoJbb => "DaCapo+JBB",
        })
    }
}

/// Relative weights of the op kinds a benchmark's code is made of.
///
/// The four weights select between integer ALU, integer multiply, memory
/// and fixed-point ("floating") operations; they let `compress` look like a
/// byte-crunching kernel, `mpegaudio`/`raytrace` like FP codes, `db` like a
/// pointer-chasing store, and so on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Weight of simple integer ops.
    pub alu: f64,
    /// Weight of integer multiplies.
    pub mul: f64,
    /// Weight of heap loads/stores.
    pub mem: f64,
    /// Weight of fixed-point arithmetic (the FP stand-in).
    pub float: f64,
}

impl OpMix {
    /// Integer-dominated code (parsers, rule engines).
    pub const INT: OpMix = OpMix {
        alu: 8.0,
        mul: 1.0,
        mem: 2.0,
        float: 0.2,
    };
    /// Memory-dominated code (databases, XML stores).
    pub const MEM: OpMix = OpMix {
        alu: 4.0,
        mul: 0.5,
        mem: 6.0,
        float: 0.2,
    };
    /// Floating-point kernels (signal processing, ray tracing).
    pub const FLOAT: OpMix = OpMix {
        alu: 3.0,
        mul: 1.0,
        mem: 2.0,
        float: 6.0,
    };
    /// Byte-crunching compression loops.
    pub const BYTES: OpMix = OpMix {
        alu: 7.0,
        mul: 1.5,
        mem: 4.0,
        float: 0.1,
    };
}

/// Complete description of one synthetic benchmark.
///
/// Counts are calibrated so estimated method sizes land in the same numeric
/// bands as Jikes RVM's estimates (accessors below `ALWAYS_INLINE_SIZE`,
/// plenty of mass around `CALLEE_MAX_SIZE`/`HOT_CALLEE_MAX_SIZE`, a tail of
/// large generated methods).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (matches the paper's tables).
    pub name: &'static str,
    /// One-line description (from the paper's Table 2/3).
    pub description: &'static str,
    /// Which suite it belongs to.
    pub suite: Suite,
    /// Number of *worker* methods (the library bulk; accessors, phase
    /// drivers and `main` come on top).
    pub n_workers: u32,
    /// Number of tiny accessor/helper methods (Java getter/setter style —
    /// the population the always-inline test exists for).
    pub n_accessors: u32,
    /// Worker layers: workers in layer `l` call layers `l+1..`; this sets
    /// the available call-chain depth (what `MAX_INLINE_DEPTH` cuts).
    pub n_layers: u32,
    /// Median straight-line op statements per worker body.
    pub body_median_ops: f64,
    /// Log-normal shape of the body-size distribution (bigger = heavier
    /// tail of large generated methods).
    pub body_sigma: f64,
    /// Mean call sites per worker.
    pub fanout_mean: f64,
    /// Zipf exponent of callee popularity inside a layer (bigger = fewer,
    /// hotter callees — what makes the Fig. 4 hot-site test matter).
    pub hot_skew: f64,
    /// Number of top-level phase methods `main` drives.
    pub n_phases: u32,
    /// Trips of the driver loop in `main` (run length, phase invocations).
    pub driver_iters: u32,
    /// Trips of each phase's inner work loop.
    pub phase_trips: u32,
    /// Probability that a worker contains a compute-kernel loop.
    pub kernel_prob: f64,
    /// Trip count of worker kernel loops.
    pub kernel_trips: u32,
    /// Probability that a worker call site sits inside the worker's loop
    /// (making it hot) rather than in straight-line or cold-branch code.
    pub call_in_loop_prob: f64,
    /// Probability that a non-loop call site hides under a rarely-taken
    /// branch (cold call sites: inlining them buys nothing but code size).
    pub cold_branch_prob: f64,
    /// Instruction mix.
    pub mix: OpMix,
}

impl BenchmarkSpec {
    /// Total methods the generator will emit (workers + accessors +
    /// phases + main).
    #[must_use]
    pub fn total_methods(&self) -> u32 {
        self.n_workers + self.n_accessors + self.n_phases + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_methods_adds_up() {
        let s = BenchmarkSpec {
            name: "t",
            description: "",
            suite: Suite::SpecJvm98,
            n_workers: 10,
            n_accessors: 5,
            n_layers: 3,
            body_median_ops: 20.0,
            body_sigma: 0.8,
            fanout_mean: 2.0,
            hot_skew: 1.1,
            n_phases: 2,
            driver_iters: 10,
            phase_trips: 5,
            kernel_prob: 0.3,
            kernel_trips: 50,
            call_in_loop_prob: 0.4,
            cold_branch_prob: 0.2,
            mix: OpMix::INT,
        };
        assert_eq!(s.total_methods(), 18);
    }

    #[test]
    fn mixes_are_positive() {
        for m in [OpMix::INT, OpMix::MEM, OpMix::FLOAT, OpMix::BYTES] {
            assert!(m.alu > 0.0 && m.mul > 0.0 && m.mem > 0.0 && m.float > 0.0);
        }
    }
}
