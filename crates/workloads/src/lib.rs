//! Synthetic benchmark suites: the SPECjvm98 (training) and DaCapo+JBB
//! (test) stand-ins of the reproduction.
//!
//! The paper tunes on SPECjvm98 and evaluates the tuned heuristic on an
//! unseen suite (five DaCapo programs plus `ipsixql` and `pseudojbb`). We
//! cannot run the Java originals, so each benchmark is modeled as a seeded
//! synthetic program whose *distributional shape* matches what the paper's
//! results depend on:
//!
//! * **SPECjvm98-like** programs are small-to-medium method populations
//!   dominated by long-running compute kernels — running time rules, and
//!   the Jikes default heuristic (hand-tuned on exactly this suite,
//!   as the paper observes in §6.2) is near-optimal for them;
//! * **DaCapo-like** programs have many more and larger methods (generated
//!   parsers, formatters, interpreters) and far shorter run phases —
//!   under `Opt`, optimizing-compile time is a large share of total time,
//!   which is where the paper's 26–37% total-time wins come from.
//!
//! Every program is generated deterministically from
//! `child_seed(SUITE_SEED, name)`; two calls with the same name are
//! bit-identical. See [`spec::BenchmarkSpec`] for the knobs and
//! [`suites`] for the 14 calibrated instances.

pub mod drift;
pub mod generate;
pub mod spec;
pub mod suites;

pub use drift::{DriftKind, DriftPos, DriftSchedule};
pub use generate::generate;
pub use spec::{BenchmarkSpec, OpMix, Suite};
pub use suites::{all_benchmarks, benchmark_by_name, dacapo_jbb, specjvm98, Benchmark};
