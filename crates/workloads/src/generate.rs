//! The synthetic-program generator.
//!
//! Emits a layered Java-like program from a [`BenchmarkSpec`]:
//!
//! ```text
//! main                    — driver loop, `driver_iters` trips
//!   └─ phase_0..n         — phase work loops, `phase_trips` trips,
//!                           calling popular layer-0 workers (hot sites)
//!        └─ workers       — `n_layers` layers; layer l calls layers > l
//!        │                  (straight-line or cold-branch sites) and
//!        │                  accessors from compute-kernel loops (very hot
//!        │                  sites)
//!        └─ accessors     — tiny getter/setter-style leaves, the
//!                           population the always-inline test targets
//! ```
//!
//! Design constraints the structure enforces:
//!
//! * call-chain **amplification is bounded**: only accessor calls sit in
//!   kernel loops, so worker-entry counts grow like `fanout^layers`, not
//!   `(fanout × trips)^layers`, keeping per-iteration cycle counts in a
//!   realistic range;
//! * **hot-site spread**: phase→worker and kernel→accessor sites execute
//!   thousands of times per iteration (hot under the adaptive profile),
//!   worker→worker sites tens-to-hundreds (warm), cold-branch sites almost
//!   never — so `HOT_CALLEE_MAX_SIZE` and the cold-code-bloat trade-off
//!   both have something to act on;
//! * **size bands**: accessors estimate below typical `ALWAYS_INLINE_SIZE`
//!   values, workers mass around the `CALLEE_MAX_SIZE` range with a
//!   log-normal tail of large generated methods.

use simrng::dist::{lognormal_int, Categorical, LogNormal, Zipf};
use simrng::{child_rng, Rng};

use ir::builder::{MethodBuilder, ProgramBuilder};
use ir::method::MethodId;
use ir::op::{OpKind, Operand, Reg};
use ir::program::Program;

use crate::spec::BenchmarkSpec;

/// Anchors live computation chains in an observable effect: xor-combines
/// a few live registers and stores the result to the heap. Without this,
/// the optimizing compiler's DCE would (correctly!) delete most of a
/// generated body as dead code — real methods publish their results.
fn publish(rng: &mut Rng, mb: &mut MethodBuilder, live: &[Reg]) {
    let mut acc = *rng.choose(live);
    for _ in 0..rng.range_usize(1, 2) {
        let other = *rng.choose(live);
        acc = mb.op(OpKind::Xor, acc, other);
    }
    let addr = *rng.choose(live);
    mb.op_into(OpKind::Store, Reg(0), addr, acc);
}

/// Emits one op statement with a kind drawn from the benchmark mix.
fn emit_op(rng: &mut Rng, mb: &mut MethodBuilder, mix: &Categorical, live: &mut Vec<Reg>) {
    let kind = match mix.sample(rng) {
        0 => *rng.choose(&[
            OpKind::Add,
            OpKind::Sub,
            OpKind::Xor,
            OpKind::And,
            OpKind::Or,
            OpKind::Shl,
            OpKind::Shr,
            OpKind::Min,
            OpKind::Max,
        ]),
        1 => OpKind::Mul,
        2 => {
            if rng.chance(0.55) {
                OpKind::Load
            } else {
                OpKind::Store
            }
        }
        _ => {
            if rng.chance(0.6) {
                OpKind::FMul
            } else {
                OpKind::FAdd
            }
        }
    };
    let a: Operand = (*rng.choose(live)).into();
    let b: Operand = if rng.chance(0.7) {
        (*rng.choose(live)).into()
    } else {
        rng.range_i64(1, 64).into()
    };
    let r = mb.op(kind, a, b);
    live.push(r);
    if live.len() > 16 {
        live.remove(0);
    }
}

/// Worker-layer assignment: contiguous slices, deepest layer last.
fn layer_ranges(n_workers: u32, n_layers: u32) -> Vec<std::ops::Range<u32>> {
    let n_layers = n_layers.clamp(1, n_workers.max(1));
    let mut out = Vec::with_capacity(n_layers as usize);
    let base = n_workers / n_layers;
    let extra = n_workers % n_layers;
    let mut start = 0;
    for l in 0..n_layers {
        let len = base + u32::from(l < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Generates the benchmark program for a spec, deterministically from
/// `seed`.
///
/// # Panics
/// Panics if the spec is degenerate (no workers) or the generated program
/// fails validation — both indicate a bug in the spec tables, not user
/// input.
#[must_use]
pub fn generate(spec: &BenchmarkSpec, seed: u64) -> Program {
    assert!(
        spec.n_workers >= spec.n_layers,
        "spec {}: too few workers",
        spec.name
    );
    let mut pb = ProgramBuilder::new(spec.name);
    let mix = Categorical::new(&[spec.mix.alu, spec.mix.mul, spec.mix.mem, spec.mix.float])
        .expect("op mix weights are valid");
    let body_dist = LogNormal::from_median(spec.body_median_ops, spec.body_sigma)
        .expect("body size distribution is valid");

    // ---- ids ----
    let accessor_ids: Vec<MethodId> = (0..spec.n_accessors).map(|_| pb.declare()).collect();
    let worker_ids: Vec<MethodId> = (0..spec.n_workers).map(|_| pb.declare()).collect();
    let phase_ids: Vec<MethodId> = (0..spec.n_phases).map(|_| pb.declare()).collect();
    let layers = layer_ranges(spec.n_workers, spec.n_layers);

    // Coverage assignments: every worker in layer l+1 is the *mandatory*
    // target of exactly one worker in layer l (round-robin), every
    // accessor of one worker, and every layer-0 worker of one phase — so
    // the whole emitted population is reachable and therefore compiled,
    // like a real program where all loaded code runs at least once.
    let mut mandatory_next: Vec<Vec<u32>> = vec![Vec::new(); spec.n_workers as usize];
    for l in 0..layers.len().saturating_sub(1) {
        let callers: Vec<u32> = layers[l].clone().collect();
        for (k, target) in layers[l + 1].clone().enumerate() {
            mandatory_next[callers[k % callers.len()] as usize].push(target);
        }
    }
    let mut mandatory_acc: Vec<Vec<usize>> = vec![Vec::new(); spec.n_workers as usize];
    for (k, a) in (0..accessor_ids.len()).enumerate() {
        mandatory_acc[k % spec.n_workers as usize].push(a);
    }

    // Popularity order per layer: a fixed random permutation; Zipf rank 1
    // maps to the layer's most popular worker.
    let mut pop_rng = child_rng(seed, "popularity");
    let popularity: Vec<Vec<u32>> = layers
        .iter()
        .map(|r| {
            let mut v: Vec<u32> = r.clone().collect();
            pop_rng.shuffle(&mut v);
            v
        })
        .collect();

    // ---- accessors & helper chains ----
    // Two sub-populations forming a size continuum:
    //
    // * ~50% plain getters (1–5 ops, ≈3–9 units) — squarely in the
    //   always-inline band;
    // * ~50% chained helpers (2–6 ops plus a call to the next accessor,
    //   ≈9–16 units) — straddling typical `ALWAYS_INLINE_SIZE` values and
    //   forming call chains several levels deep. These chains are what
    //   `MAX_INLINE_DEPTH` cuts: a real Java `a().b().c()` utility
    //   cascade.
    let mut acc_rng = child_rng(seed, "accessors");
    for (i, &id) in accessor_ids.iter().enumerate() {
        let mut mb = MethodBuilder::new(format!("get{i}"), 1);
        let p = mb.param(0);
        let is_helper = i + 1 < accessor_ids.len() && acc_rng.chance(0.5);
        let n_ops = if is_helper {
            acc_rng.range_usize(2, 6)
        } else {
            acc_rng.range_usize(1, 5)
        };
        let mut r = match acc_rng.below(3) {
            0 => mb.op(OpKind::Load, p, 0i64),
            1 => mb.op(OpKind::Add, p, acc_rng.range_i64(1, 16)),
            _ => {
                let t = mb.op(OpKind::Load, p, 0i64);
                mb.op(OpKind::And, t, 0xffffi64)
            }
        };
        for _ in 1..n_ops {
            let kind = *acc_rng.choose(&[
                OpKind::Add,
                OpKind::Xor,
                OpKind::Shr,
                OpKind::And,
                OpKind::Max,
            ]);
            r = mb.op(kind, r, acc_rng.range_i64(1, 255));
        }
        if is_helper {
            // Chain onward to the *next* accessor: consecutive helpers form
            // multi-level utility cascades (runs of helpers are geometric,
            // so chains up to 6–10 deep occur), which is what gives
            // MAX_INLINE_DEPTH its long tail of effect.
            let next = accessor_ids[i + 1];
            let site = pb.fresh_site();
            if let Some(v) = mb.call(site, next, vec![r.into()], true) {
                r = v;
            }
        }
        mb.ret(r);
        pb.define(id, mb);
    }

    // ---- workers ----
    let mut w_rng = child_rng(seed, "workers");
    for (layer_idx, range) in layers.iter().enumerate() {
        for w in range.clone() {
            let mb = gen_worker(
                spec,
                &mut w_rng,
                &mut pb,
                &mix,
                &body_dist,
                layer_idx,
                w,
                &layers,
                &popularity,
                &worker_ids,
                &accessor_ids,
                &mandatory_next[w as usize],
                &mandatory_acc[w as usize],
            );
            pb.define(worker_ids[w as usize], mb);
        }
    }

    // ---- phases ----
    let mut p_rng = child_rng(seed, "phases");
    let layer0 = &popularity[0];
    let phase_zipf = Zipf::new(layer0.len() as u64, spec.hot_skew).expect("zipf params valid");
    for (pi, &pid) in phase_ids.iter().enumerate() {
        let mut mb = MethodBuilder::new(format!("phase{pi}"), 1);
        let mut live = vec![mb.param(0)];
        // Phase state comes from the heap (the benchmark's input data).
        let c = mb.op(OpKind::Load, p_rng.range_i64(1, 100), 0i64);
        live.push(c);
        for _ in 0..3 {
            emit_op(&mut p_rng, &mut mb, &mix, &mut live);
        }
        // The phase work loop: hot calls into popular layer-0 workers.
        let n_hot_calls = p_rng.range_usize(2, 4);
        mb.begin_loop(spec.phase_trips);
        for _ in 0..n_hot_calls {
            let rank = phase_zipf.sample(&mut p_rng) as usize - 1;
            let target = worker_ids[layer0[rank] as usize];
            let site = pb.fresh_site();
            let arg = *p_rng.choose(&live);
            if let Some(r) = mb.call(site, target, vec![arg.into()], true) {
                live.push(r);
            }
            emit_op(&mut p_rng, &mut mb, &mix, &mut live);
        }
        mb.end();
        // A couple of cold setup calls outside the loop.
        for _ in 0..p_rng.range_usize(1, 2) {
            let rank = phase_zipf.sample(&mut p_rng) as usize - 1;
            let target = worker_ids[layer0[rank] as usize];
            let site = pb.fresh_site();
            let arg = *p_rng.choose(&live);
            mb.call(site, target, vec![arg.into()], false);
        }
        // Mandatory coverage: this phase's share of layer-0 workers, under
        // a rarely-taken branch (start-up/error paths in a real program).
        let cond = *p_rng.choose(&live);
        let mut covered = false;
        for (k, &w0) in layers[0].clone().collect::<Vec<u32>>().iter().enumerate() {
            if k % phase_ids.len() != pi {
                continue;
            }
            if !covered {
                mb.begin_if(cond, 0.02);
                covered = true;
            }
            let site = pb.fresh_site();
            let arg = *p_rng.choose(&live);
            mb.call(site, worker_ids[w0 as usize], vec![arg.into()], false);
        }
        if covered {
            mb.end();
        }
        publish(&mut p_rng, &mut mb, &live);
        let ret = *p_rng.choose(&live);
        mb.ret(ret);
        pb.define(pid, mb);
    }

    // ---- main ----
    let mut main = MethodBuilder::new("main", 0);
    let seed_reg = main.op(OpKind::Load, 17i64, 0i64);
    main.begin_loop(spec.driver_iters);
    for &pid in &phase_ids {
        let site = pb.fresh_site();
        main.call(site, pid, vec![seed_reg.into()], false);
    }
    main.end();
    main.ret(seed_reg);
    let main_id = pb.add(main);
    pb.entry(main_id);

    pb.build()
        .unwrap_or_else(|e| panic!("benchmark {} failed validation: {e:?}", spec.name))
}

#[allow(clippy::too_many_arguments)]
fn gen_worker(
    spec: &BenchmarkSpec,
    rng: &mut Rng,
    pb: &mut ProgramBuilder,
    mix: &Categorical,
    body_dist: &LogNormal,
    layer_idx: usize,
    _w: u32,
    layers: &[std::ops::Range<u32>],
    popularity: &[Vec<u32>],
    worker_ids: &[MethodId],
    accessor_ids: &[MethodId],
    mandatory_next: &[u32],
    mandatory_acc: &[usize],
) -> MethodBuilder {
    // All workers take a single value parameter; call sites pass one
    // argument (the uniform Java-ish "operate on this" convention keeps
    // site/arity bookkeeping trivial for the generator).
    let n_params = 1u16;
    let mut mb = MethodBuilder::new(format!("w{layer_idx}_{_w}"), n_params);
    let mut live: Vec<Reg> = (0..n_params).map(Reg).collect();
    // Root the value chain in runtime data (a field read), not a literal:
    // real Java methods compute on heap state, so the optimizing
    // compiler's constant propagation must not collapse whole bodies.
    let c = mb.op(OpKind::Load, mb.param(0), rng.range_i64(1, 1000));
    live.push(c);

    // Depth profile: upper layers hold the big orchestration methods and
    // compute kernels; deeper layers are progressively smaller utility
    // methods (string helpers, bounds checks, vector ops) — the
    // amplification of call counts down the tree then lands on *small*
    // callees, which is exactly the population inlining pays off for in
    // real Java programs.
    let depth_frac = if layers.len() > 1 {
        layer_idx as f64 / (layers.len() - 1) as f64
    } else {
        0.0
    };
    let size_scale = 1.0 - 0.75 * depth_frac;
    let total_ops = ((f64::from(lognormal_int(rng, body_dist, 4, 600))) * size_scale)
        .round()
        .max(3.0) as u32;
    let is_last_layer = layer_idx + 1 >= layers.len();
    let has_kernel = rng.chance(spec.kernel_prob * (1.0 - 0.85 * depth_frac));

    // Worker→worker fan-out (deeper layers only). Fan-out shrinks with
    // depth — upper layers are orchestration hubs with many call sites,
    // deep layers small utilities with one or two — and grows with body
    // size (big generated methods call out a lot), which is what lets the
    // heavy size tail produce the huge post-inlining callers that
    // CALLER_MAX_SIZE exists to stop.
    let n_calls = if is_last_layer {
        0
    } else {
        let depth_fan = 1.0 - 0.55 * depth_frac;
        let size_fan = (f64::from(total_ops) / spec.body_median_ops).sqrt();
        let jitter = (rng.f64() + 0.5).min(1.5);
        (spec.fanout_mean * depth_fan * size_fan * jitter).round() as usize
    };

    // First chunk of straight-line ops, anchored by a publish every
    // handful of statements.
    let head_ops = total_ops / 3;
    for k in 0..head_ops {
        emit_op(rng, &mut mb, mix, &mut live);
        if k % 7 == 6 {
            publish(rng, &mut mb, &live);
        }
    }

    // Compute kernel: a hot loop dominated by arithmetic, with an
    // occasional accessor call (a real kernel's field reads) — the op-to-
    // call ratio inside kernels sets how much of the program's time
    // inlining can possibly win back.
    let kernel_ops = ((f64::from(total_ops)) * 0.5).round().max(8.0) as u32;
    if has_kernel {
        let trips = ((f64::from(spec.kernel_trips)) * (0.5 + rng.f64() * 1.5)).round() as u32;
        let n_acc_calls = if accessor_ids.is_empty() || rng.chance(0.3) {
            0
        } else {
            rng.range_usize(1, 3)
        };
        mb.begin_loop(trips.max(1));
        for _ in 0..kernel_ops {
            emit_op(rng, &mut mb, mix, &mut live);
        }
        for _ in 0..n_acc_calls {
            let target = *rng.choose(accessor_ids);
            let site = pb.fresh_site();
            let arg = *rng.choose(&live);
            if let Some(r) = mb.call(site, target, vec![arg.into()], true) {
                live.push(r);
            }
        }
        // Feed the kernel results back to memory.
        publish(rng, &mut mb, &live);
        mb.end();
    }

    // Last-layer utilities read a couple of fields through accessors, so
    // even the leaves of the worker tree carry inlinable call sites.
    if is_last_layer && !accessor_ids.is_empty() {
        for _ in 0..rng.range_usize(1, 2) {
            let target = *rng.choose(accessor_ids);
            let site = pb.fresh_site();
            let arg = *rng.choose(&live);
            if let Some(r) = mb.call(site, target, vec![arg.into()], true) {
                live.push(r);
            }
        }
    }

    // Mandatory accessor coverage: straight calls (cheap, often inlined).
    for &a in mandatory_acc {
        let site = pb.fresh_site();
        let arg = *rng.choose(&live);
        if let Some(r) = mb.call(site, accessor_ids[a], vec![arg.into()], true) {
            live.push(r);
        }
    }

    // Worker→worker calls: mandatory coverage targets first, then
    // popularity-drawn extras; each site is straight-line, in a small
    // loop (warm), or under a cold branch.
    let mut targets: Vec<MethodId> = mandatory_next
        .iter()
        .map(|&w| worker_ids[w as usize])
        .collect();
    for _ in 0..n_calls {
        // Target layer: usually the next one, sometimes deeper.
        let max_skip = layers.len() - 1 - layer_idx;
        let skip = 1 + (rng.below(3) as usize).min(max_skip.saturating_sub(1));
        let target_layer = (layer_idx + skip).min(layers.len() - 1);
        let pops = &popularity[target_layer];
        let zipf = Zipf::new(pops.len() as u64, spec.hot_skew).expect("zipf valid");
        let rank = zipf.sample(rng) as usize - 1;
        targets.push(worker_ids[pops[rank] as usize]);
    }
    for target in targets {
        let site = pb.fresh_site();
        let arg = *rng.choose(&live);

        if rng.chance(spec.call_in_loop_prob) {
            // A warm call: repeated a couple of times.
            let reps = rng.range_usize(2, 3) as u32;
            mb.begin_loop(reps);
            if let Some(r) = mb.call(site, target, vec![arg.into()], true) {
                live.push(r);
            }
            mb.end();
        } else if rng.chance(spec.cold_branch_prob) {
            // A cold call: error/slow path that almost never runs.
            let cond = *rng.choose(&live);
            mb.begin_if(cond, 0.02);
            mb.call(site, target, vec![arg.into()], false);
            mb.end();
        } else if let Some(r) = mb.call(site, target, vec![arg.into()], true) {
            live.push(r);
        }
        emit_op(rng, &mut mb, mix, &mut live);
    }

    // Tail ops.
    let used = head_ops + if has_kernel { kernel_ops } else { 0 };
    for _ in used..total_ops.max(used) {
        emit_op(rng, &mut mb, mix, &mut live);
    }

    // Publish results so the body's computation is observable (not DCE
    // fodder), then return a live value.
    publish(rng, &mut mb, &live);
    let ret = *rng.choose(&live);
    mb.ret(ret);
    mb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{OpMix, Suite};
    use ir::size::method_size;
    use ir::validate::{check_unique_sites, validate};

    fn small_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "unit-small",
            description: "generator unit-test spec",
            suite: Suite::SpecJvm98,
            n_workers: 24,
            n_accessors: 8,
            n_layers: 4,
            body_median_ops: 12.0,
            body_sigma: 0.8,
            fanout_mean: 1.6,
            hot_skew: 1.2,
            n_phases: 2,
            driver_iters: 5,
            phase_trips: 4,
            kernel_prob: 0.4,
            kernel_trips: 20,
            call_in_loop_prob: 0.3,
            cold_branch_prob: 0.25,
            mix: OpMix::INT,
        }
    }

    #[test]
    fn generates_valid_unique_site_program() {
        let p = generate(&small_spec(), 1);
        assert!(validate(&p).is_empty());
        assert!(check_unique_sites(&p).is_empty());
        assert_eq!(p.method_count() as u32, small_spec().total_methods());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&small_spec(), 7);
        let b = generate(&small_spec(), 7);
        let c = generate(&small_spec(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn accessor_population_spans_the_always_inline_band() {
        let p = generate(&small_spec(), 2);
        // Accessors are the first n_accessors methods: plain getters sit
        // below the default ALWAYS_INLINE_SIZE (11), chained helpers in the
        // 11..=23 CALLEE_MAX band — none above it.
        let sizes: Vec<u32> = p.methods.iter().take(8).map(method_size).collect();
        assert!(sizes.iter().any(|&s| s < 11), "{sizes:?}");
        assert!(sizes.iter().all(|&s| s <= 26), "{sizes:?}");
    }

    #[test]
    fn whole_program_is_reachable_from_main() {
        let p = generate(&small_spec(), 3);
        let reachable = p.reachable().len();
        // Mandatory-coverage assignments make the entire population live.
        assert_eq!(
            reachable,
            p.method_count(),
            "all emitted methods must be reachable"
        );
    }

    #[test]
    fn frequency_analysis_converges_on_generated_programs() {
        let p = generate(&small_spec(), 4);
        let fa = ir::freq::analyze(&p, 1.0);
        assert!(fa.converged);
        assert!(fa.total_dynamic_calls() > 0.0);
    }

    #[test]
    fn layer_ranges_partition() {
        let r = layer_ranges(10, 3);
        assert_eq!(r, vec![0..4, 4..7, 7..10]);
        let r1 = layer_ranges(5, 1);
        assert_eq!(r1, vec![0..5]);
        // More layers than workers: clamped.
        let r2 = layer_ranges(2, 5);
        assert_eq!(r2.len(), 2);
    }

    #[test]
    fn small_program_is_interpretable() {
        // Semantic sanity: the generated program runs under the reference
        // interpreter (small spec keeps dynamic counts low).
        let p = generate(&small_spec(), 5);
        let out = ir::interp::run(
            &p,
            &[],
            &ir::interp::InterpLimits {
                fuel: 200_000_000,
                max_depth: 128,
            },
        );
        assert!(out.is_ok(), "{out:?}");
    }
}
