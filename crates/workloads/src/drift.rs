//! Drifting workloads: phased hotness / call-graph shifts over a base
//! suite, driven by a seeded schedule.
//!
//! The paper tunes against a *fixed* suite; the online mode
//! (`crates/online`) retunes live while the workload underneath it
//! shifts. This module is the workload side of that story: a
//! [`DriftSchedule`] maps an epoch counter to a [`DriftPos`] (which
//! phase the workload is in, and — for ramps — how far between two
//! phases), and [`DriftSchedule::suite_for`] materializes the suite as
//! it looks at that position by morphing each benchmark's
//! hotness/call-graph knobs with factors drawn from a seeded stream.
//!
//! Determinism contract: everything is a pure function of
//! `(schedule, base suite, pos)`. Phase 0 is the identity morph, so an
//! online job's initial tune sees exactly the workload a plain offline
//! job would. Programs are regenerated from the *same* structural seed
//! as the base benchmark (`child_seed(SUITE_SEED, name)`) — only the
//! shape knobs move, modeling "the same application, behaving
//! differently", not a different application.

use simrng::{child_rng, child_seed};

use crate::generate::generate;
use crate::spec::BenchmarkSpec;
use crate::suites::{Benchmark, SUITE_SEED};

/// The temporal shape of a drift schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// Hold each phase for `period` epochs, then jump to the next and
    /// stay on the last phase forever.
    Step,
    /// Interpolate knobs linearly from each phase toward the next over
    /// `period` epochs, holding the last phase once reached.
    Ramp,
    /// Hold each phase for `period` epochs, wrapping back to phase 0
    /// after the last (periodic re-visits: the store-warmed retune's
    /// best case).
    Cyclic,
}

impl DriftKind {
    /// Wire name (`step` / `ramp` / `cyclic`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DriftKind::Step => "step",
            DriftKind::Ramp => "ramp",
            DriftKind::Cyclic => "cyclic",
        }
    }

    /// Parses a wire name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "step" => Some(DriftKind::Step),
            "ramp" => Some(DriftKind::Ramp),
            "cyclic" => Some(DriftKind::Cyclic),
            _ => None,
        }
    }

    /// All kinds, for sweeps and CLIs.
    pub const ALL: [DriftKind; 3] = [DriftKind::Step, DriftKind::Ramp, DriftKind::Cyclic];
}

/// A seeded drift schedule: `phases` distinct workload phases visited
/// in `kind` order, each lasting `period` epochs, with all morph
/// randomness drawn from `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftSchedule {
    /// Temporal shape.
    pub kind: DriftKind,
    /// Epochs per phase (≥ 1).
    pub period: u32,
    /// Number of distinct phases (≥ 1; phase 0 is the unmorphed base).
    pub phases: u32,
    /// Seed of the morph streams (independent of GA and suite seeds).
    pub seed: u64,
}

/// A canonical position in a drift schedule: the current phase plus a
/// rational offset `num/den` toward the next phase (always `0/1` for
/// step and cyclic schedules, so every epoch inside one phase maps to
/// the *same* position — and therefore the same problem-cache cell and
/// store fingerprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DriftPos {
    /// Current phase index (`< phases`).
    pub phase: u32,
    /// Offset numerator toward `phase + 1` (ramp only; `< den`).
    pub num: u32,
    /// Offset denominator (`1` for step/cyclic, `period` for ramp).
    pub den: u32,
}

impl DriftPos {
    /// The position of phase `p` exactly (no inter-phase offset).
    #[must_use]
    pub fn at_phase(p: u32) -> Self {
        Self {
            phase: p,
            num: 0,
            den: 1,
        }
    }

    /// Fractional offset toward the next phase in `[0, 1)`.
    #[must_use]
    pub fn frac(&self) -> f64 {
        if self.den == 0 {
            0.0
        } else {
            f64::from(self.num) / f64::from(self.den)
        }
    }
}

impl std::fmt::Display for DriftPos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.num == 0 {
            write!(f, "phase {}", self.phase)
        } else {
            write!(f, "phase {}+{}/{}", self.phase, self.num, self.den)
        }
    }
}

impl DriftSchedule {
    /// The workload position at `epoch` (epochs count from 0).
    #[must_use]
    pub fn pos_at(&self, epoch: u64) -> DriftPos {
        let period = u64::from(self.period.max(1));
        let phases = u64::from(self.phases.max(1));
        let slot = epoch / period;
        match self.kind {
            DriftKind::Step => {
                let p = slot.min(phases - 1);
                DriftPos::at_phase(u32::try_from(p).unwrap_or(u32::MAX))
            }
            DriftKind::Cyclic => {
                let p = slot % phases;
                DriftPos::at_phase(u32::try_from(p).unwrap_or(u32::MAX))
            }
            DriftKind::Ramp => {
                let p = slot.min(phases - 1);
                if p == phases - 1 {
                    // Reached the last phase: hold it.
                    DriftPos::at_phase(u32::try_from(p).unwrap_or(u32::MAX))
                } else {
                    let num = u32::try_from(epoch % period).unwrap_or(0);
                    if num == 0 {
                        // Canonical: a ramp sitting exactly on a phase IS
                        // that phase (same cache cell, same fingerprint).
                        DriftPos::at_phase(u32::try_from(p).unwrap_or(u32::MAX))
                    } else {
                        DriftPos {
                            phase: u32::try_from(p).unwrap_or(u32::MAX),
                            num,
                            den: self.period.max(1),
                        }
                    }
                }
            }
        }
    }

    /// Whether the workload position changes *at* `epoch` (i.e. differs
    /// from the position at `epoch - 1`). Epoch 0 is not a boundary.
    #[must_use]
    pub fn is_boundary(&self, epoch: u64) -> bool {
        epoch > 0 && self.pos_at(epoch) != self.pos_at(epoch - 1)
    }

    /// Ground-truth count of position changes over `epochs` epochs.
    #[must_use]
    pub fn boundaries(&self, epochs: u64) -> u64 {
        (1..epochs).filter(|&e| self.is_boundary(e)).count() as u64
    }

    /// The suite as it looks at `pos`: every base benchmark morphed by
    /// this schedule's seeded per-phase knob shifts. Phase `0/1` is the
    /// identity (bit-identical programs to the base suite).
    #[must_use]
    pub fn suite_for(&self, base: &[Benchmark], pos: &DriftPos) -> Vec<Benchmark> {
        base.iter()
            .map(|b| {
                let spec = self.morph(&b.spec, pos);
                if spec == b.spec {
                    b.clone()
                } else {
                    let program = generate(&spec, child_seed(SUITE_SEED, spec.name));
                    Benchmark { spec, program }
                }
            })
            .collect()
    }

    /// The morphed spec of one benchmark at `pos`.
    #[must_use]
    pub fn morph(&self, base: &BenchmarkSpec, pos: &DriftPos) -> BenchmarkSpec {
        let here = self.knobs_at(base, pos.phase);
        let knobs = if pos.num == 0 {
            here
        } else {
            let next = self.knobs_at(base, (pos.phase + 1).min(self.phases.saturating_sub(1)));
            Knobs::lerp(&here, &next, pos.frac())
        };
        knobs.apply(base)
    }

    /// The knob targets of `base` at exactly `phase`. Phase 0 is the
    /// base spec itself; later phases draw shifts from the seeded
    /// stream `drift/<name>/<phase>` — independent per benchmark and
    /// per phase, so adding a phase or a benchmark never perturbs the
    /// others.
    fn knobs_at(&self, base: &BenchmarkSpec, phase: u32) -> Knobs {
        if phase == 0 {
            return Knobs::of(base);
        }
        let mut rng = child_rng(self.seed, &format!("drift/{}/{phase}", base.name));
        // Hotness shifts: where the time goes moves around.
        let hot_skew = (base.hot_skew * rng.f64_range(0.55, 1.9)).clamp(0.4, 3.0);
        let call_in_loop_prob = rng.f64_range(0.05, 0.9);
        let kernel_prob = rng.f64_range(0.08, 0.9);
        let kernel_trips = (f64::from(base.kernel_trips) * rng.f64_range(0.3, 3.0)).max(1.0);
        // Call-graph shifts: how much code there is and how it calls.
        let fanout_mean = (base.fanout_mean * rng.f64_range(0.6, 1.8)).clamp(0.5, 12.0);
        let body_median_ops = (base.body_median_ops * rng.f64_range(0.6, 1.8)).max(2.0);
        let cold_branch_prob = rng.f64_range(0.02, 0.6);
        Knobs {
            hot_skew,
            call_in_loop_prob,
            cold_branch_prob,
            kernel_prob,
            kernel_trips,
            fanout_mean,
            body_median_ops,
        }
    }
}

/// The continuous knob targets a drift phase controls, held as `f64` so
/// ramp positions can interpolate before rounding back into the spec.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Knobs {
    hot_skew: f64,
    call_in_loop_prob: f64,
    cold_branch_prob: f64,
    kernel_prob: f64,
    kernel_trips: f64,
    fanout_mean: f64,
    body_median_ops: f64,
}

impl Knobs {
    fn of(spec: &BenchmarkSpec) -> Self {
        Self {
            hot_skew: spec.hot_skew,
            call_in_loop_prob: spec.call_in_loop_prob,
            cold_branch_prob: spec.cold_branch_prob,
            kernel_prob: spec.kernel_prob,
            kernel_trips: f64::from(spec.kernel_trips),
            fanout_mean: spec.fanout_mean,
            body_median_ops: spec.body_median_ops,
        }
    }

    fn lerp(a: &Self, b: &Self, t: f64) -> Self {
        let l = |x: f64, y: f64| x + (y - x) * t;
        Self {
            hot_skew: l(a.hot_skew, b.hot_skew),
            call_in_loop_prob: l(a.call_in_loop_prob, b.call_in_loop_prob),
            cold_branch_prob: l(a.cold_branch_prob, b.cold_branch_prob),
            kernel_prob: l(a.kernel_prob, b.kernel_prob),
            kernel_trips: l(a.kernel_trips, b.kernel_trips),
            fanout_mean: l(a.fanout_mean, b.fanout_mean),
            body_median_ops: l(a.body_median_ops, b.body_median_ops),
        }
    }

    fn apply(&self, base: &BenchmarkSpec) -> BenchmarkSpec {
        let mut spec = base.clone();
        spec.hot_skew = self.hot_skew;
        spec.call_in_loop_prob = self.call_in_loop_prob.clamp(0.0, 1.0);
        spec.cold_branch_prob = self.cold_branch_prob.clamp(0.0, 1.0);
        spec.kernel_prob = self.kernel_prob.clamp(0.0, 1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            spec.kernel_trips = self.kernel_trips.round().max(1.0) as u32;
        }
        spec.fanout_mean = self.fanout_mean;
        spec.body_median_ops = self.body_median_ops;
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::benchmark_by_name;

    fn sched(kind: DriftKind) -> DriftSchedule {
        DriftSchedule {
            kind,
            period: 3,
            phases: 3,
            seed: 77,
        }
    }

    fn base() -> Vec<Benchmark> {
        vec![benchmark_by_name("db").unwrap()]
    }

    #[test]
    fn step_positions_hold_then_jump_then_stick() {
        let s = sched(DriftKind::Step);
        let got: Vec<u32> = (0..12).map(|e| s.pos_at(e).phase).collect();
        assert_eq!(got, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 2, 2, 2]);
        assert!((0..12).all(|e| s.pos_at(e).num == 0));
    }

    #[test]
    fn cyclic_positions_wrap() {
        let s = sched(DriftKind::Cyclic);
        let got: Vec<u32> = (0..12).map(|e| s.pos_at(e).phase).collect();
        assert_eq!(got, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 0, 0]);
    }

    #[test]
    fn ramp_interpolates_and_holds_last_phase() {
        let s = sched(DriftKind::Ramp);
        assert_eq!(
            s.pos_at(0),
            DriftPos {
                phase: 0,
                num: 0,
                den: 1
            }
        );
        assert_eq!(
            s.pos_at(1),
            DriftPos {
                phase: 0,
                num: 1,
                den: 3
            }
        );
        assert_eq!(
            s.pos_at(2),
            DriftPos {
                phase: 0,
                num: 2,
                den: 3
            }
        );
        assert_eq!(s.pos_at(3), DriftPos::at_phase(1));
        // Last phase holds with no offset.
        assert_eq!(s.pos_at(6), DriftPos::at_phase(2));
        assert_eq!(s.pos_at(7), DriftPos::at_phase(2));
        // Every epoch of a ramp (before the hold) is a boundary.
        assert_eq!(s.boundaries(7), 6);
    }

    #[test]
    fn phase_zero_is_identity() {
        for kind in DriftKind::ALL {
            let s = sched(kind);
            let b = base();
            let suite = s.suite_for(&b, &s.pos_at(0));
            assert_eq!(suite[0].spec, b[0].spec);
            assert_eq!(suite[0].program, b[0].program);
        }
    }

    #[test]
    fn later_phases_actually_morph() {
        let s = sched(DriftKind::Step);
        let b = base();
        let p1 = s.suite_for(&b, &DriftPos::at_phase(1));
        let p2 = s.suite_for(&b, &DriftPos::at_phase(2));
        assert_ne!(p1[0].spec, b[0].spec);
        assert_ne!(p2[0].spec, b[0].spec);
        assert_ne!(p1[0].spec, p2[0].spec);
        // Structure stays the app's: same name and method population.
        assert_eq!(p1[0].spec.name, "db");
        assert_eq!(p1[0].spec.total_methods(), b[0].spec.total_methods());
    }

    #[test]
    fn morphs_are_deterministic_in_seed() {
        let s = sched(DriftKind::Step);
        let b = base();
        let once = s.suite_for(&b, &DriftPos::at_phase(2));
        let twice = s.suite_for(&b, &DriftPos::at_phase(2));
        assert_eq!(once[0].spec, twice[0].spec);
        assert_eq!(once[0].program, twice[0].program);
        let other = DriftSchedule { seed: 78, ..s };
        assert_ne!(
            other.suite_for(&b, &DriftPos::at_phase(2))[0].spec,
            once[0].spec
        );
    }

    #[test]
    fn ramp_midpoint_sits_between_phases() {
        let s = sched(DriftKind::Ramp);
        let b = base();
        let a = s.morph(&b[0].spec, &DriftPos::at_phase(0));
        let c = s.morph(&b[0].spec, &DriftPos::at_phase(1));
        let mid = s.morph(
            &b[0].spec,
            &DriftPos {
                phase: 0,
                num: 1,
                den: 2,
            },
        );
        let between = |x: f64, lo: f64, hi: f64| {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            x >= lo - 1e-9 && x <= hi + 1e-9
        };
        assert!(between(mid.hot_skew, a.hot_skew, c.hot_skew));
        assert!(between(mid.fanout_mean, a.fanout_mean, c.fanout_mean));
        assert!(between(
            mid.call_in_loop_prob,
            a.call_in_loop_prob,
            c.call_in_loop_prob
        ));
    }

    #[test]
    fn morphed_knobs_stay_in_valid_ranges() {
        let b = base();
        for kind in DriftKind::ALL {
            for seed in 0..20 {
                let s = DriftSchedule {
                    kind,
                    period: 2,
                    phases: 5,
                    seed,
                };
                for e in 0..10 {
                    let m = s.morph(&b[0].spec, &s.pos_at(e));
                    assert!((0.0..=1.0).contains(&m.call_in_loop_prob));
                    assert!((0.0..=1.0).contains(&m.cold_branch_prob));
                    assert!((0.0..=1.0).contains(&m.kernel_prob));
                    assert!(m.kernel_trips >= 1);
                    assert!(m.hot_skew > 0.0 && m.fanout_mean > 0.0);
                    assert!(m.body_median_ops >= 2.0);
                }
            }
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in DriftKind::ALL {
            assert_eq!(DriftKind::by_name(kind.name()), Some(kind));
        }
        assert_eq!(DriftKind::by_name("nope"), None);
    }
}
