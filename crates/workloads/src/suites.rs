//! The 14 calibrated benchmark instances: SPECjvm98 (Table 2 of the paper)
//! and DaCapo+JBB (Table 3).
//!
//! Calibration targets (checked by this crate's tests and recorded in
//! `EXPERIMENTS.md`):
//!
//! * SPEC programs are *running-time dominated* under `Opt` on the x86
//!   model (compile time a modest share of total), DaCapo programs are
//!   *compile-time heavy* (large method populations, short phases);
//! * `compress` is kernel-bound with deep cheap call chains (its best
//!   inline depth differs between `Opt` and `Adapt`, paper Fig. 2a);
//! * `jess` is call-bound with many mid-size methods (inline depth beyond
//!   small values hurts under `Opt`, paper Fig. 2b).

use simrng::child_seed;

use ir::program::Program;

use crate::generate::generate;
use crate::spec::{BenchmarkSpec, OpMix, Suite};

/// Master seed of the released suites. Changing this regenerates every
/// benchmark (and invalidates recorded experiment numbers).
pub const SUITE_SEED: u64 = 0x2005_1112_c0de;

/// A generated benchmark: its spec plus the program.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// The calibrated shape description.
    pub spec: BenchmarkSpec,
    /// The generated program.
    pub program: Program,
}

impl Benchmark {
    /// Generates a benchmark from its spec with the suite master seed.
    #[must_use]
    pub fn from_spec(spec: BenchmarkSpec) -> Self {
        let seed = child_seed(SUITE_SEED, spec.name);
        let program = generate(&spec, seed);
        Self { spec, program }
    }

    /// The benchmark's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.spec.name
    }
}

fn spec_base(name: &'static str, description: &'static str, suite: Suite) -> BenchmarkSpec {
    BenchmarkSpec {
        name,
        description,
        suite,
        n_workers: 100,
        n_accessors: 30,
        n_layers: 5,
        body_median_ops: 16.0,
        body_sigma: 0.9,
        fanout_mean: 1.8,
        hot_skew: 1.15,
        n_phases: 3,
        driver_iters: 40,
        phase_trips: 25,
        kernel_prob: 0.35,
        kernel_trips: 60,
        call_in_loop_prob: 0.30,
        cold_branch_prob: 0.25,
        mix: OpMix::INT,
    }
}

/// The seven SPECjvm98 training benchmarks (paper Table 2).
#[must_use]
pub fn specjvm98_specs() -> Vec<BenchmarkSpec> {
    vec![
        // Java version of 129.compress from SPEC 95: a byte-crunching
        // kernel, few methods, very long running, deep narrow call chains.
        BenchmarkSpec {
            n_workers: 40,
            n_accessors: 14,
            n_layers: 8,
            body_median_ops: 4.0,
            body_sigma: 0.7,
            fanout_mean: 2.0,
            n_phases: 2,
            driver_iters: 20,
            phase_trips: 20,
            kernel_prob: 0.65,
            kernel_trips: 180,
            call_in_loop_prob: 0.45,
            cold_branch_prob: 0.10,
            mix: OpMix::BYTES,
            ..spec_base(
                "compress",
                "Java version of 129.compress from SPEC 95",
                Suite::SpecJvm98,
            )
        },
        // Java expert system shell: rule matching — many mid-size integer
        // methods, call-bound, high fan-out, little kernel time.
        BenchmarkSpec {
            n_workers: 260,
            n_accessors: 80,
            n_layers: 6,
            body_median_ops: 5.0,
            body_sigma: 1.0,
            fanout_mean: 3.4,
            n_phases: 4,
            driver_iters: 7,
            phase_trips: 20,
            kernel_prob: 0.10,
            kernel_trips: 25,
            call_in_loop_prob: 0.30,
            cold_branch_prob: 0.30,
            mix: OpMix::INT,
            ..spec_base("jess", "Java expert system shell", Suite::SpecJvm98)
        },
        // In-memory database: memory-op heavy, moderate method count.
        BenchmarkSpec {
            n_workers: 55,
            n_accessors: 25,
            n_layers: 4,
            body_median_ops: 4.0,
            body_sigma: 0.8,
            fanout_mean: 2.4,
            n_phases: 3,
            driver_iters: 25,
            phase_trips: 25,
            kernel_prob: 0.40,
            kernel_trips: 70,
            call_in_loop_prob: 0.35,
            cold_branch_prob: 0.20,
            mix: OpMix::MEM,
            ..spec_base(
                "db",
                "Builds and operates on an in-memory database",
                Suite::SpecJvm98,
            )
        },
        // JDK 1.0.2 javac: a real compiler — larger method population with
        // a heavy size tail, moderate run length.
        BenchmarkSpec {
            n_workers: 420,
            n_accessors: 120,
            n_layers: 7,
            body_median_ops: 6.0,
            body_sigma: 1.15,
            fanout_mean: 3.2,
            n_phases: 4,
            driver_iters: 7,
            phase_trips: 22,
            kernel_prob: 0.15,
            kernel_trips: 30,
            call_in_loop_prob: 0.28,
            cold_branch_prob: 0.30,
            mix: OpMix::INT,
            ..spec_base(
                "javac",
                "Java source to bytecode compiler in JDK 1.0.2",
                Suite::SpecJvm98,
            )
        },
        // MPEG-3 audio decoder: floating-point kernels, long running.
        BenchmarkSpec {
            n_workers: 150,
            n_accessors: 40,
            n_layers: 6,
            body_median_ops: 5.0,
            body_sigma: 0.85,
            fanout_mean: 2.2,
            n_phases: 3,
            driver_iters: 10,
            phase_trips: 20,
            kernel_prob: 0.55,
            kernel_trips: 120,
            call_in_loop_prob: 0.40,
            cold_branch_prob: 0.12,
            mix: OpMix::FLOAT,
            ..spec_base(
                "mpegaudio",
                "Decodes an MPEG-3 audio file",
                Suite::SpecJvm98,
            )
        },
        // Single-threaded raytracer: many small vector-math methods invoked
        // enormously often — the inlining showcase (paper: −27% running).
        BenchmarkSpec {
            n_workers: 190,
            n_accessors: 90,
            n_layers: 6,
            body_median_ops: 4.0,
            body_sigma: 0.75,
            fanout_mean: 2.6,
            n_phases: 3,
            driver_iters: 15,
            phase_trips: 30,
            kernel_prob: 0.45,
            kernel_trips: 120,
            call_in_loop_prob: 0.45,
            cold_branch_prob: 0.10,
            mix: OpMix::FLOAT,
            ..spec_base(
                "raytrace",
                "A raytracer working on a scene with a dinosaur",
                Suite::SpecJvm98,
            )
        },
        // Parser generator with lexical analysis: integer state machines.
        BenchmarkSpec {
            n_workers: 280,
            n_accessors: 70,
            n_layers: 6,
            body_median_ops: 5.0,
            body_sigma: 1.05,
            fanout_mean: 3.0,
            n_phases: 3,
            driver_iters: 7,
            phase_trips: 28,
            kernel_prob: 0.20,
            kernel_trips: 40,
            call_in_loop_prob: 0.30,
            cold_branch_prob: 0.28,
            mix: OpMix::INT,
            ..spec_base(
                "jack",
                "A Java parser generator with lexical analysis",
                Suite::SpecJvm98,
            )
        },
    ]
}

/// The seven DaCapo+JBB test benchmarks (paper Table 3).
#[must_use]
pub fn dacapo_jbb_specs() -> Vec<BenchmarkSpec> {
    vec![
        // ANTLR parser generator: a huge population of generated methods
        // with a heavy tail; short run — compile time dominates total
        // (paper: −58% total under Opt:Tot).
        BenchmarkSpec {
            n_workers: 1250,
            n_accessors: 300,
            n_layers: 8,
            body_median_ops: 7.0,
            body_sigma: 1.35,
            fanout_mean: 3.4,
            n_phases: 5,
            driver_iters: 3,
            phase_trips: 10,
            kernel_prob: 0.10,
            kernel_trips: 25,
            call_in_loop_prob: 0.25,
            cold_branch_prob: 0.32,
            mix: OpMix::INT,
            ..spec_base(
                "antlr",
                "parses grammar files and generates a parser and lexical analyzer",
                Suite::DaCapoJbb,
            )
        },
        // FOP XSL-FO → PDF formatter: big object-soup code base.
        BenchmarkSpec {
            n_workers: 1050,
            n_accessors: 320,
            n_layers: 7,
            body_median_ops: 7.0,
            body_sigma: 1.25,
            fanout_mean: 3.3,
            n_phases: 4,
            driver_iters: 4,
            phase_trips: 16,
            kernel_prob: 0.12,
            kernel_trips: 25,
            call_in_loop_prob: 0.26,
            cold_branch_prob: 0.30,
            mix: OpMix::INT,
            ..spec_base(
                "fop",
                "takes an XSL-FO file, parses it and formats it, generating a PDF",
                Suite::DaCapoJbb,
            )
        },
        // Jython interpreter: large dispatch-heavy code base, moderate run.
        BenchmarkSpec {
            n_workers: 1400,
            n_accessors: 380,
            n_layers: 7,
            body_median_ops: 6.0,
            body_sigma: 1.2,
            fanout_mean: 3.5,
            n_phases: 5,
            driver_iters: 4,
            phase_trips: 14,
            kernel_prob: 0.15,
            kernel_trips: 35,
            call_in_loop_prob: 0.30,
            cold_branch_prob: 0.28,
            mix: OpMix::INT,
            ..spec_base(
                "jython",
                "interprets a series of Python programs",
                Suite::DaCapoJbb,
            )
        },
        // PMD source analyzer: visitor-pattern heavy.
        BenchmarkSpec {
            n_workers: 850,
            n_accessors: 260,
            n_layers: 7,
            body_median_ops: 5.0,
            body_sigma: 1.1,
            fanout_mean: 3.2,
            n_phases: 4,
            driver_iters: 5,
            phase_trips: 18,
            kernel_prob: 0.14,
            kernel_trips: 30,
            call_in_loop_prob: 0.28,
            cold_branch_prob: 0.30,
            mix: OpMix::INT,
            ..spec_base(
                "pmd",
                "analyzes a set of Java classes for source code problems",
                Suite::DaCapoJbb,
            )
        },
        // PostScript interpreter: longer-running interpreter loop — the one
        // test benchmark where the paper found no running-time gains.
        BenchmarkSpec {
            n_workers: 420,
            n_accessors: 110,
            n_layers: 5,
            body_median_ops: 5.0,
            body_sigma: 0.95,
            fanout_mean: 2.6,
            n_phases: 3,
            driver_iters: 18,
            phase_trips: 22,
            kernel_prob: 0.35,
            kernel_trips: 80,
            call_in_loop_prob: 0.32,
            cold_branch_prob: 0.22,
            mix: OpMix::BYTES,
            ..spec_base(
                "ps",
                "reads and interprets a PostScript file",
                Suite::DaCapoJbb,
            )
        },
        // ipsixql XML database: query over the works of Shakespeare —
        // memory heavy, short run (paper: −50% total under Opt:Tot).
        BenchmarkSpec {
            n_workers: 620,
            n_accessors: 180,
            n_layers: 6,
            body_median_ops: 6.0,
            body_sigma: 1.2,
            fanout_mean: 3.0,
            n_phases: 4,
            driver_iters: 7,
            phase_trips: 15,
            kernel_prob: 0.18,
            kernel_trips: 40,
            call_in_loop_prob: 0.27,
            cold_branch_prob: 0.26,
            mix: OpMix::MEM,
            ..spec_base(
                "ipsixql",
                "performs a query against the complete works of Shakespeare",
                Suite::DaCapoJbb,
            )
        },
        // pseudojbb: SPECjbb2000 pinned to 70000 transactions for one
        // warehouse — transaction-processing mix, moderate run.
        BenchmarkSpec {
            n_workers: 720,
            n_accessors: 220,
            n_layers: 6,
            body_median_ops: 6.0,
            body_sigma: 1.05,
            fanout_mean: 3.0,
            n_phases: 4,
            driver_iters: 9,
            phase_trips: 22,
            kernel_prob: 0.22,
            kernel_trips: 45,
            call_in_loop_prob: 0.30,
            cold_branch_prob: 0.24,
            mix: OpMix::MEM,
            ..spec_base(
                "pseudojbb",
                "SPECjbb2000 modified to perform a fixed amount of work",
                Suite::DaCapoJbb,
            )
        },
    ]
}

/// Generates the SPECjvm98 training suite.
#[must_use]
pub fn specjvm98() -> Vec<Benchmark> {
    specjvm98_specs()
        .into_iter()
        .map(Benchmark::from_spec)
        .collect()
}

/// Generates the DaCapo+JBB test suite.
#[must_use]
pub fn dacapo_jbb() -> Vec<Benchmark> {
    dacapo_jbb_specs()
        .into_iter()
        .map(Benchmark::from_spec)
        .collect()
}

/// Both suites, training first.
#[must_use]
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = specjvm98();
    v.extend(dacapo_jbb());
    v
}

/// Generates one benchmark by name (across both suites).
#[must_use]
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    specjvm98_specs()
        .into_iter()
        .chain(dacapo_jbb_specs())
        .find(|s| s.name == name)
        .map(Benchmark::from_spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_seven_benchmarks_each() {
        assert_eq!(specjvm98_specs().len(), 7);
        assert_eq!(dacapo_jbb_specs().len(), 7);
        let names: Vec<&str> = specjvm98_specs().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "compress",
                "jess",
                "db",
                "javac",
                "mpegaudio",
                "raytrace",
                "jack"
            ]
        );
    }

    #[test]
    fn lookup_by_name_spans_both_suites() {
        assert!(benchmark_by_name("compress").is_some());
        assert!(benchmark_by_name("antlr").is_some());
        assert!(benchmark_by_name("nope").is_none());
    }

    #[test]
    fn benchmarks_are_reproducible() {
        let a = benchmark_by_name("db").unwrap();
        let b = benchmark_by_name("db").unwrap();
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn dacapo_programs_are_bigger_than_spec_programs() {
        let spec_avg: f64 = specjvm98_specs()
            .iter()
            .map(|s| f64::from(s.total_methods()))
            .sum::<f64>()
            / 7.0;
        let dacapo_avg: f64 = dacapo_jbb_specs()
            .iter()
            .map(|s| f64::from(s.total_methods()))
            .sum::<f64>()
            / 7.0;
        assert!(dacapo_avg > 3.0 * spec_avg);
    }

    #[test]
    fn all_benchmarks_generate_and_validate() {
        for b in all_benchmarks() {
            assert!(
                ir::validate::validate(&b.program).is_empty(),
                "{}",
                b.name()
            );
            assert!(
                ir::validate::check_unique_sites(&b.program).is_empty(),
                "{}",
                b.name()
            );
            let fa = ir::freq::analyze(&b.program, 1.0);
            assert!(fa.converged, "{} freq diverged", b.name());
        }
    }
}
