// Gated: needs the crates.io `proptest` crate (see the `proptest`
// feature note in this crate's Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests of the synthetic-benchmark generator: any
//! reasonable spec must yield a valid, fully reachable, analyzable
//! program, deterministically.

use proptest::prelude::*;

use workloads::{generate, BenchmarkSpec, OpMix, Suite};

prop_compose! {
    fn arb_spec()(
        n_workers in 8u32..120,
        n_accessors in 0u32..40,
        n_layers in 1u32..8,
        body_median in 4.0f64..20.0,
        sigma in 0.3f64..1.5,
        fanout in 0.5f64..3.5,
        skew in 0.6f64..2.0,
        n_phases in 1u32..5,
        driver in 1u32..20,
        trips in 1u32..20,
        kernel_prob in 0.0f64..0.8,
        kernel_trips in 1u32..80,
        in_loop in 0.0f64..0.6,
        cold in 0.0f64..0.5,
        mix_idx in 0usize..4,
    ) -> BenchmarkSpec {
        BenchmarkSpec {
            name: "prop",
            description: "property-generated spec",
            suite: Suite::SpecJvm98,
            n_workers: n_workers.max(n_layers),
            n_accessors,
            n_layers,
            body_median_ops: body_median,
            body_sigma: sigma,
            fanout_mean: fanout,
            hot_skew: skew,
            n_phases,
            driver_iters: driver,
            phase_trips: trips,
            kernel_prob,
            kernel_trips,
            call_in_loop_prob: in_loop,
            cold_branch_prob: cold,
            mix: [OpMix::INT, OpMix::MEM, OpMix::FLOAT, OpMix::BYTES][mix_idx],
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_reasonable_spec_generates_a_sound_program(spec in arb_spec(), seed in any::<u64>()) {
        let p = generate(&spec, seed);
        // Structurally valid with unique fresh call sites.
        prop_assert!(ir::validate::validate(&p).is_empty());
        prop_assert!(ir::validate::check_unique_sites(&p).is_empty());
        // Exactly the promised population, all of it reachable.
        prop_assert_eq!(p.method_count() as u32, spec.total_methods());
        prop_assert_eq!(p.reachable().len(), p.method_count());
        // The analytic profile must converge (no undamped recursion).
        let fa = ir::freq::analyze(&p, 1.0);
        prop_assert!(fa.converged);
        // Every reachable method is actually entered.
        for m in &p.methods {
            prop_assert!(fa.entry_count(m.id) > 0.0, "{} never entered", m.name);
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_spec_and_seed(spec in arb_spec(), seed in any::<u64>()) {
        let a = generate(&spec, seed);
        let b = generate(&spec, seed);
        prop_assert_eq!(&a, &b);
        let c = generate(&spec, seed.wrapping_add(1));
        prop_assert_ne!(&a, &c);
    }

    #[test]
    fn accessors_stay_inside_the_inline_band(spec in arb_spec(), seed in any::<u64>()) {
        prop_assume!(spec.n_accessors > 0);
        let p = generate(&spec, seed);
        for m in p.methods.iter().take(spec.n_accessors as usize) {
            let size = ir::size::method_size(m);
            prop_assert!(size <= 26, "accessor {} has size {size}", m.name);
        }
    }

    #[test]
    fn cost_model_accepts_any_generated_program(spec in arb_spec(), seed in any::<u64>()) {
        let p = generate(&spec, seed);
        let arch = jit::ArchModel::pentium4();
        let cfg = jit::AdaptConfig::default();
        for scenario in [jit::Scenario::Opt, jit::Scenario::Adapt] {
            let m = jit::measure(&p, scenario, &arch, &inliner::InlineParams::jikes_default(), &cfg);
            prop_assert!(m.total_cycles.is_finite() && m.total_cycles > 0.0);
            prop_assert!(m.running_cycles.is_finite() && m.running_cycles > 0.0);
        }
    }
}
