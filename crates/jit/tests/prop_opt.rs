// Gated: needs the crates.io `proptest` crate (see the `proptest`
// feature note in this crate's Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the post-inlining optimizer: on arbitrary
//! random programs, the prop→DCE pipeline preserves observable semantics
//! (return value and heap) while never increasing size or semantic work.

use proptest::prelude::*;

use ir::interp::{run, InterpLimits};
use ir::method::MethodId;
use ir::size::method_size;
use ir::testgen::{random_program, GenConfig};
use ir::validate::validate;
use jit::passes::{const_prop, dce, optimize_method};
use simrng::Rng;

fn limits() -> InterpLimits {
    InterpLimits {
        fuel: 5_000_000,
        max_depth: 64,
    }
}

fn optimize_all(p: &mut ir::Program) -> (u32, u32) {
    let ids: Vec<MethodId> = p.methods.iter().map(|m| m.id).collect();
    let (mut folded, mut removed) = (0, 0);
    for id in ids {
        let stats = optimize_method(p.method_mut(id));
        folded += stats.folded;
        removed += stats.removed;
    }
    (folded, removed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline soundness property: optimizing every method preserves
    /// the program's value and heap, and never increases the semantic
    /// step count or any method's size.
    #[test]
    fn pipeline_preserves_observable_semantics(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &GenConfig::default());
        let before = match run(&p, &[], &limits()) {
            Ok(o) => o,
            Err(_) => { prop_assume!(false); unreachable!() }
        };
        let sizes_before: Vec<u32> = p.methods.iter().map(method_size).collect();
        let mut q = p.clone();
        let _ = optimize_all(&mut q);
        prop_assert!(validate(&q).is_empty(), "{:?}", validate(&q));
        let after = run(&q, &[], &limits()).expect("optimized program runs");
        prop_assert_eq!(before.value, after.value);
        prop_assert_eq!(before.heap_digest, after.heap_digest);
        prop_assert!(after.fuel_used <= before.fuel_used, "optimizer added work");
        for (m, &sz) in q.methods.iter().zip(&sizes_before) {
            prop_assert!(method_size(m) <= sz, "{} grew", m.name);
        }
    }

    /// Each pass alone is also sound (the pipeline property could mask a
    /// bug where one pass breaks and the other repairs by accident).
    #[test]
    fn individual_passes_are_sound(seed in any::<u64>(), which in 0usize..2) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut p = random_program(&mut rng, &GenConfig::default());
        let before = match run(&p, &[], &limits()) {
            Ok(o) => o,
            Err(_) => { prop_assume!(false); unreachable!() }
        };
        let ids: Vec<MethodId> = p.methods.iter().map(|m| m.id).collect();
        for id in ids {
            if which == 0 {
                let _ = const_prop(p.method_mut(id));
            } else {
                let _ = dce(p.method_mut(id));
            }
        }
        prop_assert!(validate(&p).is_empty());
        let after = run(&p, &[], &limits()).unwrap();
        prop_assert_eq!(before.value, after.value);
        prop_assert_eq!(before.heap_digest, after.heap_digest);
    }

    /// The pipeline reaches a fixpoint: running it twice changes nothing
    /// the second time.
    #[test]
    fn pipeline_reaches_fixpoint(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut p = random_program(&mut rng, &GenConfig::default());
        let _ = optimize_all(&mut p);
        let snapshot = p.clone();
        let (folded, removed) = optimize_all(&mut p);
        prop_assert_eq!(folded, 0, "second run still folded");
        prop_assert_eq!(removed, 0, "second run still removed");
        prop_assert_eq!(p, snapshot);
    }

    /// Optimization composes with inlining: inline-then-optimize preserves
    /// semantics end to end (the path the optimizing compiler takes).
    #[test]
    fn inline_then_optimize_is_sound(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &GenConfig::default());
        let before = match run(&p, &[], &limits()) {
            Ok(o) => o,
            Err(_) => { prop_assume!(false); unreachable!() }
        };
        let ids: Vec<MethodId> = p.methods.iter().map(|m| m.id).collect();
        let (mut q, _) = inliner::inline_program(
            &p,
            &inliner::InlineParams::jikes_default(),
            &inliner::HotSites::new(),
            &ids,
        );
        let _ = optimize_all(&mut q);
        prop_assert!(validate(&q).is_empty());
        let after = run(&q, &[], &limits()).unwrap();
        prop_assert_eq!(before.value, after.value);
        prop_assert_eq!(before.heap_digest, after.heap_digest);
        prop_assert!(after.calls_executed <= before.calls_executed);
    }
}
