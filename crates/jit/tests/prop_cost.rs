// Gated: needs the crates.io `proptest` crate (see the `proptest`
// feature note in this crate's Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the JIT cost model, including the key
//! cross-validation: on branch-free programs, the analytic frequency
//! analysis must agree with the reference interpreter *exactly* —
//! the cost model's dynamic counts aren't estimates there, they're ground
//! truth.

use proptest::prelude::*;

use inliner::{HotSites, InlineParams};
use ir::interp::{run, InterpLimits};
use ir::testgen::{random_program, GenConfig};
use jit::compile::{compile_all_baseline, compile_all_opt};
use jit::exec::exec_cycles;
use jit::{measure, AdaptConfig, ArchModel, Scenario};
use simrng::Rng;

fn branch_free_cfg() -> GenConfig {
    GenConfig {
        n_methods: 8,
        max_block_stmts: 5,
        max_nesting: 2,
        max_trips: 4,
        max_params: 2,
        call_prob: 0.35,
        block_prob: 0.2,
        branches: false,
    }
}

fn limits() -> InterpLimits {
    InterpLimits {
        fuel: 5_000_000,
        max_depth: 64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Branch-free programs: analytic dynamic-call counts equal the
    /// interpreter's, both before and after inlining.
    #[test]
    fn analytic_call_counts_match_interpreter(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &branch_free_cfg());
        let out = match run(&p, &[], &limits()) {
            Ok(o) => o,
            Err(_) => { prop_assume!(false); unreachable!() }
        };
        let fa = ir::freq::analyze(&p, 1.0);
        prop_assert!(fa.converged);
        prop_assert!(
            (fa.total_dynamic_calls() - out.calls_executed as f64).abs() < 1e-6,
            "analytic {} vs interpreted {}",
            fa.total_dynamic_calls(),
            out.calls_executed
        );

        // And the post-inlining state's analytic calls match the inlined
        // program's interpreted calls.
        let arch = ArchModel::pentium4();
        let state = compile_all_opt(&p, &arch, &InlineParams::jikes_default(), &HotSites::new());
        let inlined_out = run(&state.program, &[], &limits()).unwrap();
        let breakdown = exec_cycles(&state, &arch);
        prop_assert!(
            (breakdown.dynamic_calls - inlined_out.calls_executed as f64).abs() < 1e-6,
            "analytic {} vs interpreted {} after inlining",
            breakdown.dynamic_calls,
            inlined_out.calls_executed
        );
    }

    /// Baseline-vs-opt structure on *branch-free* programs (where the
    /// analytic profile is exact and the optimizer cannot re-weight
    /// branch estimates): with the spill penalty neutralized, opt code is
    /// at least `baseline_slowdown` faster per op (more when constant
    /// folding deletes work), calls are identical, and the opt state's
    /// total never exceeds the baseline state's.
    #[test]
    fn baseline_slowdown_bounds_hold_on_branch_free_programs(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &branch_free_cfg());
        let mut arch = ArchModel::powerpc_g4();
        arch.spill_penalty = 0.0;
        let base = exec_cycles(&compile_all_baseline(&p, &arch), &arch);
        let opt = exec_cycles(
            &compile_all_opt(&p, &arch, &InlineParams::disabled(), &HotSites::new()),
            &arch,
        );
        prop_assume!(opt.op_cycles > 0.0);
        // The optimizer only removes or folds work: the gap is at least
        // the slowdown factor.
        prop_assert!(
            base.op_cycles / opt.op_cycles >= arch.baseline_slowdown - 1e-9,
            "ratio {}",
            base.op_cycles / opt.op_cycles
        );
        prop_assert!(base.total_cycles >= opt.total_cycles);
        // Calls are never created or (dynamically) destroyed without
        // inlining on branch-free programs.
        prop_assert!((base.call_cycles - opt.call_cycles).abs() < 1e-6 * (1.0 + base.call_cycles));
        prop_assert!((base.dynamic_calls - opt.dynamic_calls).abs() < 1e-9 * (1.0 + base.dynamic_calls));
    }

    /// Measurement sanity on arbitrary programs and parameter vectors:
    /// totals decompose, nothing is negative, scenario invariants hold.
    #[test]
    fn measurement_invariants(
        seed in any::<u64>(),
        callee_max in 0u32..60,
        always in 0u32..35,
        depth in 0u32..16,
        caller_max in 0u32..4100,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &GenConfig::default());
        let params = InlineParams {
            callee_max_size: callee_max,
            always_inline_size: always,
            max_inline_depth: depth,
            caller_max_size: caller_max,
            hot_callee_max_size: 135,
        };
        let arch = ArchModel::pentium4();
        let cfg = AdaptConfig::default();
        for scenario in [Scenario::Opt, Scenario::Adapt] {
            let m = measure(&p, scenario, &arch, &params, &cfg);
            prop_assert!(m.total_cycles >= 0.0 && m.running_cycles >= 0.0);
            prop_assert!(m.compile_cycles >= 0.0);
            prop_assert!(
                (m.compile_cycles - m.baseline_compile_cycles - m.opt_compile_cycles).abs() < 1e-6,
                "compile decomposition"
            );
            prop_assert!(
                (m.total_cycles - m.compile_cycles - m.first_iter_exec_cycles).abs()
                    < 1e-6 * m.total_cycles.max(1.0),
                "total decomposition"
            );
            prop_assert!(m.steady.icache_factor >= 1.0);
            // The first iteration can never be faster than steady state.
            prop_assert!(m.first_iter_exec_cycles >= m.running_cycles - 1e-9);
        }
        // Opt compiles everything it reaches; Adapt at most that.
        let mo = measure(&p, Scenario::Opt, &arch, &params, &cfg);
        let ma = measure(&p, Scenario::Adapt, &arch, &params, &cfg);
        prop_assert!(ma.n_opt_methods <= mo.n_opt_methods);
        prop_assert_eq!(
            ma.n_opt_methods + ma.n_baseline_methods,
            mo.n_opt_methods + mo.n_baseline_methods
        );
    }

    /// Larger workloads cost more: scaling every loop in the entry method
    /// can only increase execution cycles.
    #[test]
    fn cost_is_monotone_in_trip_counts(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let p = random_program(&mut rng, &GenConfig::default());
        let mut scaled = p.clone();
        let entry = scaled.entry;
        for stmt in &mut scaled.method_mut(entry).body {
            stmt.visit_mut(&mut |s| {
                if let ir::Stmt::Loop { trips, .. } = s {
                    *trips *= 2;
                }
            });
        }
        let arch = ArchModel::pentium4();
        let base = exec_cycles(
            &compile_all_baseline(&p, &arch),
            &arch,
        );
        let more = exec_cycles(
            &compile_all_baseline(&scaled, &arch),
            &arch,
        );
        prop_assert!(more.total_cycles >= base.total_cycles - 1e-9);
    }
}
