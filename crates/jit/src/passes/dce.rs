//! Liveness-based dead-code elimination over the structured IR.
//!
//! A backward pass: a pure statement whose destination is never read
//! afterwards is removed. `Store` and `Call` statements are always kept
//! (heap side effects); `Load` is pure in this IR (no traps) and may be
//! removed. Zero-trip loops, loops whose bodies emptied out, and branches
//! with two empty arms are removed whole.
//!
//! Loop bodies use a conservative liveness approximation: every register
//! *read anywhere in the body* is treated as live throughout the body
//! (loop-carried dependences need no fixpoint that way); precision is
//! recovered by the prop→DCE pipeline iterating.

use ir::method::Method;
use ir::op::{OpKind, Operand};
use ir::stmt::{stmt_count, Stmt};

/// Live-register set.
type Live = Vec<bool>;

/// Runs DCE on a method, in place. Returns the number of statements
/// removed (counting every statement inside removed subtrees).
pub fn dce(method: &mut Method) -> u32 {
    let mut live: Live = vec![false; method.n_regs as usize];
    if let Operand::Reg(r) = method.ret {
        live[r.0 as usize] = true;
    }
    let body = std::mem::take(&mut method.body);
    let mut removed = 0;
    method.body = dce_stmts(body, &mut live, &mut removed);
    removed
}

fn mark(o: Operand, live: &mut Live) {
    if let Operand::Reg(r) = o {
        live[r.0 as usize] = true;
    }
}

/// Registers read anywhere in a statement list (for the conservative loop
/// approximation).
fn read_regs(body: &[Stmt], live: &mut Live) {
    ir::stmt::visit_body(body, &mut |s| match s {
        Stmt::Op(o) => {
            mark(o.a, live);
            if o.op != OpKind::Mov {
                mark(o.b, live);
            }
        }
        Stmt::Call(c) => {
            for a in &c.args {
                mark(*a, live);
            }
        }
        Stmt::If { cond, .. } => mark(*cond, live),
        Stmt::Loop { .. } => {}
    });
}

fn dce_stmts(body: Vec<Stmt>, live: &mut Live, removed: &mut u32) -> Vec<Stmt> {
    let mut kept_rev: Vec<Stmt> = Vec::with_capacity(body.len());
    for stmt in body.into_iter().rev() {
        match stmt {
            Stmt::Op(o) => {
                let is_store = o.op == OpKind::Store;
                let dst_live = is_store || live[o.dst.0 as usize];
                if !dst_live {
                    *removed += 1;
                    continue;
                }
                if !is_store {
                    live[o.dst.0 as usize] = false;
                }
                mark(o.a, live);
                if o.op != OpKind::Mov {
                    mark(o.b, live);
                }
                kept_rev.push(Stmt::Op(o));
            }
            Stmt::Call(c) => {
                // Calls may store to the heap: always kept.
                if let Some(d) = c.dst {
                    live[d.0 as usize] = false;
                }
                for a in &c.args {
                    mark(*a, live);
                }
                kept_rev.push(Stmt::Call(c));
            }
            Stmt::Loop { trips, body } => {
                if trips == 0 {
                    *removed += 1 + stmt_count(&body) as u32;
                    continue;
                }
                // Conservative: body-read registers live throughout.
                read_regs(&body, live);
                let new_body = dce_stmts(body, live, removed);
                if new_body.is_empty() {
                    *removed += 1;
                    continue;
                }
                kept_rev.push(Stmt::Loop {
                    trips,
                    body: new_body,
                });
            }
            Stmt::If {
                cond,
                prob_true,
                then_b,
                else_b,
            } => {
                let mut live_then = live.clone();
                let mut live_else = live.clone();
                let t = dce_stmts(then_b, &mut live_then, removed);
                let e = dce_stmts(else_b, &mut live_else, removed);
                if t.is_empty() && e.is_empty() {
                    *removed += 1;
                    continue;
                }
                for ((slot, a), b) in live.iter_mut().zip(&live_then).zip(&live_else) {
                    *slot = *a || *b;
                }
                mark(cond, live);
                kept_rev.push(Stmt::If {
                    cond,
                    prob_true,
                    then_b: t,
                    else_b: e,
                });
            }
        }
    }
    kept_rev.reverse();
    kept_rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::builder::{MethodBuilder, ProgramBuilder};
    use ir::interp::{run, InterpLimits};
    use ir::op::Reg;
    use ir::program::Program;

    fn build(f: impl FnOnce(&mut ProgramBuilder, &mut MethodBuilder)) -> Program {
        let mut pb = ProgramBuilder::new("t");
        let mut mb = MethodBuilder::new("main", 0);
        f(&mut pb, &mut mb);
        let id = pb.add(mb);
        pb.entry(id);
        pb.build().unwrap()
    }

    #[test]
    fn removes_unused_pure_ops_keeps_result_chain() {
        let mut p = build(|_, m| {
            let a = m.op(OpKind::Mov, 1i64, 0i64);
            let _dead = m.op(OpKind::Mul, a, 99i64);
            let b = m.op(OpKind::Add, a, 41i64);
            m.ret(b);
        });
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let n = dce(p.method_mut(p.entry));
        assert_eq!(n, 1);
        let after = run(&p, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.value, after.value);
        assert_eq!(p.method(p.entry).body.len(), 2);
    }

    #[test]
    fn keeps_stores_and_their_inputs() {
        let mut p = build(|_, m| {
            let addr = m.op(OpKind::Mov, 5i64, 0i64);
            let val = m.op(OpKind::Mov, 7i64, 0i64);
            m.op_into(OpKind::Store, Reg(0), addr, val);
            m.ret(0i64);
        });
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let n = dce(p.method_mut(p.entry));
        assert_eq!(n, 0, "store chain must survive");
        let after = run(&p, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.heap_digest, after.heap_digest);
    }

    #[test]
    fn removes_unread_loads() {
        let mut p = build(|_, m| {
            let _dead_load = m.op(OpKind::Load, 3i64, 0i64);
            m.ret(9i64);
        });
        let n = dce(p.method_mut(p.entry));
        assert_eq!(n, 1);
        assert!(p.method(p.entry).body.is_empty());
    }

    #[test]
    fn removes_zero_trip_and_emptied_loops() {
        let mut p = build(|_, m| {
            m.begin_loop(0);
            let x = m.op(OpKind::Mov, 1i64, 0i64);
            m.op_into(OpKind::Add, x, x, 1i64);
            m.end();
            m.begin_loop(5);
            let _dead = m.op(OpKind::Xor, 1i64, 2i64);
            m.end();
            m.ret(4i64);
        });
        let n = dce(p.method_mut(p.entry));
        assert!(n >= 3, "{n}");
        assert!(p.method(p.entry).body.is_empty());
    }

    #[test]
    fn keeps_loop_carried_accumulators() {
        let mut p = build(|_, m| {
            let acc = m.op(OpKind::Mov, 0i64, 0i64);
            m.begin_loop(10);
            m.op_into(OpKind::Add, acc, acc, 2i64);
            m.end();
            m.ret(acc);
        });
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let n = dce(p.method_mut(p.entry));
        assert_eq!(n, 0);
        let after = run(&p, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.value, after.value);
        assert_eq!(after.value, 20);
    }

    #[test]
    fn removes_branches_with_two_dead_arms() {
        let mut p = build(|_, m| {
            let c = m.op(OpKind::Mov, 1i64, 0i64);
            m.begin_if(c, 0.5);
            let _d1 = m.op(OpKind::Add, 1i64, 2i64);
            m.begin_else();
            let _d2 = m.op(OpKind::Mul, 3i64, 4i64);
            m.end();
            m.ret(5i64);
        });
        let n = dce(p.method_mut(p.entry));
        // Both arm ops dead → arms empty → If removed → c's Mov dead too.
        assert!(n >= 3, "{n}");
        assert!(p.method(p.entry).body.is_empty());
    }

    #[test]
    fn calls_survive_even_with_unused_results() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = MethodBuilder::new("f", 1);
        // The callee stores to the heap: removing the call would be wrong.
        f.op_into(OpKind::Store, Reg(0), f.param(0), 1i64);
        f.ret(0i64);
        let fid = pb.add(f);
        let mut m = MethodBuilder::new("main", 0);
        let site = pb.fresh_site();
        let _unused = m.call(site, fid, vec![Operand::Imm(3)], true);
        m.ret(8i64);
        let id = pb.add(m);
        pb.entry(id);
        let mut p = pb.build().unwrap();
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let _ = dce(p.method_mut(id));
        assert_eq!(p.method(id).call_site_count(), 1, "call kept");
        let after = run(&p, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.heap_digest, after.heap_digest);
    }
}
