//! The optimizing compiler's post-inlining passes.
//!
//! The paper's abstract motivates inlining with "increasing the
//! opportunities for compiler optimization". This module makes that
//! mechanism *real* rather than assumed: after the inliner splices a
//! callee, the argument `Mov`s feed [`const_prop()`] (sparse conditional
//! constant propagation over the structured IR), whose folds feed
//! [`dce()`] (liveness-based dead-code elimination) — so a call like
//! `f(#3)` whose body branches on its parameter genuinely shrinks, in
//! both static size (cheaper to compile, less I-cache) and dynamic op
//! count (faster to run).
//!
//! The pipeline iterates prop → DCE to a fixpoint (bounded rounds). Both
//! passes are semantics-preserving with respect to the interpreter's
//! observable outcome (return value and heap); dynamic *step counts* may
//! of course decrease — that is the point. Property tests in
//! `tests/prop_opt.rs` verify this on thousands of random programs.

pub mod const_prop;
pub mod dce;

use ir::method::Method;

pub use const_prop::const_prop;
pub use dce::dce;

/// Combined statistics of one optimization pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassStats {
    /// Operations rewritten to constants (folds + copy propagations).
    pub folded: u32,
    /// Statements removed as dead.
    pub removed: u32,
    /// prop→DCE rounds executed (≥ 1).
    pub rounds: u32,
}

impl PassStats {
    /// Accumulates another run's stats.
    pub fn merge(&mut self, o: &PassStats) {
        self.folded += o.folded;
        self.removed += o.removed;
        self.rounds = self.rounds.max(o.rounds);
    }
}

/// Backstop on prop→DCE rounds. Every productive round consumes rewrite
/// opportunities that cannot recur (an operand is substituted at most
/// once, a fold turns an op into a `Mov` forever, DCE strictly shrinks
/// the body), so the loop terminates on its own; deeply nested bodies
/// have needed up to ~6 rounds in practice.
const MAX_ROUNDS: u32 = 64;

/// Runs the full pipeline on a method, in place.
pub fn optimize_method(method: &mut Method) -> PassStats {
    let mut stats = PassStats::default();
    for round in 1..=MAX_ROUNDS {
        stats.rounds = round;
        let folded = const_prop(method);
        let removed = dce(method);
        stats.folded += folded;
        stats.removed += removed;
        if folded == 0 && removed == 0 {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::builder::{MethodBuilder, ProgramBuilder};
    use ir::interp::{run, InterpLimits};
    use ir::op::OpKind;
    use ir::size::method_size;

    /// A method whose body collapses entirely once its constant argument
    /// is known: the "inlining enables optimization" showcase.
    #[test]
    fn pipeline_collapses_constant_computation() {
        let mut pb = ProgramBuilder::new("t");
        let mut m = MethodBuilder::new("main", 0);
        let a = m.op(OpKind::Mov, 6i64, 0i64);
        let b = m.op(OpKind::Mul, a, 7i64);
        let c = m.op(OpKind::Add, b, 0i64);
        let dead = m.op(OpKind::Xor, c, 123i64);
        let _ = dead; // never used
        m.ret(c);
        let id = pb.add(m);
        pb.entry(id);
        let mut p = pb.build().unwrap();

        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let size_before = method_size(p.method(id));
        let stats = optimize_method(p.method_mut(id));
        let after = run(&p, &[], &InterpLimits::default()).unwrap();

        assert_eq!(before.value, after.value);
        assert_eq!(after.value, 42);
        assert!(stats.folded >= 2, "{stats:?}");
        assert!(stats.removed >= 1, "dead xor must go: {stats:?}");
        assert!(method_size(p.method(id)) <= size_before);
        // The whole chain folds: nothing burns fuel anymore.
        assert!(after.fuel_used < before.fuel_used);
    }

    #[test]
    fn pipeline_is_idempotent() {
        let mut pb = ProgramBuilder::new("t");
        let mut m = MethodBuilder::new("main", 0);
        let a = m.op(OpKind::Mov, 5i64, 0i64);
        let b = m.op(OpKind::Add, a, a);
        m.ret(b);
        let id = pb.add(m);
        pb.entry(id);
        let mut p = pb.build().unwrap();
        let _ = optimize_method(p.method_mut(id));
        let snapshot = p.method(id).clone();
        let stats2 = optimize_method(p.method_mut(id));
        assert_eq!(p.method(id), &snapshot, "second run must be a no-op");
        assert_eq!(stats2.folded, 0);
        assert_eq!(stats2.removed, 0);
    }
}
