//! Conditional constant propagation over the structured IR.
//!
//! A forward pass tracking which registers hold known constants:
//!
//! * operands reading known registers are rewritten to immediates;
//! * pure ops with two immediate operands fold to `Mov dst, #result`;
//! * branches on known-constant conditions are resolved and flattened to
//!   the taken arm;
//! * loops kill every register their body writes (conservative), and a
//!   zero-trip loop leaves the environment untouched for the code after
//!   it.
//!
//! The pass is idempotent: every rewrite it counts leaves the method in a
//! state where re-running finds nothing (the pipeline in
//! [`super::optimize_method`] relies on this to terminate).

use ir::method::Method;
use ir::op::{OpKind, Operand, Reg};
use ir::stmt::{OpStmt, Stmt};

/// Register → known-constant environment (`None` = unknown).
type Env = Vec<Option<i64>>;

/// Runs constant propagation on a method, in place. Returns the number of
/// rewrites performed.
pub fn const_prop(method: &mut Method) -> u32 {
    let mut env: Env = vec![None; method.n_regs as usize];
    let mut folded = 0;
    let body = std::mem::take(&mut method.body);
    method.body = prop_stmts(body, &mut env, &mut folded);
    // Fold the return operand through the final environment.
    if let Operand::Reg(r) = method.ret {
        if let Some(c) = env[r.0 as usize] {
            method.ret = Operand::Imm(c);
            folded += 1;
        }
    }
    folded
}

/// Substitutes an operand through the environment; counts a rewrite when
/// a register read becomes an immediate.
fn subst(o: Operand, env: &Env, folded: &mut u32) -> Operand {
    if let Operand::Reg(r) = o {
        if let Some(c) = env[r.0 as usize] {
            *folded += 1;
            return Operand::Imm(c);
        }
    }
    o
}

/// Registers written anywhere in a statement list (for loop kills).
fn written_regs(body: &[Stmt], out: &mut Vec<Reg>) {
    ir::stmt::visit_body(body, &mut |s| match s {
        Stmt::Op(o) => {
            if o.op.writes_dst() {
                out.push(o.dst);
            }
        }
        Stmt::Call(c) => {
            if let Some(d) = c.dst {
                out.push(d);
            }
        }
        Stmt::Loop { .. } | Stmt::If { .. } => {}
    });
}

fn prop_stmts(body: Vec<Stmt>, env: &mut Env, folded: &mut u32) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(body.len());
    for stmt in body {
        match stmt {
            Stmt::Op(mut o) => {
                o.a = subst(o.a, env, folded);
                if o.op != OpKind::Mov {
                    o.b = subst(o.b, env, folded);
                }
                match o.op {
                    OpKind::Mov => {
                        env[o.dst.0 as usize] = match o.a {
                            Operand::Imm(v) => Some(v),
                            Operand::Reg(_) => None,
                        };
                        out.push(Stmt::Op(o));
                    }
                    OpKind::Load => {
                        env[o.dst.0 as usize] = None;
                        out.push(Stmt::Op(o));
                    }
                    OpKind::Store => {
                        out.push(Stmt::Op(o));
                    }
                    op => {
                        if let (Operand::Imm(a), Operand::Imm(b)) = (o.a, o.b) {
                            // Fold the whole op to a constant move.
                            let v = op.eval_pure(a, b);
                            env[o.dst.0 as usize] = Some(v);
                            *folded += 1;
                            out.push(Stmt::Op(OpStmt {
                                op: OpKind::Mov,
                                dst: o.dst,
                                a: Operand::Imm(v),
                                b: Operand::Imm(0),
                            }));
                        } else {
                            env[o.dst.0 as usize] = None;
                            out.push(Stmt::Op(o));
                        }
                    }
                }
            }
            Stmt::Call(mut c) => {
                for a in &mut c.args {
                    *a = subst(*a, env, folded);
                }
                if let Some(d) = c.dst {
                    env[d.0 as usize] = None;
                }
                out.push(Stmt::Call(c));
            }
            Stmt::Loop { trips, body } => {
                // Everything the body writes is unknown at entry (the
                // previous iteration may have run) and at exit.
                let mut killed = Vec::new();
                written_regs(&body, &mut killed);
                for r in &killed {
                    env[r.0 as usize] = None;
                }
                if trips == 0 {
                    // Body never runs: keep it for DCE to drop; the
                    // environment is already conservative.
                    out.push(Stmt::Loop { trips, body });
                } else {
                    let new_body = prop_stmts(body, env, folded);
                    // `env` now reflects "after one iteration from a
                    // conservative start", which holds after every
                    // iteration, hence after the last.
                    out.push(Stmt::Loop {
                        trips,
                        body: new_body,
                    });
                }
            }
            Stmt::If {
                cond,
                prob_true,
                then_b,
                else_b,
            } => {
                let cond = subst(cond, env, folded);
                if let Operand::Imm(c) = cond {
                    // Branch decided at compile time: flatten to the
                    // taken arm (interpreter semantics: taken iff odd).
                    *folded += 1;
                    let arm = if c & 1 != 0 { then_b } else { else_b };
                    let mut flattened = prop_stmts(arm, env, folded);
                    out.append(&mut flattened);
                } else {
                    let mut env_then = env.clone();
                    let mut env_else = env.clone();
                    let t = prop_stmts(then_b, &mut env_then, folded);
                    let e = prop_stmts(else_b, &mut env_else, folded);
                    // Join: a constant survives only if both arms agree.
                    for (slot, (a, b)) in env.iter_mut().zip(env_then.iter().zip(&env_else)) {
                        *slot = if a == b { *a } else { None };
                    }
                    out.push(Stmt::If {
                        cond,
                        prob_true,
                        then_b: t,
                        else_b: e,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::builder::{MethodBuilder, ProgramBuilder};
    use ir::interp::{run, InterpLimits};
    use ir::program::Program;

    fn build(f: impl FnOnce(&mut ProgramBuilder, &mut MethodBuilder)) -> Program {
        let mut pb = ProgramBuilder::new("t");
        let mut mb = MethodBuilder::new("main", 0);
        f(&mut pb, &mut mb);
        let id = pb.add(mb);
        pb.entry(id);
        pb.build().unwrap()
    }

    #[test]
    fn folds_arithmetic_chains() {
        let mut p = build(|_, m| {
            let a = m.op(OpKind::Mov, 10i64, 0i64);
            let b = m.op(OpKind::Add, a, 32i64);
            m.ret(b);
        });
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let n = const_prop(p.method_mut(p.entry));
        assert!(n >= 2, "{n}");
        let after = run(&p, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.value, after.value);
        // The return operand is now a literal.
        assert_eq!(p.method(p.entry).ret, Operand::Imm(42));
    }

    #[test]
    fn resolves_constant_branches() {
        let mut p = build(|_, m| {
            let c = m.op(OpKind::Mov, 3i64, 0i64); // odd → then
            let out = m.op(OpKind::Mov, 0i64, 0i64);
            m.begin_if(c, 0.5);
            m.op_into(OpKind::Mov, out, 111i64, 0i64);
            m.begin_else();
            m.op_into(OpKind::Mov, out, 222i64, 0i64);
            m.end();
            m.ret(out);
        });
        let _ = const_prop(p.method_mut(p.entry));
        // The If is gone; the method returns a constant.
        assert!(!p
            .method(p.entry)
            .body
            .iter()
            .any(|s| matches!(s, Stmt::If { .. })));
        let out = run(&p, &[], &InterpLimits::default()).unwrap();
        assert_eq!(out.value, 111);
    }

    #[test]
    fn loops_kill_written_registers() {
        let mut p = build(|_, m| {
            let acc = m.op(OpKind::Mov, 0i64, 0i64);
            m.begin_loop(3);
            m.op_into(OpKind::Add, acc, acc, 5i64);
            m.end();
            m.ret(acc);
        });
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let _ = const_prop(p.method_mut(p.entry));
        let after = run(&p, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.value, after.value);
        assert_eq!(after.value, 15);
        // acc must NOT have been folded to a constant return.
        assert_eq!(p.method(p.entry).ret, Operand::Reg(Reg(0)));
    }

    #[test]
    fn constants_defined_inside_nonzero_loops_propagate_after() {
        let mut p = build(|_, m| {
            let r = m.op(OpKind::Mov, 1i64, 0i64);
            m.begin_loop(4);
            m.op_into(OpKind::Mov, r, 9i64, 0i64);
            m.end();
            let s = m.op(OpKind::Add, r, 1i64);
            m.ret(s);
        });
        let _ = const_prop(p.method_mut(p.entry));
        assert_eq!(p.method(p.entry).ret, Operand::Imm(10));
        let out = run(&p, &[], &InterpLimits::default()).unwrap();
        assert_eq!(out.value, 10);
    }

    #[test]
    fn zero_trip_loops_do_not_leak_body_constants() {
        let mut p = build(|_, m| {
            let r = m.op(OpKind::Mov, 1i64, 0i64);
            m.begin_loop(0);
            m.op_into(OpKind::Mov, r, 9i64, 0i64);
            m.end();
            m.ret(r);
        });
        let _ = const_prop(p.method_mut(p.entry));
        let out = run(&p, &[], &InterpLimits::default()).unwrap();
        // r stays 1: the loop never ran, so its body constant must not
        // have been believed. (The conservative kill also forbids folding
        // the return to 1 — correctness over precision.)
        assert_eq!(out.value, 1);
        assert_eq!(p.method(p.entry).ret, Operand::Reg(Reg(0)));
    }

    #[test]
    fn unknown_branch_joins_conservatively() {
        let mut p = build(|_, m| {
            let unknown = m.op(OpKind::Load, 0i64, 0i64); // heap value
            let r = m.op(OpKind::Mov, 0i64, 0i64);
            m.begin_if(unknown, 0.5);
            m.op_into(OpKind::Mov, r, 7i64, 0i64);
            m.begin_else();
            m.op_into(OpKind::Mov, r, 8i64, 0i64);
            m.end();
            m.ret(r);
        });
        let before = run(&p, &[], &InterpLimits::default()).unwrap();
        let _ = const_prop(p.method_mut(p.entry));
        let after = run(&p, &[], &InterpLimits::default()).unwrap();
        assert_eq!(before.value, after.value);
        // r differs across arms: must not be folded.
        assert_eq!(p.method(p.entry).ret, Operand::Reg(Reg(1)));
    }

    #[test]
    fn agreeing_branch_arms_do_fold() {
        let mut p = build(|_, m| {
            let unknown = m.op(OpKind::Load, 0i64, 0i64);
            let r = m.op(OpKind::Mov, 0i64, 0i64);
            m.begin_if(unknown, 0.5);
            m.op_into(OpKind::Mov, r, 7i64, 0i64);
            m.begin_else();
            m.op_into(OpKind::Mov, r, 7i64, 0i64);
            m.end();
            let s = m.op(OpKind::Add, r, 1i64);
            m.ret(s);
        });
        let _ = const_prop(p.method_mut(p.entry));
        assert_eq!(p.method(p.entry).ret, Operand::Imm(8));
    }

    #[test]
    fn call_arguments_get_constant_operands() {
        let mut pb = ProgramBuilder::new("t");
        let mut callee = MethodBuilder::new("f", 1);
        let v = callee.op(OpKind::Add, callee.param(0), 1i64);
        callee.ret(v);
        let f = pb.add(callee);
        let mut m = MethodBuilder::new("main", 0);
        let a = m.op(OpKind::Mov, 41i64, 0i64);
        let site = pb.fresh_site();
        let r = m.call(site, f, vec![a.into()], true).unwrap();
        m.ret(r);
        let id = pb.add(m);
        pb.entry(id);
        let mut p = pb.build().unwrap();
        let _ = const_prop(p.method_mut(id));
        let calls = ir::stmt::call_sites(&p.method(id).body);
        assert_eq!(calls[0].args[0], Operand::Imm(41));
        let out = run(&p, &[], &InterpLimits::default()).unwrap();
        assert_eq!(out.value, 42);
    }
}
