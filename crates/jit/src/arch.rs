//! Architecture models.
//!
//! An [`ArchModel`] bundles every machine-dependent constant of the cost
//! model. Two presets mirror the paper's platforms:
//!
//! * [`ArchModel::pentium4`] — a 2.8 GHz Pentium-4-class x86: deep pipeline
//!   (expensive calls — this is why inlining depth pays on x86 in the
//!   paper), high clock, generous effective instruction-cache capacity;
//! * [`ArchModel::powerpc_g4`] — a 533 MHz PowerPC 7410: short pipeline
//!   (cheap calls), small 64 KB-class I-cache — code growth hurts much
//!   sooner, which is the paper's explanation for the small
//!   `MAX_INLINE_DEPTH` the GA finds on PPC (§6.1).
//!
//! Costs are expressed in cycles per *op unit* (the dynamic unit counted by
//! `ir::freq`) and code sizes in *size units* (the static unit of
//! `ir::size`, ≈ one machine instruction ≈ 4 bytes).

use ir::freq::{class_index, N_COST_CLASSES};
use ir::op::CostClass;

/// A machine model: every architecture-dependent constant in one place.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchModel {
    /// Human-readable name (used in reports).
    pub name: &'static str,
    /// Clock rate in Hz — converts cycles to seconds for the paper's
    /// Fig. 2 (execution time in seconds).
    pub clock_hz: f64,
    /// Cycles per dynamic op unit, by cost class
    /// (`[IntAlu, IntMul, Mem, Float]`).
    pub class_cycles: [f64; N_COST_CLASSES],
    /// Cycles charged per executed (non-inlined) call: linkage, spills,
    /// pipeline disruption, callee prologue/epilogue.
    pub call_overhead: f64,
    /// Extra cycles per argument of an executed call.
    pub call_arg_overhead: f64,
    /// Execution-speed multiplier of baseline-compiled code relative to
    /// optimized code (> 1).
    pub baseline_slowdown: f64,
    /// Baseline compiler: cycles per size unit (a straight bytecode →
    /// machine-code translation pass).
    pub baseline_compile_per_unit: f64,
    /// Baseline compiler: fixed per-method cycles.
    pub baseline_compile_fixed: f64,
    /// Optimizing compiler: fixed per-method cycles.
    pub opt_compile_fixed: f64,
    /// Optimizing compiler: linear cycles per post-inlining size unit.
    pub opt_compile_per_unit: f64,
    /// Optimizing compiler: coefficient of the superlinear term.
    pub opt_compile_super_coeff: f64,
    /// Optimizing compiler: exponent of the superlinear term (> 1): models
    /// the quadratic-ish dataflow analyses that make inlining into huge
    /// callers so expensive — the mechanism behind the paper's finding that
    /// the default `CALLER_MAX_SIZE = 2048` is "overly aggressive". With
    /// the preset coefficients the superlinear term overtakes the linear
    /// one right around 2000 size units, so caller growth past that knee
    /// is what the tuner learns to avoid.
    pub opt_compile_exponent: f64,
    /// Effective instruction-cache capacity in size units.
    pub icache_capacity: f64,
    /// Strength of the I-cache footprint penalty (see
    /// [`ArchModel::icache_penalty`]).
    pub icache_miss_penalty: f64,
    /// Residual relative speedup of code that was inlined into its caller
    /// and then optimized in context, *beyond* what the real constant-
    /// propagation/DCE passes already capture (better scheduling, register
    /// allocation across the old call boundary). Applied in proportion to
    /// the fraction of a method's code that arrived by inlining.
    pub inline_synergy: f64,
    /// Method size (units) beyond which register pressure starts to cost:
    /// huge post-inlining bodies spill, defeat scheduling and slow down —
    /// the "unexpected side effects of inline substitution" of Cooper,
    /// Hall & Torczon that the paper cites as motivation.
    pub spill_threshold: f64,
    /// Strength of the spill penalty (per natural log of size over the
    /// threshold).
    pub spill_penalty: f64,
}

impl ArchModel {
    /// The 2.8 GHz Pentium-4-class x86 workstation of the paper.
    #[must_use]
    pub fn pentium4() -> Self {
        Self {
            name: "x86-p4",
            clock_hz: 2.8e9,
            // P4: fast ALU (double-pumped), slow-ish memory relative to
            // clock, long FP latency.
            class_cycles: [1.0, 4.0, 3.5, 4.5],
            // Deep (20+ stage) pipeline: call/return disruption is big.
            call_overhead: 11.0,
            call_arg_overhead: 1.5,
            baseline_slowdown: 2.8,
            baseline_compile_per_unit: 100.0,
            baseline_compile_fixed: 4_000.0,
            opt_compile_fixed: 30_000.0,
            opt_compile_per_unit: 2_500.0,
            opt_compile_super_coeff: 25.0,
            opt_compile_exponent: 1.8,
            // The P4 trace cache holds ~12K µops; calls it 20K size units
            // of effective instruction-delivery capacity.
            icache_capacity: 20_000.0,
            icache_miss_penalty: 0.25,
            inline_synergy: 0.08,
            // Eight architectural registers: pressure builds early, but the
            // P4's big physical file and trace cache soften it.
            spill_threshold: 300.0,
            spill_penalty: 0.12,
        }
    }

    /// The dual 533 MHz PowerPC 7410 (G4) Macintosh of the paper.
    #[must_use]
    pub fn powerpc_g4() -> Self {
        Self {
            name: "ppc-g4",
            clock_hz: 533e6,
            // Short pipeline: latencies in cycles are lower across the
            // board (the clock is 5x slower, so seconds differ).
            class_cycles: [1.0, 2.5, 2.0, 3.0],
            // 4-stage pipeline: calls are cheap.
            call_overhead: 7.0,
            call_arg_overhead: 1.0,
            baseline_slowdown: 2.8,
            baseline_compile_per_unit: 100.0,
            baseline_compile_fixed: 4_000.0,
            opt_compile_fixed: 30_000.0,
            opt_compile_per_unit: 2_500.0,
            opt_compile_super_coeff: 25.0,
            opt_compile_exponent: 1.8,
            // 32 KB I-cache ≈ 8K instructions: code growth hurts early.
            icache_capacity: 8_000.0,
            icache_miss_penalty: 0.50,
            inline_synergy: 0.05,
            // 32 architectural registers, but a small I-cache and a short
            // fetch pipeline make bloated bodies costly anyway.
            spill_threshold: 220.0,
            spill_penalty: 0.15,
        }
    }

    /// Cycles to baseline-compile a method of the given size.
    #[must_use]
    pub fn baseline_compile_cycles(&self, size: u32) -> f64 {
        self.baseline_compile_fixed + self.baseline_compile_per_unit * f64::from(size)
    }

    /// Cycles to opt-compile a method whose *post-inlining* size is `size`.
    #[must_use]
    pub fn opt_compile_cycles(&self, size: u32) -> f64 {
        let s = f64::from(size);
        self.opt_compile_fixed
            + self.opt_compile_per_unit * s
            + self.opt_compile_super_coeff * s.powf(self.opt_compile_exponent)
    }

    /// Cycles per dynamic op unit of the given class.
    #[must_use]
    pub fn class_cost(&self, c: CostClass) -> f64 {
        self.class_cycles[class_index(c)]
    }

    /// Multiplicative run-time penalty for a hot-code footprint of
    /// `footprint` size units: 1.0 while the working set fits, growing
    /// logarithmically once it spills.
    #[must_use]
    pub fn icache_penalty(&self, footprint: f64) -> f64 {
        if footprint <= self.icache_capacity {
            1.0
        } else {
            1.0 + self.icache_miss_penalty * (footprint / self.icache_capacity).ln()
        }
    }

    /// Per-op multiplicative penalty of an opt-compiled method whose
    /// post-inlining size is `size` units (register pressure / scheduling
    /// degradation in oversized bodies). 1.0 below the threshold.
    #[must_use]
    pub fn spill_factor(&self, size: u32) -> f64 {
        let s = f64::from(size);
        if s <= self.spill_threshold {
            1.0
        } else {
            1.0 + self.spill_penalty * (s / self.spill_threshold).ln()
        }
    }

    /// Converts cycles to seconds on this machine.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says_they_do() {
        let x86 = ArchModel::pentium4();
        let ppc = ArchModel::powerpc_g4();
        assert!(x86.call_overhead > ppc.call_overhead, "P4 calls cost more");
        assert!(
            x86.icache_capacity > ppc.icache_capacity,
            "G4 cache smaller"
        );
        assert!(x86.clock_hz > ppc.clock_hz);
    }

    #[test]
    fn opt_compile_is_superlinear() {
        let a = ArchModel::pentium4();
        let c1 = a.opt_compile_cycles(1_000) - a.opt_compile_fixed;
        let c2 = a.opt_compile_cycles(2_000) - a.opt_compile_fixed;
        assert!(c2 > 2.0 * c1, "doubling size must more than double cost");
    }

    #[test]
    fn opt_compile_much_slower_than_baseline() {
        let a = ArchModel::pentium4();
        for size in [10u32, 100, 1000] {
            assert!(a.opt_compile_cycles(size) > 5.0 * a.baseline_compile_cycles(size));
        }
    }

    #[test]
    fn icache_penalty_is_one_inside_capacity() {
        let a = ArchModel::powerpc_g4();
        assert_eq!(a.icache_penalty(0.0), 1.0);
        assert_eq!(a.icache_penalty(a.icache_capacity), 1.0);
    }

    #[test]
    fn icache_penalty_grows_monotonically() {
        let a = ArchModel::powerpc_g4();
        let mut prev = 1.0;
        for mult in [1.5, 2.0, 4.0, 8.0, 32.0] {
            let p = a.icache_penalty(a.icache_capacity * mult);
            assert!(p > prev, "penalty not monotone at {mult}");
            prev = p;
        }
    }

    #[test]
    fn ppc_penalizes_code_growth_harder_at_same_footprint() {
        // The same absolute footprint hurts the G4 more — the mechanism
        // behind the smaller MAX_INLINE_DEPTH the GA finds on PPC.
        let x86 = ArchModel::pentium4();
        let ppc = ArchModel::powerpc_g4();
        let footprint = 60_000.0;
        assert!(ppc.icache_penalty(footprint) > x86.icache_penalty(footprint));
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let a = ArchModel::pentium4();
        assert!((a.cycles_to_seconds(2.8e9) - 1.0).abs() < 1e-12);
    }
}
