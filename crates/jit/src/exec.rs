//! The analytic execution-cost model.
//!
//! Prices one *iteration* (one invocation of the program entry) of a
//! [`VmState`] in cycles, with no interpretation: dynamic op counts come
//! from `ir::freq` run on the state's (post-inlining) executable program.
//!
//! The model charges:
//!
//! * **op cycles** — dynamic op units × per-class cycle costs, scaled per
//!   method by its compile level (`baseline_slowdown` for baseline code)
//!   and, for opt code, discounted by *inlining synergy*: the fraction of
//!   the method's code that arrived by inlining runs up to
//!   `inline_synergy` faster (argument constant propagation, cross-call
//!   scheduling — the "increased opportunities for compiler optimization"
//!   of the paper's abstract);
//! * **call cycles** — every executed, *non-inlined* call pays
//!   `call_overhead + n_args × call_arg_overhead`;
//! * **I-cache penalty** — a multiplicative factor from the hot-code
//!   footprint (execution-weighted compiled size vs. capacity): the cost of
//!   over-aggressive inlining that the heuristic must balance.

use ir::freq::{analyze, FreqAnalysis};

use crate::arch::ArchModel;
use crate::compile::{CompileLevel, VmState};

/// A method is counted fully in the I-cache footprint once it is entered
/// this many times per iteration; colder methods contribute
/// proportionally.
const HOT_ENTRY_SCALE: f64 = 8.0;

/// Per-iteration execution cost, decomposed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecBreakdown {
    /// Total cycles per iteration (ops + calls, I-cache-scaled).
    pub total_cycles: f64,
    /// Op cycles before the I-cache factor.
    pub op_cycles: f64,
    /// Call-overhead cycles before the I-cache factor.
    pub call_cycles: f64,
    /// The multiplicative I-cache factor applied (≥ 1).
    pub icache_factor: f64,
    /// Execution-weighted hot-code footprint, in size units.
    pub hot_footprint: f64,
    /// Dynamic (non-inlined) calls executed per iteration.
    pub dynamic_calls: f64,
}

impl ExecBreakdown {
    /// Seconds per iteration on the given machine.
    #[must_use]
    pub fn seconds(&self, arch: &ArchModel) -> f64 {
        arch.cycles_to_seconds(self.total_cycles)
    }
}

/// Prices one iteration of the given VM state.
///
/// Methods present in the program but never compiled (unreachable) cost
/// nothing — the frequency analysis gives them zero entries.
#[must_use]
pub fn exec_cycles(state: &VmState, arch: &ArchModel) -> ExecBreakdown {
    let fa: FreqAnalysis = analyze(&state.program, 1.0);
    let mut op_cycles = 0.0;
    let mut call_cycles = 0.0;
    let mut footprint = 0.0;
    let mut dynamic_calls = 0.0;

    for (mi, local) in fa.locals.iter().enumerate() {
        let entries = fa.entries[mi];
        if entries <= 0.0 {
            continue;
        }
        let id = state.program.methods[mi].id;
        let Some(rec) = state.compiled.get(&id) else {
            // Entered but never compiled: impossible for states built by
            // this crate; priced as baseline defensively.
            debug_assert!(false, "executed method {id} has no compile record");
            continue;
        };
        let speed = match rec.level {
            CompileLevel::Baseline => arch.baseline_slowdown,
            CompileLevel::Opt => {
                // Synergy discount on the inlined fraction of the code,
                // counteracted by register-pressure spills once the body
                // outgrows the machine's comfort zone.
                let inlined_fraction = if rec.code_size > rec.original_size {
                    f64::from(rec.code_size - rec.original_size) / f64::from(rec.code_size)
                } else {
                    0.0
                };
                (1.0 - arch.inline_synergy * inlined_fraction) * arch.spill_factor(rec.code_size)
            }
        };
        let per_entry_op_cost: f64 = local
            .ops_per_entry
            .iter()
            .zip(&arch.class_cycles)
            .map(|(units, cost)| units * cost)
            .sum();
        op_cycles += entries * per_entry_op_cost * speed;

        for site in &local.sites {
            let executions = entries * site.freq_per_entry;
            call_cycles +=
                executions * (arch.call_overhead + arch.call_arg_overhead * site.n_args as f64);
            dynamic_calls += executions;
        }

        footprint += f64::from(rec.code_size) * (entries / HOT_ENTRY_SCALE).min(1.0);
    }

    let icache_factor = arch.icache_penalty(footprint);
    ExecBreakdown {
        total_cycles: (op_cycles + call_cycles) * icache_factor,
        op_cycles,
        call_cycles,
        icache_factor,
        hot_footprint: footprint,
        dynamic_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_all_baseline, compile_all_opt};
    use inliner::{HotSites, InlineParams};
    use ir::builder::demo_program;

    #[test]
    fn baseline_code_is_slower_than_opt_code() {
        let p = demo_program();
        let arch = ArchModel::pentium4();
        let base = exec_cycles(&compile_all_baseline(&p, &arch), &arch);
        let opt = exec_cycles(
            &compile_all_opt(&p, &arch, &InlineParams::disabled(), &HotSites::new()),
            &arch,
        );
        // Same bodies (no inlining), different levels: op cycles scale by
        // exactly baseline_slowdown; call overhead is level-independent.
        assert!(base.total_cycles > opt.total_cycles);
        assert!((base.op_cycles / opt.op_cycles - arch.baseline_slowdown).abs() < 1e-9);
        assert_eq!(base.dynamic_calls, opt.dynamic_calls);
    }

    #[test]
    fn inlining_removes_call_cycles() {
        let p = demo_program();
        let arch = ArchModel::pentium4();
        let no_inline = exec_cycles(
            &compile_all_opt(&p, &arch, &InlineParams::disabled(), &HotSites::new()),
            &arch,
        );
        let inlined = exec_cycles(
            &compile_all_opt(&p, &arch, &InlineParams::jikes_default(), &HotSites::new()),
            &arch,
        );
        assert_eq!(inlined.dynamic_calls, 0.0);
        assert!(no_inline.dynamic_calls > 0.0);
        assert!(inlined.total_cycles < no_inline.total_cycles);
    }

    #[test]
    fn icache_factor_at_least_one() {
        let p = demo_program();
        let arch = ArchModel::powerpc_g4();
        let b = exec_cycles(&compile_all_baseline(&p, &arch), &arch);
        assert!(b.icache_factor >= 1.0);
        assert!(b.hot_footprint > 0.0);
    }

    #[test]
    fn seconds_scale_with_clock() {
        let p = demo_program();
        let x86 = ArchModel::pentium4();
        let b = exec_cycles(&compile_all_baseline(&p, &x86), &x86);
        assert!((b.seconds(&x86) - b.total_cycles / 2.8e9).abs() < 1e-18);
    }
}
