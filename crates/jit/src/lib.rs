//! The JIT/VM simulator: the Jikes-RVM stand-in of the `inlinetune`
//! reproduction.
//!
//! This crate models everything about a Java virtual machine that matters
//! to the tuning problem of *Automatic Tuning of Inlining Heuristics*
//! (Cavazos & O'Boyle, SC 2005):
//!
//! * [`arch`] — architecture models (a Pentium-4-class x86 and a PowerPC
//!   G4-class machine): per-op-class cycle costs, call overhead, I-cache
//!   capacity and miss penalty, compile-speed constants, clock rate;
//! * [`compile`] — the two compilers: a **baseline** compiler (cheap to
//!   run, slow code, no inlining — Jikes' bytecode-to-machine-code
//!   baseline) and an **optimizing** compiler that performs inlining via
//!   `inlinetune-inline`, then runs real post-inlining [`passes`]
//!   (constant propagation + dead-code elimination — the "opportunities
//!   for compiler optimization" inlining creates), and whose compile time
//!   grows superlinearly with the post-inlining method size;
//! * [`exec`] — the analytic execution-cost model: per-iteration cycles of
//!   a mixed baseline/opt VM state, with call overhead, inlining synergy
//!   and an I-cache footprint penalty;
//! * [`adaptive`] — the adaptive optimization system: a profile-driven
//!   cost/benefit recompilation policy (Arnold et al. style) plus
//!   hot-call-site identification for the Fig. 4 heuristic;
//! * [`scenario`] — the two compilation scenarios of the paper (`Opt` and
//!   `Adapt`) and the §5 measurement methodology: *total time* (first
//!   iteration including compilation) and *running time* (steady state).
//!
//! Everything is deterministic and analytic: a full total/running-time
//! measurement of a thousand-method program costs well under a millisecond,
//! which is what makes 20-individual × 500-generation genetic search
//! practical.

pub mod adaptive;
pub mod arch;
pub mod compile;
pub mod exec;
pub mod passes;
pub mod scenario;

pub use adaptive::{AdaptConfig, AdaptivePlan};
pub use arch::ArchModel;
pub use compile::{CompileLevel, VmState};
pub use exec::ExecBreakdown;
pub use passes::{optimize_method, PassStats};
pub use scenario::{measure, Measurement, Scenario};
