//! Compilation scenarios and the paper's measurement methodology.
//!
//! Two scenarios (§3.3 of the paper):
//!
//! * **`Opt`** — every dynamically reached method is compiled by the
//!   optimizing compiler up front;
//! * **`Adapt`** — everything starts at the baseline level; the adaptive
//!   system ([`crate::adaptive`]) recompiles the profitable subset with the
//!   optimizing compiler, and hot call sites in recompiled methods use the
//!   Fig. 4 heuristic.
//!
//! Measurement follows §5 exactly:
//!
//! * **total time** — the first benchmark iteration: all compilation plus
//!   that iteration's execution (under `Adapt`, partly at baseline speed
//!   while the profile warms up);
//! * **running time** — the best of the remaining iterations: steady-state
//!   execution with all recompilation already done and no compile cycles.

use inliner::{HotSites, InlineParams, InlineStats};

use crate::adaptive::{plan, AdaptConfig};
use crate::arch::ArchModel;
use crate::compile::{
    compile_all_baseline, compile_all_opt, opt_compile_into, CompileLevel, VmState,
};
use crate::exec::{exec_cycles, ExecBreakdown};

use ir::program::Program;

/// The compilation scenario (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Optimizing: compile everything with the optimizing compiler.
    Opt,
    /// Adaptive: baseline first, hot-spot recompilation.
    Adapt,
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scenario::Opt => "Opt",
            Scenario::Adapt => "Adapt",
        })
    }
}

/// A §5-style measurement of one benchmark under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// First iteration including all compilation (cycles).
    pub total_cycles: f64,
    /// Steady-state cycles per iteration (no compilation).
    pub running_cycles: f64,
    /// All compile cycles (baseline + opt).
    pub compile_cycles: f64,
    /// Baseline-compiler share of `compile_cycles`.
    pub baseline_compile_cycles: f64,
    /// Optimizing-compiler share of `compile_cycles`.
    pub opt_compile_cycles: f64,
    /// Execution cycles of the first iteration (excluding compilation).
    pub first_iter_exec_cycles: f64,
    /// Steady-state execution breakdown.
    pub steady: ExecBreakdown,
    /// Total compiled code size (size units).
    pub code_size: u64,
    /// Aggregated inlining statistics.
    pub inline_stats: InlineStats,
    /// Methods at the optimizing level in the final state.
    pub n_opt_methods: usize,
    /// Methods still at the baseline level in the final state.
    pub n_baseline_methods: usize,
}

impl Measurement {
    /// Total time in seconds on the given machine.
    #[must_use]
    pub fn total_seconds(&self, arch: &ArchModel) -> f64 {
        arch.cycles_to_seconds(self.total_cycles)
    }

    /// Running time in seconds on the given machine.
    #[must_use]
    pub fn running_seconds(&self, arch: &ArchModel) -> f64 {
        arch.cycles_to_seconds(self.running_cycles)
    }
}

/// Runs `f`, recording its wall time into the global `hist` histogram
/// when detailed observability is on. `detailed` is hoisted by the
/// caller so the common (off) path costs one atomic load per
/// [`measure`], not one per phase.
fn timed<T>(detailed: bool, hist: &str, f: impl FnOnce() -> T) -> T {
    if !detailed {
        return f();
    }
    let reg = obs::global();
    let started = reg.now_micros();
    let out = f();
    reg.histogram(hist)
        .record(reg.now_micros().saturating_sub(started));
    out
}

fn count_levels(state: &VmState) -> (usize, usize) {
    let opt = state
        .compiled
        .values()
        .filter(|c| c.level == CompileLevel::Opt)
        .count();
    (opt, state.compiled.len() - opt)
}

/// Measures a benchmark program under a scenario, architecture and
/// inlining-parameter vector.
///
/// `adapt_cfg` is only consulted under [`Scenario::Adapt`]; pass
/// `AdaptConfig::default()` otherwise.
#[must_use]
pub fn measure(
    program: &Program,
    scenario: Scenario,
    arch: &ArchModel,
    params: &InlineParams,
    adapt_cfg: &AdaptConfig,
) -> Measurement {
    // Cost-model timings are high-frequency (every fitness call measures
    // every benchmark), so they only record under the registry's runtime
    // `detailed` flag.
    let detailed = obs::global().detailed();
    match scenario {
        Scenario::Opt => {
            // No profile exists under Opt: the hot-site set is empty and
            // only the Fig. 3 cascade applies.
            let state = timed(detailed, "jit_compile_micros", || {
                compile_all_opt(program, arch, params, &HotSites::new())
            });
            let steady = timed(detailed, "jit_exec_micros", || exec_cycles(&state, arch));
            let opt_compile = state.total_compile_cycles();
            let (n_opt, n_base) = count_levels(&state);
            Measurement {
                total_cycles: opt_compile + steady.total_cycles,
                running_cycles: steady.total_cycles,
                compile_cycles: opt_compile,
                baseline_compile_cycles: 0.0,
                opt_compile_cycles: opt_compile,
                first_iter_exec_cycles: steady.total_cycles,
                steady,
                code_size: state.total_code_size(),
                inline_stats: state.aggregate_inline_stats(),
                n_opt_methods: n_opt,
                n_baseline_methods: n_base,
            }
        }
        Scenario::Adapt => {
            let mut state = timed(detailed, "jit_compile_micros", || {
                compile_all_baseline(program, arch)
            });
            let baseline_compile = state.total_compile_cycles();
            let baseline_exec = timed(detailed, "jit_exec_micros", || exec_cycles(&state, arch));

            let plan = plan(program, arch, adapt_cfg);
            let opt_compile = timed(detailed, "jit_compile_micros", || {
                let mut cycles = 0.0;
                for &m in &plan.hot_methods {
                    cycles +=
                        opt_compile_into(&mut state, program, m, arch, params, &plan.hot_sites);
                }
                cycles
            });
            let steady = timed(detailed, "jit_exec_micros", || exec_cycles(&state, arch));

            // First iteration: the warm-up fraction runs at all-baseline
            // speed before recompilation lands, the rest at steady speed.
            let phi = adapt_cfg.warmup_fraction.clamp(0.0, 1.0);
            let first_iter_exec =
                phi * baseline_exec.total_cycles + (1.0 - phi) * steady.total_cycles;

            let (n_opt, n_base) = count_levels(&state);
            Measurement {
                total_cycles: baseline_compile + opt_compile + first_iter_exec,
                running_cycles: steady.total_cycles,
                compile_cycles: baseline_compile + opt_compile,
                baseline_compile_cycles: baseline_compile,
                opt_compile_cycles: opt_compile,
                first_iter_exec_cycles: first_iter_exec,
                steady,
                code_size: state.total_code_size(),
                inline_stats: state.aggregate_inline_stats(),
                n_opt_methods: n_opt,
                n_baseline_methods: n_base,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::builder::{demo_program, MethodBuilder, ProgramBuilder};
    use ir::op::OpKind;

    /// A long-running program: hot kernel invoked many times.
    fn long_program() -> Program {
        let mut pb = ProgramBuilder::new("long");
        let mut kernel = MethodBuilder::new("kernel", 1);
        let mut acc = kernel.param(0);
        kernel.begin_loop(2000);
        acc = kernel.op(OpKind::FMul, acc, 5i64);
        kernel.end();
        kernel.ret(acc);
        let kid = pb.add(kernel);
        let mut main = MethodBuilder::new("main", 0);
        let seed = main.op(OpKind::Mov, 3i64, 0i64);
        main.begin_loop(300);
        let s = pb.fresh_site();
        main.call(s, kid, vec![seed.into()], false);
        main.end();
        main.ret(seed);
        let id = pb.add(main);
        pb.entry(id);
        pb.build().unwrap()
    }

    #[test]
    fn opt_total_includes_compile_time() {
        let p = demo_program();
        let arch = ArchModel::pentium4();
        let m = measure(
            &p,
            Scenario::Opt,
            &arch,
            &InlineParams::jikes_default(),
            &AdaptConfig::default(),
        );
        assert!(m.total_cycles > m.running_cycles);
        assert!((m.total_cycles - m.compile_cycles - m.running_cycles).abs() < 1e-6);
        assert_eq!(m.baseline_compile_cycles, 0.0);
        assert_eq!(m.n_baseline_methods, 0);
    }

    #[test]
    fn adapt_recompiles_hot_kernel() {
        let p = long_program();
        let arch = ArchModel::pentium4();
        let m = measure(
            &p,
            Scenario::Adapt,
            &arch,
            &InlineParams::jikes_default(),
            &AdaptConfig::default(),
        );
        assert!(m.n_opt_methods >= 1, "kernel must be recompiled");
        assert!(m.baseline_compile_cycles > 0.0);
        assert!(m.opt_compile_cycles > 0.0);
        // Steady state is faster than the first iteration's mixed execution.
        assert!(m.running_cycles < m.first_iter_exec_cycles);
    }

    #[test]
    fn adapt_compiles_less_than_opt_for_mostly_cold_code() {
        // Many cold methods, one hot kernel: Adapt should spend much less
        // on compilation than Opt.
        let mut pb = ProgramBuilder::new("coldheavy");
        let mut cold_ids = Vec::new();
        for i in 0..30 {
            let mut mb = MethodBuilder::new(format!("cold{i}"), 1);
            let mut v = mb.param(0);
            for _ in 0..40 {
                v = mb.op(OpKind::Add, v, 1i64);
            }
            mb.ret(v);
            cold_ids.push(pb.add(mb));
        }
        let mut kernel = MethodBuilder::new("kernel", 1);
        let mut acc = kernel.param(0);
        kernel.begin_loop(5000);
        acc = kernel.op(OpKind::FMul, acc, 5i64);
        kernel.end();
        kernel.ret(acc);
        let kid = pb.add(kernel);
        let mut main = MethodBuilder::new("main", 0);
        let seed = main.op(OpKind::Mov, 3i64, 0i64);
        for &c in &cold_ids {
            let s = pb.fresh_site();
            main.call(s, c, vec![seed.into()], false);
        }
        main.begin_loop(200);
        let s = pb.fresh_site();
        main.call(s, kid, vec![seed.into()], false);
        main.end();
        main.ret(seed);
        let id = pb.add(main);
        pb.entry(id);
        let p = pb.build().unwrap();

        let arch = ArchModel::pentium4();
        let params = InlineParams::jikes_default();
        let cfg = AdaptConfig::default();
        let adapt = measure(&p, Scenario::Adapt, &arch, &params, &cfg);
        let opt = measure(&p, Scenario::Opt, &arch, &params, &cfg);
        assert!(
            adapt.compile_cycles < opt.compile_cycles / 2.0,
            "adapt {} vs opt {}",
            adapt.compile_cycles,
            opt.compile_cycles
        );
        // But Opt's steady running time is at least as good.
        assert!(opt.running_cycles <= adapt.running_cycles * 1.001);
    }

    #[test]
    fn inlining_beats_no_inlining_on_running_time_under_opt() {
        let p = long_program();
        let arch = ArchModel::pentium4();
        let cfg = AdaptConfig::default();
        let with = measure(
            &p,
            Scenario::Opt,
            &arch,
            &InlineParams::jikes_default(),
            &cfg,
        );
        let without = measure(&p, Scenario::Opt, &arch, &InlineParams::disabled(), &cfg);
        assert!(with.running_cycles < without.running_cycles);
    }

    #[test]
    fn measurements_are_deterministic() {
        let p = long_program();
        let arch = ArchModel::powerpc_g4();
        let cfg = AdaptConfig::default();
        let a = measure(
            &p,
            Scenario::Adapt,
            &arch,
            &InlineParams::jikes_default(),
            &cfg,
        );
        let b = measure(
            &p,
            Scenario::Adapt,
            &arch,
            &InlineParams::jikes_default(),
            &cfg,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn seconds_conversions_consistent() {
        let p = demo_program();
        let arch = ArchModel::pentium4();
        let m = measure(
            &p,
            Scenario::Opt,
            &arch,
            &InlineParams::jikes_default(),
            &AdaptConfig::default(),
        );
        assert!((m.total_seconds(&arch) * arch.clock_hz - m.total_cycles).abs() < 1e-6);
    }
}
