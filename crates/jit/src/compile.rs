//! The two compilers and the VM state they produce.
//!
//! A [`VmState`] is a snapshot of "what code the VM is currently running":
//! for every reachable method, which compiler produced its current code
//! (baseline or opt) and — for opt methods — the post-inlining body. The
//! execution model in [`crate::exec`] prices a state; the scenario driver
//! in [`crate::scenario`] sequences states (baseline-everything →
//! selectively recompiled) and accounts for the compile cycles spent on
//! each transition.

use std::collections::BTreeMap;

use inliner::{inline_method, HotSites, InlineParams, InlineStats};
use ir::method::MethodId;
use ir::program::Program;
use ir::size::method_size;

use crate::arch::ArchModel;
use crate::passes::{optimize_method, PassStats};

/// Which compiler produced a method's current code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompileLevel {
    /// Fast non-optimizing compiler: original body, no inlining, code runs
    /// `baseline_slowdown`× slower.
    Baseline,
    /// Optimizing compiler: inlined body, full-speed code.
    Opt,
}

/// Per-method compilation record inside a [`VmState`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledMethod {
    /// Compiler level of the current code.
    pub level: CompileLevel,
    /// Estimated machine-code size of the current code (post-inlining for
    /// opt methods).
    pub code_size: u32,
    /// Original (bytecode) size of the method.
    pub original_size: u32,
    /// Inlining statistics (zeroed for baseline-compiled methods).
    pub inline_stats: InlineStats,
    /// Post-inlining optimizer statistics (zeroed for baseline methods).
    pub opt_stats: PassStats,
    /// Cycles the compiler spent producing this code.
    pub compile_cycles: f64,
}

/// A snapshot of the VM's compiled code.
#[derive(Debug, Clone, PartialEq)]
pub struct VmState {
    /// The *executable* program: opt methods carry their inlined bodies,
    /// baseline methods their original bodies. Running `ir::freq` on this
    /// program yields the true post-inlining execution frequencies.
    pub program: Program,
    /// Compilation records for every reachable (hence compiled) method.
    /// Ordered by method id so that every float aggregation over it is
    /// bit-deterministic (a `HashMap`'s per-instance iteration order would
    /// perturb sums by ULPs between otherwise identical runs).
    pub compiled: BTreeMap<MethodId, CompiledMethod>,
}

impl VmState {
    /// Total compile cycles invested in this state.
    #[must_use]
    pub fn total_compile_cycles(&self) -> f64 {
        self.compiled.values().map(|c| c.compile_cycles).sum()
    }

    /// Total compiled code size (size units) across all methods.
    #[must_use]
    pub fn total_code_size(&self) -> u64 {
        self.compiled.values().map(|c| u64::from(c.code_size)).sum()
    }

    /// Aggregated inlining statistics over all methods.
    #[must_use]
    pub fn aggregate_inline_stats(&self) -> InlineStats {
        let mut total = InlineStats::default();
        for c in self.compiled.values() {
            total.merge(&c.inline_stats);
        }
        total
    }

    /// The compile level of a method (None if never compiled, i.e.
    /// unreachable).
    #[must_use]
    pub fn level(&self, m: MethodId) -> Option<CompileLevel> {
        self.compiled.get(&m).map(|c| c.level)
    }
}

/// Compiles every reachable method with the baseline compiler.
///
/// This is the initial state of the `Adapt` scenario: bodies are untouched
/// (the baseline compiler does not inline — the paper notes it performs
/// "no optimizations, not even inlining").
#[must_use]
pub fn compile_all_baseline(program: &Program, arch: &ArchModel) -> VmState {
    let mut compiled = BTreeMap::new();
    for id in program.reachable() {
        let size = method_size(program.method(id));
        compiled.insert(
            id,
            CompiledMethod {
                level: CompileLevel::Baseline,
                code_size: size,
                original_size: size,
                inline_stats: InlineStats::default(),
                opt_stats: PassStats::default(),
                compile_cycles: arch.baseline_compile_cycles(size),
            },
        );
    }
    VmState {
        program: program.clone(),
        compiled,
    }
}

/// Compiles every reachable method with the optimizing compiler under the
/// given inlining parameters.
///
/// This is the whole `Opt` scenario state. `hot` is empty under `Opt`
/// (there is no profile); the adaptive driver passes the profiled hot-site
/// set when it recompiles.
#[must_use]
pub fn compile_all_opt(
    program: &Program,
    arch: &ArchModel,
    params: &InlineParams,
    hot: &HotSites,
) -> VmState {
    let mut state = VmState {
        program: program.clone(),
        compiled: BTreeMap::new(),
    };
    for id in program.reachable() {
        opt_compile_into(&mut state, program, id, arch, params, hot);
    }
    state
}

/// Opt-compiles (or recompiles) one method into an existing state,
/// replacing its body and compile record. Returns the compile cycles spent.
///
/// Inlining decisions read the *original* program (bytecode sizes), exactly
/// like a JIT inlining from bytecode, so recompilation order is
/// irrelevant.
pub fn opt_compile_into(
    state: &mut VmState,
    original: &Program,
    id: MethodId,
    arch: &ArchModel,
    params: &InlineParams,
    hot: &HotSites,
) -> f64 {
    let (mut method, stats) = inline_method(original, id, params, hot);
    // Post-inlining optimization: constant propagation through the spliced
    // argument moves, then dead-code elimination of what the constants
    // killed. Compile time is charged for the *pre-optimization* size (the
    // optimizer has to chew through everything the inliner produced).
    let opt_stats = optimize_method(&mut method);
    let compile_cycles = arch.opt_compile_cycles(stats.final_size);
    let code_size = method_size(&method);
    state.program.methods[id.index()] = method;
    state.compiled.insert(
        id,
        CompiledMethod {
            level: CompileLevel::Opt,
            code_size,
            original_size: method_size(original.method(id)),
            inline_stats: stats,
            opt_stats,
            compile_cycles,
        },
    );
    compile_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::builder::demo_program;

    #[test]
    fn baseline_state_copies_program_and_prices_methods() {
        let p = demo_program();
        let arch = ArchModel::pentium4();
        let s = compile_all_baseline(&p, &arch);
        assert_eq!(s.program, p);
        assert_eq!(s.compiled.len(), 2);
        for c in s.compiled.values() {
            assert_eq!(c.level, CompileLevel::Baseline);
            assert_eq!(c.code_size, c.original_size);
            assert!(c.compile_cycles > 0.0);
        }
    }

    #[test]
    fn opt_state_inlines_and_costs_more() {
        let p = demo_program();
        let arch = ArchModel::pentium4();
        let base = compile_all_baseline(&p, &arch);
        let opt = compile_all_opt(&p, &arch, &InlineParams::jikes_default(), &HotSites::new());
        assert!(opt.total_compile_cycles() > base.total_compile_cycles());
        // `inc` was inlined into `main`: main's call sites disappear.
        let main = opt.program.method(p.entry);
        assert_eq!(main.call_site_count(), 0);
        assert!(opt.aggregate_inline_stats().inlined >= 1);
    }

    #[test]
    fn opt_with_disabled_params_still_optimizes_bodies() {
        let p = demo_program();
        let arch = ArchModel::pentium4();
        let opt = compile_all_opt(&p, &arch, &InlineParams::disabled(), &HotSites::new());
        assert_eq!(opt.aggregate_inline_stats().inlined, 0);
        // No inlining, but the optimizer still runs (and must preserve
        // semantics).
        let before = ir::interp::run(&p, &[], &ir::interp::InterpLimits::default()).unwrap();
        let after =
            ir::interp::run(&opt.program, &[], &ir::interp::InterpLimits::default()).unwrap();
        assert_eq!(before.value, after.value);
        assert_eq!(before.heap_digest, after.heap_digest);
    }

    #[test]
    fn recompile_replaces_level() {
        let p = demo_program();
        let arch = ArchModel::pentium4();
        let mut s = compile_all_baseline(&p, &arch);
        let cycles = opt_compile_into(
            &mut s,
            &p,
            p.entry,
            &arch,
            &InlineParams::jikes_default(),
            &HotSites::new(),
        );
        assert!(cycles > 0.0);
        assert_eq!(s.level(p.entry), Some(CompileLevel::Opt));
        // The other method is still baseline.
        let other = p.methods.iter().find(|m| m.id != p.entry).unwrap().id;
        assert_eq!(s.level(other), Some(CompileLevel::Baseline));
    }

    #[test]
    fn unreachable_methods_are_never_compiled() {
        let mut p = demo_program();
        // Add a dead method.
        p.methods.push(ir::Method {
            id: MethodId(2),
            name: "dead".into(),
            n_params: 0,
            n_regs: 1,
            body: vec![],
            ret: 0i64.into(),
        });
        let s = compile_all_baseline(&p, &ArchModel::pentium4());
        assert_eq!(s.level(MethodId(2)), None);
    }
}
