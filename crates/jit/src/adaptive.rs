//! The adaptive optimization system: profiling and the cost/benefit
//! recompilation policy.
//!
//! Models the Jikes RVM adaptive system of Arnold et al. (OOPSLA 2000),
//! which the paper's `Adapt` scenario uses: all methods start baseline-
//! compiled; an online profile identifies where baseline time is going;
//! a method is recompiled at the optimizing level when the *estimated
//! future savings* exceed the *estimated compile cost*.
//!
//! The profile also classifies call sites as hot (edge counts above a
//! threshold); hot sites in recompiled methods are decided by the paper's
//! Fig. 4 single-threshold heuristic instead of the Fig. 3 cascade.
//!
//! The plan deliberately does **not** depend on the inlining parameters:
//! the controller decides *what* to recompile from the baseline profile
//! before the optimizing compiler (and its heuristic) ever runs — exactly
//! the information structure of the real system. This also makes the plan
//! cacheable across the thousands of parameter vectors a GA evaluates.

use inliner::HotSites;
use ir::freq::analyze;
use ir::method::MethodId;
use ir::program::Program;
use ir::size::method_size;

use crate::arch::ArchModel;

/// Tunables of the adaptive controller (not part of the searched genome —
/// these model the VM, not the heuristic being tuned).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    /// Fraction of the first iteration executed at baseline speed before
    /// hot methods are recompiled (sampling + compilation latency). Hot
    /// spots of a full benchmark run surface early, so this is small.
    pub warmup_fraction: f64,
    /// Expected future iterations the controller assumes when weighing
    /// recompilation (the "program will run as long again" heuristic).
    pub horizon_iters: f64,
    /// A call site is *hot* when its executions exceed this fraction of
    /// all dynamic calls (an edge-profile share, like the Jikes sampler's
    /// relative threshold) — so only the genuinely dominant edges get the
    /// Fig. 4 treatment.
    pub hot_site_fraction: f64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            warmup_fraction: 0.12,
            horizon_iters: 6.0,
            hot_site_fraction: 0.01,
        }
    }
}

/// The controller's output: what to recompile and which sites are hot.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePlan {
    /// Methods selected for optimizing recompilation, hottest first.
    pub hot_methods: Vec<MethodId>,
    /// Call sites whose execution count crossed the hot threshold.
    pub hot_sites: HotSites,
    /// Per-iteration baseline op cycles attributed to each selected method
    /// (parallel to `hot_methods`; used by reports).
    pub method_cycles: Vec<f64>,
}

impl AdaptivePlan {
    /// Whether the plan recompiles anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hot_methods.is_empty()
    }
}

/// Runs the profile-driven cost/benefit analysis on the original program.
#[must_use]
pub fn plan(program: &Program, arch: &ArchModel, cfg: &AdaptConfig) -> AdaptivePlan {
    let fa = analyze(program, 1.0);

    // Savings factor: recompiling converts baseline-speed op cycles into
    // opt-speed ones.
    let saving_ratio = 1.0 - 1.0 / arch.baseline_slowdown;

    let mut candidates: Vec<(MethodId, f64)> = Vec::new();
    for (mi, local) in fa.locals.iter().enumerate() {
        let entries = fa.entries[mi];
        if entries <= 0.0 {
            continue;
        }
        let per_entry: f64 = local
            .ops_per_entry
            .iter()
            .zip(&arch.class_cycles)
            .map(|(units, cost)| units * cost)
            .sum();
        let baseline_cycles = entries * per_entry * arch.baseline_slowdown;
        let id = program.methods[mi].id;
        let compile_cost = arch.opt_compile_cycles(method_size(program.method(id)));
        let expected_saving = baseline_cycles * saving_ratio * cfg.horizon_iters;
        if expected_saving > compile_cost {
            candidates.push((id, baseline_cycles));
        }
    }
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let total_calls: f64 = fa.site_counts.values().sum();
    let hot_cutoff = cfg.hot_site_fraction * total_calls;
    let hot_sites: HotSites = fa
        .site_counts
        .iter()
        .filter(|&(_, &count)| count >= hot_cutoff && count > 0.0)
        .map(|(&site, _)| site)
        .collect();

    let (hot_methods, method_cycles) = candidates.into_iter().unzip();
    AdaptivePlan {
        hot_methods,
        hot_sites,
        method_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::builder::{MethodBuilder, ProgramBuilder};
    use ir::op::OpKind;

    /// A program with one hot compute kernel and one cold helper.
    fn skewed_program(kernel_trips: u32) -> Program {
        let mut pb = ProgramBuilder::new("skewed");

        let mut kernel = MethodBuilder::new("kernel", 1);
        let mut acc = kernel.param(0);
        kernel.begin_loop(1000);
        acc = kernel.op(OpKind::FMul, acc, 3i64);
        kernel.end();
        kernel.ret(acc);
        let kernel_id = pb.add(kernel);

        let mut cold = MethodBuilder::new("cold", 1);
        let v = cold.op(OpKind::Add, cold.param(0), 1i64);
        cold.ret(v);
        let cold_id = pb.add(cold);

        let mut main = MethodBuilder::new("main", 0);
        let seed = main.op(OpKind::Mov, 7i64, 0i64);
        main.begin_loop(kernel_trips);
        let s1 = pb.fresh_site();
        main.call(s1, kernel_id, vec![seed.into()], false);
        main.end();
        let s2 = pb.fresh_site();
        main.call(s2, cold_id, vec![seed.into()], false);
        main.ret(seed);
        let main_id = pb.add(main);
        pb.entry(main_id);
        pb.build().unwrap()
    }

    #[test]
    fn hot_kernel_is_selected_cold_helper_is_not() {
        let p = skewed_program(500);
        let plan = plan(&p, &ArchModel::pentium4(), &AdaptConfig::default());
        let kernel = p.methods.iter().find(|m| m.name == "kernel").unwrap().id;
        let cold = p.methods.iter().find(|m| m.name == "cold").unwrap().id;
        assert!(plan.hot_methods.contains(&kernel));
        assert!(!plan.hot_methods.contains(&cold));
    }

    #[test]
    fn short_running_program_recompiles_nothing() {
        // One kernel invocation: savings cannot amortize the compile cost.
        let mut pb = ProgramBuilder::new("short");
        let mut m = MethodBuilder::new("main", 0);
        let v = m.op(OpKind::Add, 1i64, 2i64);
        m.ret(v);
        let id = pb.add(m);
        pb.entry(id);
        let p = pb.build().unwrap();
        let plan = plan(&p, &ArchModel::pentium4(), &AdaptConfig::default());
        assert!(plan.is_empty());
    }

    #[test]
    fn hot_methods_sorted_hottest_first() {
        let p = skewed_program(800);
        let plan = plan(&p, &ArchModel::pentium4(), &AdaptConfig::default());
        for w in plan.method_cycles.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn hot_sites_require_execution_share() {
        let p = skewed_program(500);
        let cfg = AdaptConfig::default();
        let plan = plan(&p, &ArchModel::pentium4(), &cfg);
        // The kernel call site carries ~500/501 of all calls → hot; the
        // cold site carries ~0.2% → not hot.
        assert_eq!(plan.hot_sites.len(), 1);
    }

    #[test]
    fn larger_horizon_recompiles_no_fewer_methods() {
        let p = skewed_program(40);
        let arch = ArchModel::pentium4();
        let small = plan(
            &p,
            &arch,
            &AdaptConfig {
                horizon_iters: 0.5,
                ..AdaptConfig::default()
            },
        );
        let large = plan(
            &p,
            &arch,
            &AdaptConfig {
                horizon_iters: 8.0,
                ..AdaptConfig::default()
            },
        );
        assert!(large.hot_methods.len() >= small.hot_methods.len());
    }
}
