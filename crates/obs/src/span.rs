//! Hierarchical timed spans.
//!
//! A span measures one region of code. Spans nest per thread: opening
//! `"eval"` inside `"generation"` yields the path `generation/eval`, so
//! a flame-style breakdown falls out of the recorded paths without any
//! explicit parent bookkeeping. On drop, a span writes one
//! [`SpanRecord`] into the registry's bounded ring buffer *and* one
//! sample into the `span_micros{span="<path>"}` histogram — the ring
//! gives recent-event forensics, the histogram gives cheap aggregates
//! forever.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::registry::Registry;

/// How many finished spans the ring buffer retains.
pub const SPAN_RING_CAPACITY: usize = 1024;

thread_local! {
    /// The names of the spans currently open on this thread, outermost
    /// first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The `/`-joined nesting path, e.g. `generation/eval`.
    pub path: String,
    /// The span's label: its name plus any `key=value` pairs from the
    /// [`span!`](crate::span!) macro.
    pub label: String,
    /// Clock reading at span start, microseconds.
    pub start_micros: u64,
    /// Span duration, microseconds.
    pub dur_micros: u64,
}

/// The registry's bounded buffer of recently finished spans.
#[derive(Debug, Default)]
pub(crate) struct SpanCollector {
    ring: Mutex<VecDeque<SpanRecord>>,
}

impl SpanCollector {
    pub(crate) fn push(&self, record: SpanRecord) {
        let mut ring = self.ring.lock().expect("span ring poisoned");
        if ring.len() == SPAN_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    pub(crate) fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .expect("span ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

/// An open span; recording happens when it drops. Hold it with
/// `let _guard = ...` — binding to `_` drops immediately and records a
/// zero-width span.
#[must_use = "a span records when dropped; binding to _ ends it immediately"]
pub struct SpanGuard {
    /// `None` for an inert guard (recording compiled out).
    reg: Option<Arc<Registry>>,
    path: String,
    label: String,
    start: u64,
}

impl SpanGuard {
    pub(crate) fn open(reg: &Arc<Registry>, name: &str, label: String) -> Self {
        if cfg!(feature = "off") {
            return Self {
                reg: None,
                path: String::new(),
                label,
                start: 0,
            };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_string()
            } else {
                format!("{}/{name}", stack.join("/"))
            };
            stack.push(name.to_string());
            path
        });
        Self {
            reg: Some(Arc::clone(reg)),
            path,
            label,
            start: reg.now_micros(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(reg) = self.reg.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let dur = reg.now_micros().saturating_sub(self.start);
        reg.histogram(&format!("span_micros{{span=\"{}\"}}", self.path))
            .record(dur);
        reg.spans().push(SpanRecord {
            path: std::mem::take(&mut self.path),
            label: std::mem::take(&mut self.label),
            start_micros: self.start,
            dur_micros: dur,
        });
    }
}

/// Opens a timed span on a registry: `span!(reg, "generation", gen = 3)`.
/// Extra `key = value` pairs go into the span's label (the value is
/// rendered with `Display`); the hierarchy path uses only the name.
#[macro_export]
macro_rules! span {
    ($reg:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut label = ::std::string::String::from($name);
        $(
            label.push(' ');
            label.push_str(::std::stringify!($key));
            label.push('=');
            label.push_str(&::std::format!("{}", $val));
        )*
        $crate::Registry::span_labeled(&$reg, $name, label)
    }};
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_registry() -> (Arc<Registry>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let reg = Arc::new(Registry::with_clock(Arc::clone(&clock) as _));
        (reg, clock)
    }

    #[test]
    fn nested_spans_build_hierarchical_paths() {
        let (reg, clock) = manual_registry();
        {
            let _outer = reg.span("generation");
            clock.advance(100);
            {
                let _inner = reg.span("eval");
                clock.advance(40);
            }
        }
        let spans = reg.snapshot().spans;
        assert_eq!(spans.len(), 2, "inner drops first, then outer");
        assert_eq!(spans[0].path, "generation/eval");
        assert_eq!(spans[0].start_micros, 100);
        assert_eq!(spans[0].dur_micros, 40);
        assert_eq!(spans[1].path, "generation");
        assert_eq!(spans[1].dur_micros, 140);
    }

    #[test]
    fn span_macro_labels_carry_fields() {
        let (reg, _clock) = manual_registry();
        {
            let _g = crate::span!(reg, "generation", gen = 3, pop = 50);
        }
        let spans = reg.snapshot().spans;
        assert_eq!(spans[0].label, "generation gen=3 pop=50");
        assert_eq!(spans[0].path, "generation");
    }

    #[test]
    fn spans_feed_the_span_micros_histogram() {
        let (reg, clock) = manual_registry();
        for _ in 0..3 {
            let _g = reg.span("tick");
            clock.advance(15);
        }
        let h = reg.histogram("span_micros{span=\"tick\"}").snapshot();
        assert_eq!(h.total, 3);
        assert_eq!(h.sum, 45);
        assert_eq!(h.counts[1], 3, "15µs lands in the (10, 20] bucket");
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let (reg, _clock) = manual_registry();
        for _ in 0..SPAN_RING_CAPACITY + 10 {
            let _g = reg.span("s");
        }
        assert_eq!(reg.snapshot().spans.len(), SPAN_RING_CAPACITY);
    }
}
