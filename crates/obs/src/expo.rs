//! Prometheus text exposition (format version 0.0.4).
//!
//! Renders a [`RegistrySnapshot`] as the plain-text format Prometheus
//! scrapes: one `# TYPE` header per metric family, `_bucket`/`_sum`/
//! `_count` series for histograms with cumulative `le` buckets, and the
//! instrument key's baked-in `{key="value"}` labels carried through.
//! Output order is fully determined by the snapshot's sorted names, so
//! the format is golden-file testable.

use crate::hist::{HistSnapshot, BOUNDS};
use crate::registry::RegistrySnapshot;

/// Splits an instrument key into `(family, labels)`:
/// `rpc_micros{worker="a:1"}` → `("rpc_micros", "worker=\"a:1\"")`.
fn split_key(key: &str) -> (String, &str) {
    match key.split_once('{') {
        Some((base, rest)) => (sanitize(base), rest.trim_end_matches('}')),
        None => (sanitize(key), ""),
    }
}

/// Maps a name into the Prometheus metric-name alphabet.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// One series line: name, optional labels, value.
fn series(out: &mut String, family: &str, suffix: &str, labels: &str, value: &str) {
    out.push_str(family);
    out.push_str(suffix);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// A `# TYPE` header, emitted once per family.
fn type_header(out: &mut String, last: &mut String, family: &str, kind: &str) {
    if last != family {
        out.push_str("# TYPE ");
        out.push_str(family);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        last.clear();
        last.push_str(family);
    }
}

fn render_histogram(out: &mut String, family: &str, labels: &str, h: &HistSnapshot) {
    let mut cumulative = 0u64;
    for (i, &bound) in BOUNDS.iter().enumerate() {
        cumulative += h.counts.get(i).copied().unwrap_or(0);
        let with_le = if labels.is_empty() {
            format!("le=\"{bound}\"")
        } else {
            format!("{labels},le=\"{bound}\"")
        };
        series(out, family, "_bucket", &with_le, &cumulative.to_string());
    }
    let inf = if labels.is_empty() {
        "le=\"+Inf\"".to_string()
    } else {
        format!("{labels},le=\"+Inf\"")
    };
    series(out, family, "_bucket", &inf, &h.total.to_string());
    series(out, family, "_sum", labels, &h.sum.to_string());
    series(out, family, "_count", labels, &h.total.to_string());
}

/// Renders the whole snapshot. Spans are not exposed here (rings of
/// events are not a Prometheus concept); their aggregate timings appear
/// via the `span_micros` histograms.
#[must_use]
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (key, value) in &snap.counters {
        let (family, labels) = split_key(key);
        type_header(&mut out, &mut last_family, &family, "counter");
        series(&mut out, &family, "", labels, &value.to_string());
    }
    last_family.clear();
    for (key, value) in &snap.gauges {
        let (family, labels) = split_key(key);
        type_header(&mut out, &mut last_family, &family, "gauge");
        series(&mut out, &family, "", labels, &value.to_string());
    }
    last_family.clear();
    for (key, h) in &snap.histograms {
        let (family, labels) = split_key(key);
        type_header(&mut out, &mut last_family, &family, "histogram");
        render_histogram(&mut out, &family, labels, h);
    }
    out
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;
    use crate::registry::{labeled, Registry};

    #[test]
    fn type_header_appears_once_per_family() {
        let reg = Registry::new();
        reg.counter(&labeled("retries", &[("worker", "a:1")])).inc();
        reg.counter(&labeled("retries", &[("worker", "b:2")]))
            .add(2);
        let text = render_prometheus(&reg.snapshot());
        assert_eq!(text.matches("# TYPE retries counter").count(), 1);
        assert!(text.contains("retries{worker=\"a:1\"} 1\n"));
        assert!(text.contains("retries{worker=\"b:2\"} 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        h.record(5); // bucket le=10
        h.record(15); // bucket le=20
        h.record(99_999_999); // overflow
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("lat_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"20\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"10000000\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_sum 100000019\n"));
        assert!(text.contains("lat_count 3\n"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize("7up"), "_7up");
    }
}
