//! Time sources for the registry.
//!
//! Every duration the registry records flows through a [`Clock`], so
//! tests inject a [`ManualClock`] and assert *exact* histogram contents
//! — no flaky "p99 under 50ms on a loaded CI box" thresholds — while
//! production uses the monotonic [`WallClock`]. Nothing in this module
//! (or the rest of the crate) touches the engine's RNG or otherwise
//! feeds back into tuning results: observability reads time, it never
//! makes decisions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock.
pub trait Clock: Send + Sync {
    /// Microseconds since an arbitrary (per-clock) epoch. Must never go
    /// backwards.
    fn now_micros(&self) -> u64;
}

/// The production clock: monotonic wall time, anchored at construction.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock whose epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// A test clock that only moves when told to. With time frozen, every
/// recorded duration is exactly zero — histogram assertions become
/// equalities instead of tolerances.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `micros`.
    pub fn advance(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::SeqCst);
    }

    /// Jumps to an absolute reading. Panics if that would move time
    /// backwards (the [`Clock`] contract).
    pub fn set(&self, micros: u64) {
        let prev = self.now.swap(micros, Ordering::SeqCst);
        assert!(prev <= micros, "ManualClock must not go backwards");
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance(250);
        assert_eq!(c.now_micros(), 250);
        c.set(1000);
        assert_eq!(c.now_micros(), 1000);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let c = ManualClock::new();
        c.set(100);
        c.set(50);
    }
}
