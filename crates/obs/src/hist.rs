//! Fixed-bucket latency histograms.
//!
//! The bucket boundaries are compiled in ([`BOUNDS`], microseconds, a
//! 1-2-5 decade ladder from 10µs to 10s) so every histogram in the
//! process — and across processes — is mergeable, and the Prometheus
//! exposition is stable enough to golden-test. Recording is lock-free:
//! one atomic add on the bucket, plus count/sum/max updates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Inclusive upper bounds of the finite buckets, in microseconds. One
/// implicit overflow bucket (`+Inf`) follows the last bound.
pub const BOUNDS: [u64; 19] = [
    10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000,
    500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

/// Finite buckets plus the overflow bucket.
pub const NUM_BUCKETS: usize = BOUNDS.len() + 1;

/// Index of the bucket a value lands in.
fn bucket_index(value: u64) -> usize {
    BOUNDS
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(BOUNDS.len())
}

/// A thread-safe fixed-bucket histogram of microsecond latencies.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. A no-op when the crate is built with the
    /// `off` feature.
    pub fn record(&self, value: u64) {
        if cfg!(feature = "off") {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy. Bucket counts are read individually, so a
    /// snapshot taken mid-`record` may momentarily show `total` off by
    /// the in-flight sample — callers that need exactness quiesce
    /// writers first (as the deterministic tests do).
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            total: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts; `counts[BOUNDS.len()]` is the overflow
    /// bucket.
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub total: u64,
    /// Sum of all samples, microseconds.
    pub sum: u64,
    /// Largest sample seen, microseconds.
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot (what `Histogram::new().snapshot()` returns).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The quantile estimate for rank `q` in `[0, 1]`: the upper bound
    /// of the bucket containing the `ceil(q · total)`-th smallest
    /// sample. Samples in the overflow bucket report [`Self::max`].
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return if i < BOUNDS.len() {
                    BOUNDS[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// The median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The element-wise merge of two snapshots — identical to having
    /// recorded the union of their samples into one histogram (the
    /// bucket bounds are global, so this is exact, not approximate).
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            total: self.total + other.total,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "off"))]
    #[test]
    fn values_land_in_the_right_buckets() {
        let h = Histogram::new();
        h.record(0); // bucket 0 (≤10)
        h.record(10); // bucket 0 (inclusive bound)
        h.record(11); // bucket 1 (≤20)
        h.record(10_000_001); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[BOUNDS.len()], 1);
        assert_eq!(s.total, 4);
        assert_eq!(s.sum, 10 + 11 + 10_000_001);
        assert_eq!(s.max, 10_000_001);
    }

    #[test]
    fn bucket_counts_sum_to_total() {
        let h = Histogram::new();
        for v in [0, 5, 99, 1234, 500_000, 99_999_999] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts.iter().sum::<u64>(), s.total);
    }

    #[test]
    fn quantiles_are_monotone_in_rank() {
        let h = Histogram::new();
        for v in [1, 15, 40, 150, 900, 4_000, 80_000, 3_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let qs: Vec<u64> = (0..=20).map(|i| s.quantile(i as f64 / 20.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(HistSnapshot::empty().p99(), 0);
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn overflow_quantile_reports_observed_max() {
        let h = Histogram::new();
        h.record(123_456_789);
        assert_eq!(h.snapshot().p50(), 123_456_789);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let (a, b, u) = (Histogram::new(), Histogram::new(), Histogram::new());
        let xs = [3u64, 77, 5_000];
        let ys = [0u64, 77, 999_999, 88_888_888];
        for &v in &xs {
            a.record(v);
            u.record(v);
        }
        for &v in &ys {
            b.record(v);
            u.record(v);
        }
        assert_eq!(a.snapshot().merged(&b.snapshot()), u.snapshot());
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn all_zero_samples_fill_the_first_bucket_exactly() {
        // The pattern every ManualClock test relies on.
        let h = Histogram::new();
        for _ in 0..7 {
            h.record(0);
        }
        let s = h.snapshot();
        assert_eq!(s.counts[0], 7);
        assert_eq!(s.total, 7);
        assert_eq!(s.sum, 0);
        assert_eq!(s.max, 0);
    }
}
