//! Machine-speed calibration for performance-regression gates.
//!
//! Hard-coded wall-clock thresholds rot: a gate tuned on a laptop fails
//! on a loaded CI runner and a gate tuned on CI never fires on fast
//! hardware. Instead, every gate's threshold is expressed as a multiple
//! of how long *this machine* takes to run a fixed, dependency-free
//! reference kernel — measured once per process ([`get_calibration`])
//! with a coefficient-of-variation check so a noisy measurement is
//! visible rather than silently baked into thresholds.
//!
//! The reference kernel is a pure integer-mixing loop (the SplitMix64
//! finalizer, the same mix `simrng` seeds with): no allocation, no I/O,
//! no FP — so its runtime tracks the scalar core speed that dominates
//! the tuner's own hot paths (genome evaluation, store lookups,
//! dispatch bookkeeping).
//!
//! This module deliberately uses the real wall clock, not the
//! injectable [`crate::clock::Clock`]: calibration *is* a measurement
//! of the physical machine.

use std::sync::OnceLock;
use std::time::Instant;

/// Inner rounds of one calibration iteration, sized so an iteration
/// lands in the low-milliseconds band on current hardware (long enough
/// to dwarf timer quantization, short enough that `5 × calibrate(10)`
/// stays under a second in the stability test).
const KERNEL_ROUNDS: u64 = 600_000;

/// One per-machine calibration measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBaseline {
    /// Median wall-clock time of one kernel iteration, milliseconds.
    pub median_ms: f64,
    /// Iterations measured.
    pub iteration_count: usize,
    /// Coefficient of variation across iterations, percent — the
    /// noise level of the measurement itself.
    pub cv_percent: f64,
}

impl CalibrationBaseline {
    /// A gate threshold: `multiplier` kernel-medians, floored at
    /// `floor_ms` so gates never tighten below timer noise on very
    /// fast machines.
    #[must_use]
    pub fn threshold_ms(&self, multiplier: f64, floor_ms: f64) -> f64 {
        (self.median_ms * multiplier).max(floor_ms)
    }
}

/// The fixed reference kernel: `rounds` SplitMix64 finalizer steps.
/// Returns the running checksum so the optimizer cannot delete the
/// loop.
#[must_use]
pub fn kernel(rounds: u64) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in 0..rounds {
        let mut z = acc.wrapping_add(i).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        acc = z ^ (z >> 31);
    }
    acc
}

/// Runs `iterations` timed kernel iterations and summarizes them.
///
/// # Panics
/// Zero iterations.
#[must_use]
pub fn calibrate(iterations: usize) -> CalibrationBaseline {
    assert!(iterations > 0, "calibrate() needs at least one iteration");
    // One warm-up iteration absorbs first-touch effects (frequency
    // ramp-up, instruction cache) that would otherwise inflate the CV.
    std::hint::black_box(kernel(KERNEL_ROUNDS));
    let mut times_ms = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        // Each iteration is the best of five timings: scheduler
        // preemption and host contention only ever *add* time, so the
        // minimum is the least-noisy estimate of the kernel's true
        // cost — this keeps the CV meaningful on shared CI runners.
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            std::hint::black_box(kernel(KERNEL_ROUNDS));
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        times_ms.push(best);
    }
    let mut sorted = times_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ms = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    let mean = times_ms.iter().sum::<f64>() / times_ms.len() as f64;
    let var = times_ms.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times_ms.len() as f64;
    let cv_percent = if mean > 0.0 {
        var.sqrt() / mean * 100.0
    } else {
        0.0
    };
    CalibrationBaseline {
        median_ms,
        iteration_count: iterations,
        cv_percent,
    }
}

/// The process-wide calibration: measured once (10 iterations) on
/// first use, then shared by every gate in the process.
pub fn get_calibration() -> &'static CalibrationBaseline {
    static CALIBRATION: OnceLock<CalibrationBaseline> = OnceLock::new();
    CALIBRATION.get_or_init(|| calibrate(10))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_deterministic_and_nonzero() {
        assert_eq!(kernel(1000), kernel(1000));
        assert_ne!(kernel(1000), kernel(1001));
        assert_ne!(kernel(1000), 0);
    }

    #[test]
    fn calibrate_produces_sane_baseline() {
        let c = calibrate(3);
        assert_eq!(c.iteration_count, 3);
        assert!(c.median_ms > 0.0 && c.median_ms < 10_000.0);
        assert!(c.cv_percent >= 0.0);
    }

    #[test]
    fn threshold_scales_with_multiplier_and_respects_floor() {
        let c = CalibrationBaseline {
            median_ms: 2.0,
            iteration_count: 10,
            cv_percent: 1.0,
        };
        assert!((c.threshold_ms(10.0, 10.0) - 20.0).abs() < 1e-12);
        assert!((c.threshold_ms(1.0, 10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn get_calibration_is_cached() {
        let a = get_calibration();
        let b = get_calibration();
        assert!(std::ptr::eq(a, b));
    }
}
