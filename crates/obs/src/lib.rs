//! Zero-dependency observability for the tuning stack: hierarchical
//! timed [spans](span!), fixed-bucket latency [histograms](Histogram)
//! with p50/p95/p99, and monotonic [counters](Counter) / [gauges](Gauge)
//! behind a process-wide [`Registry`] — plus a Prometheus text
//! [exposition](render_prometheus).
//!
//! The paper's premise is that you cannot tune what you cannot measure;
//! the same goes for the tuner itself. This crate answers "where does a
//! generation's wall time go?" (eval vs. breed vs. dispatch), "which
//! worker is slow?", and "how often do retries fire?" — without
//! perturbing the search:
//!
//! * **Deterministic-safe.** Recording never touches engine RNG and
//!   never feeds back into decisions, so distributed runs stay
//!   bit-identical to local ones with observability on. Time comes from
//!   an injected [`Clock`]: production uses [`WallClock`], tests use
//!   [`ManualClock`] so counter *and histogram* assertions are exact.
//! * **Cheap.** Recording is an atomic add; instrument lookup is a short
//!   mutex on a `BTreeMap`. The `off` cargo feature compiles every
//!   record call to a no-op for overhead benchmarking
//!   (`scripts/bench.sh` asserts the default build stays within 2% of
//!   the compiled-out build on the eval loop).
//! * **Shared vocabulary.** Keys carry Prometheus-style labels
//!   ([`labeled`]), so one registry serves the `tuned` protocol's `obs`
//!   verb (JSON), the `/metrics` endpoint (text exposition), and
//!   enriched `watch` frames.

pub mod calib;
pub mod clock;
pub mod expo;
pub mod hist;
pub mod registry;
pub mod span;

pub use calib::{calibrate, get_calibration, CalibrationBaseline};
pub use clock::{Clock, ManualClock, WallClock};
pub use expo::render_prometheus;
pub use hist::{HistSnapshot, Histogram, BOUNDS, NUM_BUCKETS};
pub use registry::{
    global, labeled, recording_compiled_out, Counter, Gauge, Registry, RegistrySnapshot,
};
pub use span::{SpanGuard, SpanRecord, SPAN_RING_CAPACITY};
