//! The process-wide instrument registry.
//!
//! A [`Registry`] owns every counter, gauge, and histogram, keyed by
//! name (optionally with Prometheus-style `{key="value"}` labels baked
//! into the key — see [`labeled`]). Instruments are created on first
//! use; lookups take a short mutex, recording on the returned handle is
//! lock-free. Keys live in `BTreeMap`s so snapshots iterate in sorted
//! order — golden-file tests and JSON diffs stay stable.
//!
//! Components accept an injected `Arc<Registry>` (tests pass one built
//! on a [`ManualClock`](crate::ManualClock)) and default to the shared
//! [`global`] registry, which runs on a wall clock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::{Clock, WallClock};
use crate::hist::{HistSnapshot, Histogram};
use crate::span::{SpanCollector, SpanGuard, SpanRecord};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op when built with the `off` feature.
    pub fn add(&self, n: u64) {
        if cfg!(feature = "off") {
            return;
        }
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value. A no-op when built with the `off` feature.
    pub fn set(&self, v: i64) {
        if cfg!(feature = "off") {
            return;
        }
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative). A no-op when built with the `off`
    /// feature.
    pub fn add(&self, delta: i64) {
        if cfg!(feature = "off") {
            return;
        }
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Builds an instrument key with Prometheus-style labels:
/// `labeled("rpc_latency_micros", &[("worker", "10.0.0.1:7001")])` →
/// `rpc_latency_micros{worker="10.0.0.1:7001"}`.
#[must_use]
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

/// The instrument registry. See the module docs.
pub struct Registry {
    clock: Arc<dyn Clock>,
    /// Opt-in switch for high-frequency instrumentation (per-`measure`
    /// cost-model timings in `jit`). Off by default so the hot path pays
    /// one atomic load, not a histogram insert.
    detailed: AtomicBool,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: SpanCollector,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("detailed", &self.detailed())
            .finish_non_exhaustive()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry on the production wall clock.
    #[must_use]
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// A registry on an injected clock (tests pass a
    /// [`ManualClock`](crate::ManualClock)).
    #[must_use]
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            detailed: AtomicBool::new(false),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: SpanCollector::default(),
        }
    }

    /// The registry's clock reading, microseconds.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Whether detailed (high-frequency) instrumentation is on.
    #[must_use]
    pub fn detailed(&self) -> bool {
        self.detailed.load(Ordering::Relaxed)
    }

    /// Turns detailed instrumentation on or off.
    pub fn set_detailed(&self, on: bool) {
        self.detailed.store(on, Ordering::Relaxed);
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    pub(crate) fn spans(&self) -> &SpanCollector {
        &self.spans
    }

    /// Opens a timed span; prefer the [`span!`](crate::span!) macro when
    /// the label should carry `key=value` fields.
    pub fn span(self: &Arc<Self>, name: &str) -> SpanGuard {
        SpanGuard::open(self, name, name.to_string())
    }

    /// Opens a span with an explicit label (what [`span!`](crate::span!)
    /// expands to).
    pub fn span_labeled(self: &Arc<Self>, name: &str, label: String) -> SpanGuard {
        SpanGuard::open(self, name, label)
    }

    /// A point-in-time copy of everything, instruments sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .expect("counter map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("gauge map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("histogram map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            spans: self.spans.snapshot(),
        }
    }
}

/// Whether recording was compiled out with the `off` cargo feature (the
/// overhead benchmark prints this to label its runs).
#[must_use]
pub const fn recording_compiled_out() -> bool {
    cfg!(feature = "off")
}

/// A plain-data copy of a [`Registry`]'s contents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` pairs, sorted by name.
    pub histograms: Vec<(String, HistSnapshot)>,
    /// Recently finished spans, oldest first (bounded ring).
    pub spans: Vec<SpanRecord>,
}

impl RegistrySnapshot {
    /// Looks up a counter by exact name; missing counters read as 0.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Looks up a histogram by exact name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// The shared process-wide registry (wall clock). Components record
/// here unless a test injects its own registry.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_builds_prometheus_style_keys() {
        assert_eq!(labeled("x", &[]), "x");
        assert_eq!(
            labeled("rpc", &[("worker", "a:1"), ("kind", "eval")]),
            "rpc{worker=\"a:1\",kind=\"eval\"}"
        );
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn instruments_are_shared_by_name() {
        let reg = Registry::new();
        reg.counter("hits").inc();
        reg.counter("hits").add(2);
        assert_eq!(reg.counter("hits").get(), 3);
        reg.gauge("depth").set(5);
        reg.gauge("depth").add(-2);
        assert_eq!(reg.gauge("depth").get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").inc();
        reg.gauge("mid").set(1);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn detailed_defaults_off_and_toggles() {
        let reg = Registry::new();
        assert!(!reg.detailed());
        reg.set_detailed(true);
        assert!(reg.detailed());
    }

    #[cfg(feature = "off")]
    #[test]
    fn off_feature_compiles_recording_out() {
        let reg = Arc::new(Registry::new());
        reg.counter("c").inc();
        reg.gauge("g").set(9);
        reg.histogram("h").record(5);
        {
            let _g = reg.span("s");
        }
        assert!(recording_compiled_out());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 0);
        assert_eq!(snap.histogram("h").unwrap().total, 0);
        assert!(snap.spans.is_empty());
    }
}
