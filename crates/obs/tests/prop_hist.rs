//! Property tests for histogram invariants.
//!
//! Gated behind the bare `proptest` cargo feature because the
//! `proptest` crate is not vendored (this workspace builds offline with
//! zero external dependencies). To run:
//!
//! ```text
//! # on a networked machine:
//! #   add `proptest = "1"` under [dev-dependencies] in crates/obs/Cargo.toml
//! cargo test -p inlinetune-obs --features proptest
//! ```
//!
//! Invariants under test:
//!
//! * bucket counts always sum to `total`, and the cumulative rendering
//!   therefore ends at `total`;
//! * quantiles are monotone in rank: `q(a) <= q(b)` whenever `a <= b`;
//! * quantiles are bracketed by the observed extremes;
//! * `merged(a, b)` equals recording the concatenated sample stream.

#![cfg(feature = "proptest")]

use obs::{Histogram, NUM_BUCKETS};
use proptest::prelude::*;

fn record_all(samples: &[u64]) -> obs::HistSnapshot {
    let h = Histogram::default();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn bucket_counts_sum_to_total(samples in proptest::collection::vec(any::<u64>(), 0..200)) {
        let snap = record_all(&samples);
        prop_assert_eq!(snap.counts.len(), NUM_BUCKETS);
        prop_assert_eq!(snap.counts.iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(snap.total, samples.len() as u64);
    }

    #[test]
    fn quantiles_are_monotone_in_rank(
        samples in proptest::collection::vec(0u64..100_000_000, 1..200),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let snap = record_all(&samples);
        prop_assert!(snap.quantile(lo) <= snap.quantile(hi));
    }

    #[test]
    fn quantiles_are_bracketed_by_observed_extremes(
        samples in proptest::collection::vec(0u64..100_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let snap = record_all(&samples);
        let max = *samples.iter().max().unwrap();
        // A bucket quantile reports the bucket's upper bound (or the
        // observed max for the overflow bucket), so it never exceeds the
        // max's own bucket bound and never reports above the true max
        // for the overflow case.
        prop_assert!(snap.quantile(q) <= snap.quantile(1.0));
        prop_assert!(snap.quantile(1.0) >= max.min(snap.max));
        prop_assert_eq!(snap.max, max);
    }

    #[test]
    fn merge_equals_recording_the_union(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let merged = record_all(&a).merged(&record_all(&b));
        let mut union = a.clone();
        union.extend_from_slice(&b);
        let direct = record_all(&union);
        // Sums may wrap identically on both sides (wrapping add), so
        // whole-snapshot equality is the right comparison.
        prop_assert_eq!(merged, direct);
    }
}
