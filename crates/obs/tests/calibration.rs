//! Calibration stability: the per-machine baseline the perf gates
//! scale from must itself be a repeatable measurement.
//!
//! The stability test is `#[ignore]`d so `cargo test` stays robust on
//! arbitrarily-loaded developer machines; CI runs it explicitly
//! (`scripts/ci.sh` stage "calibration stability") where the runner is
//! expected to be quiet enough to hold a 20% CV.

use obs::calib::{calibrate, get_calibration};

/// Five independent calibration runs must each be low-noise (CV < 20%)
/// and agree with each other (medians within 30%).
#[test]
#[ignore = "timing-sensitive; run explicitly via scripts/ci.sh"]
fn calibration_stability() {
    let runs: Vec<_> = (0..5).map(|_| calibrate(10)).collect();
    for (i, c) in runs.iter().enumerate() {
        assert!(
            c.cv_percent < 20.0,
            "run {i}: CV {:.1}% >= 20% (median {:.3}ms) — machine too noisy to gate on",
            c.cv_percent,
            c.median_ms
        );
    }
    let lo = runs
        .iter()
        .map(|c| c.median_ms)
        .fold(f64::INFINITY, f64::min);
    let hi = runs.iter().map(|c| c.median_ms).fold(0.0, f64::max);
    assert!(
        hi <= lo * 1.3,
        "medians spread {:.3}ms..{:.3}ms exceeds 30% — calibration not stable",
        lo,
        hi
    );
}

/// The cheap always-on smoke check: the process-wide calibration
/// exists, is positive, and thresholds behave monotonically.
#[test]
fn calibration_smoke() {
    let c = get_calibration();
    assert!(c.median_ms > 0.0);
    assert_eq!(c.iteration_count, 10);
    let tight = c.threshold_ms(2.0, 0.1);
    let loose = c.threshold_ms(20.0, 0.1);
    assert!(loose >= tight);
    assert!(c.threshold_ms(0.0, 5.0) >= 5.0, "floor must hold");
}
