//! Golden-file test for the Prometheus text exposition.
//!
//! The registry is built deterministically (sorted instrument names, a
//! frozen [`obs::ManualClock`] advanced by hand), so the rendered text
//! must match `golden_metrics.txt` byte for byte. If a deliberate format
//! change breaks this, regenerate the golden by running the test with
//! `OBS_BLESS_GOLDEN=1` and committing the rewritten file.

#![cfg(not(feature = "off"))]

use std::sync::Arc;

use obs::{labeled, render_prometheus, ManualClock, Registry};

fn golden_registry() -> Registry {
    let clock = Arc::new(ManualClock::new());
    let reg = Registry::with_clock(Arc::clone(&clock) as Arc<dyn obs::Clock>);

    reg.counter("ga_generations").add(3);
    reg.counter(&labeled("dispatch_retries", &[("worker", "a:1")]))
        .add(12);
    reg.counter(&labeled("dispatch_retries", &[("worker", "b:2")]))
        .inc();
    reg.gauge("queue_depth").set(4);
    reg.gauge("queue_depth").add(-2);

    let h = reg.histogram(&labeled("rpc_latency_micros", &[("worker", "a:1")]));
    h.record(0); // first bucket
    h.record(7); // first bucket
    h.record(150); // le="200"
    h.record(99_999_999); // overflow bucket
    reg.histogram("empty_micros"); // registered but never recorded

    clock.advance(250);
    reg
}

#[test]
fn exposition_matches_the_checked_in_golden() {
    let rendered = render_prometheus(&golden_registry().snapshot());
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_metrics.txt");
    if std::env::var_os("OBS_BLESS_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file checked in");
    assert_eq!(
        rendered, golden,
        "exposition format drifted; run with OBS_BLESS_GOLDEN=1 to re-bless"
    );
}
