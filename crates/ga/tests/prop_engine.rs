// Gated: needs the crates.io `proptest` crate (see the `proptest`
// feature note in this crate's Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the GA engine: every genome the engine ever
//! evaluates is in range, runs are deterministic, and the engine actually
//! optimizes.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use ga::{GaConfig, GeneticAlgorithm, Ranges};

prop_compose! {
    fn arb_ranges()(bounds in proptest::collection::vec((0i64..100, 0i64..4000), 2..8)) -> Ranges {
        Ranges::new(bounds.into_iter().map(|(a, span)| (a, a + span)).collect())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine never proposes an out-of-range genome to the fitness
    /// function, no matter the configuration.
    #[test]
    fn every_evaluated_genome_is_in_range(
        ranges in arb_ranges(),
        seed in any::<u64>(),
        pop in 2usize..16,
        gens in 1usize..12,
        mutation in 0.0f64..1.0,
        crossover in 0.0f64..1.0,
    ) {
        let violations = AtomicUsize::new(0);
        let engine = GeneticAlgorithm::new(
            ranges.clone(),
            GaConfig {
                pop_size: pop,
                generations: gens,
                mutation_prob: mutation,
                crossover_prob: crossover,
                elitism: 1.min(pop - 1),
                threads: 1,
                stagnation_limit: None,
                seed,
                ..GaConfig::default()
            },
        );
        let result = engine.run(|g| {
            if !ranges.contains(g) {
                violations.fetch_add(1, Ordering::Relaxed);
            }
            g.iter().map(|&v| v as f64).sum()
        });
        prop_assert_eq!(violations.load(Ordering::Relaxed), 0);
        prop_assert!(ranges.contains(&result.best_genome));
    }

    /// Whole runs are pure functions of (ranges, config).
    #[test]
    fn runs_are_deterministic(ranges in arb_ranges(), seed in any::<u64>()) {
        let cfg = GaConfig {
            pop_size: 8,
            generations: 6,
            threads: 1,
            stagnation_limit: None,
            seed,
            ..GaConfig::default()
        };
        let f = |g: &[i64]| g.iter().map(|&v| (v as f64).abs()).sum::<f64>();
        let a = GeneticAlgorithm::new(ranges.clone(), cfg.clone()).run(f);
        let b = GeneticAlgorithm::new(ranges, cfg).run(f);
        prop_assert_eq!(a.best_genome, b.best_genome);
        prop_assert_eq!(a.best_fitness, b.best_fitness);
        prop_assert_eq!(a.evaluations, b.evaluations);
        prop_assert_eq!(a.cache_hits, b.cache_hits);
    }

    /// More generations never worsen the best (elitism + monotone best
    /// tracking).
    #[test]
    fn longer_runs_are_no_worse(ranges in arb_ranges(), seed in any::<u64>()) {
        let run = |gens: usize| {
            GeneticAlgorithm::new(
                ranges.clone(),
                GaConfig {
                    pop_size: 10,
                    generations: gens,
                    threads: 1,
                    stagnation_limit: None,
                    seed,
                    ..GaConfig::default()
                },
            )
            .run(|g| g.iter().map(|&v| v as f64 * v as f64).sum())
        };
        let short = run(3);
        let long = run(12);
        prop_assert!(long.best_fitness <= short.best_fitness);
    }
}
