//! The generational GA engine with memoized, optionally parallel fitness
//! evaluation.
//!
//! The engine comes in two shapes:
//!
//! * [`GeneticAlgorithm::run`] — the original blocking call: runs every
//!   generation and returns a [`GaResult`];
//! * [`GaState`] — the resumable form: [`GaState::step`] advances the
//!   search exactly one generation, and [`GaState::snapshot`] /
//!   [`GaState::restore`] round-trip the *entire* search state (population,
//!   RNG, memo table, counters, history) through a plain-data
//!   [`GaSnapshot`], so a long run can be checkpointed after every
//!   generation and resumed — even in a different process — with
//!   bit-identical results. `run` is a thin loop over `step`, so the two
//!   shapes cannot drift apart.

use std::collections::HashMap;
use std::sync::Arc;

use simrng::Rng;

use crate::eval::{Evaluator, LocalEvaluator};
use crate::genome::{GeneKind, Genome, Ranges};
use crate::ops::{mutate, one_point_crossover, tournament, two_point_crossover, uniform_crossover};

/// Which recombination operator breeding uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrossoverKind {
    /// One-point tail swap.
    OnePoint,
    /// Two-point middle-segment swap (ECJ's vector default).
    TwoPoint,
    /// Per-gene coin-flip.
    Uniform,
    /// A 50/50 mix of one-point and uniform per breeding pair.
    #[default]
    Mixed,
}

impl CrossoverKind {
    /// Stable identifier (used by checkpoint files and the wire protocol).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CrossoverKind::OnePoint => "one-point",
            CrossoverKind::TwoPoint => "two-point",
            CrossoverKind::Uniform => "uniform",
            CrossoverKind::Mixed => "mixed",
        }
    }

    /// Parses the identifier produced by [`CrossoverKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "one-point" => Some(CrossoverKind::OnePoint),
            "two-point" => Some(CrossoverKind::TwoPoint),
            "uniform" => Some(CrossoverKind::Uniform),
            "mixed" => Some(CrossoverKind::Mixed),
            _ => None,
        }
    }
}

/// Engine configuration.
///
/// The paper's setup (§3.1) is population 20 evolved for 500 generations;
/// [`GaConfig::paper`] reproduces it. The default configuration trades a
/// little search quality for wall-clock (the fitness landscape here
/// plateaus long before 500 generations; `stagnation_limit` stops early).
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub pop_size: usize,
    /// Maximum generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Probability a breeding pair undergoes crossover (else clones).
    pub crossover_prob: f64,
    /// Recombination operator.
    pub crossover_kind: CrossoverKind,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed (the whole run is a pure function of this).
    pub seed: u64,
    /// Stop after this many generations without best-fitness improvement
    /// (`None` = never stop early).
    pub stagnation_limit: Option<usize>,
    /// Worker threads for fitness evaluation (1 = sequential).
    pub threads: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            pop_size: 20,
            generations: 100,
            tournament_size: 2,
            crossover_prob: 0.9,
            crossover_kind: CrossoverKind::Mixed,
            mutation_prob: 0.25,
            elitism: 2,
            seed: 0x6a11,
            stagnation_limit: Some(30),
            threads: std::thread::available_parallelism().map_or(1, usize::from),
        }
    }
}

impl GaConfig {
    /// The paper's §3.1 configuration: population 20, 500 generations, no
    /// early stopping.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            pop_size: 20,
            generations: 500,
            stagnation_limit: None,
            ..Self::default()
        }
    }

    fn validate(&self) {
        assert!(self.pop_size >= 2, "population must be at least 2");
        assert!(
            self.elitism < self.pop_size,
            "elitism must leave room to breed"
        );
        assert!(self.threads >= 1, "need at least one evaluation thread");
        assert!(
            self.tournament_size >= 1,
            "tournament size must be positive"
        );
    }
}

/// One generation's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Generation {
    /// Generation index (0-based).
    pub index: usize,
    /// Best fitness seen up to and including this generation.
    pub best_fitness: f64,
    /// Best genome so far.
    pub best_genome: Genome,
    /// Mean fitness of this generation's population.
    pub mean_fitness: f64,
}

/// Where one generation's wall time went, as measured by the engine's
/// observability registry (all zeros under a frozen `ManualClock`).
/// Read the latest with [`GaState::last_timing`]; the `tuned` daemon
/// forwards it in `watch` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenTiming {
    /// Generation index (0-based).
    pub generation: usize,
    /// Time in fitness evaluation (memo misses through the backend).
    pub eval_micros: u64,
    /// Time in best-tracking / history / stagnation bookkeeping.
    pub select_micros: u64,
    /// Time breeding the next population (0 on the final generation,
    /// which does not breed).
    pub breed_micros: u64,
    /// Distinct genomes evaluated this generation (cache misses).
    pub evaluations: usize,
    /// Evaluations answered from the memo table this generation.
    pub cache_hits: usize,
}

/// The outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaResult {
    /// Best genome found.
    pub best_genome: Genome,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-generation history (useful for convergence plots).
    pub history: Vec<Generation>,
    /// Distinct genomes actually evaluated (cache misses).
    pub evaluations: usize,
    /// Evaluations answered from the memo table.
    pub cache_hits: usize,
}

/// A plain-data image of a [`GaState`] at a generation boundary.
///
/// Every field is public and made of std types so callers can serialize it
/// in whatever format they like (the `tuned` daemon writes it as JSON).
/// [`GaState::restore`] validates the image and rebuilds the live state.
#[derive(Debug, Clone, PartialEq)]
pub struct GaSnapshot {
    /// Per-gene inclusive bounds of the search space.
    pub bounds: Vec<(i64, i64)>,
    /// Per-gene kinds (same length as `bounds`).
    pub kinds: Vec<GeneKind>,
    /// The engine configuration (including the seed).
    pub config: GaConfig,
    /// Raw xoshiro256** state of the breeding RNG.
    pub rng_state: [u64; 4],
    /// The current (not-yet-evaluated or just-bred) population.
    pub population: Vec<Genome>,
    /// The fitness memo table, sorted by genome for stable bytes.
    pub cache: Vec<(Genome, f64)>,
    /// Distinct genomes evaluated so far.
    pub evaluations: usize,
    /// Evaluations answered from the memo table so far.
    pub cache_hits: usize,
    /// Per-generation history so far.
    pub history: Vec<Generation>,
    /// Best genome so far.
    pub best_genome: Genome,
    /// Its fitness (`+inf` before the first generation completes).
    pub best_fitness: f64,
    /// Consecutive generations without improvement.
    pub stagnant: usize,
    /// Index of the next generation to run.
    pub next_gen: usize,
    /// Whether the run has finished.
    pub done: bool,
}

/// A resumable in-flight GA search.
///
/// Create with [`GaState::new`] (or [`GeneticAlgorithm::start`]), advance
/// with [`GaState::step`], and read the outcome with [`GaState::result`].
/// The state is a pure function of the config seed and the number of steps
/// taken: stepping is exactly the loop body of [`GeneticAlgorithm::run`].
#[derive(Debug, Clone)]
pub struct GaState {
    ranges: Ranges,
    config: GaConfig,
    rng: Rng,
    population: Vec<Genome>,
    cache: HashMap<Genome, f64>,
    evaluations: usize,
    cache_hits: usize,
    history: Vec<Generation>,
    best_genome: Genome,
    best_fitness: f64,
    stagnant: usize,
    next_gen: usize,
    done: bool,
    /// Where timings and counters are recorded. Defaults to the shared
    /// process registry; tests inject one built on a `ManualClock`.
    /// Deliberately outside the snapshot: observability is not search
    /// state, and restoring must stay byte-identical.
    obs: Arc<obs::Registry>,
    /// The most recent generation's timing breakdown.
    last_timing: Option<GenTiming>,
}

impl GaState {
    /// Seeds a fresh search: draws the initial population from the config
    /// seed. No fitness is evaluated until the first [`step`].
    ///
    /// [`step`]: GaState::step
    ///
    /// # Panics
    /// Panics on degenerate configs (see [`GeneticAlgorithm::new`]).
    #[must_use]
    pub fn new(ranges: Ranges, config: GaConfig) -> Self {
        Self::with_seeds(ranges, config, &[])
    }

    /// Seeds a fresh search whose initial population starts from
    /// `seeds` (warm start): seeds with the right gene count are
    /// clamped into range, deduplicated, and truncated to the
    /// population size; the remainder is drawn from the config seed
    /// exactly as [`GaState::new`] would draw it. With no seeds this
    /// *is* `new`, bit for bit — the cold-start fallback costs nothing.
    ///
    /// # Panics
    /// Panics on degenerate configs (see [`GeneticAlgorithm::new`]).
    #[must_use]
    pub fn with_seeds(ranges: Ranges, config: GaConfig, seeds: &[Genome]) -> Self {
        config.validate();
        let mut rng = Rng::seed_from_u64(config.seed);
        let mut population: Vec<Genome> = Vec::with_capacity(config.pop_size);
        for s in seeds {
            if s.len() != ranges.len() {
                continue;
            }
            let mut g = s.clone();
            ranges.clamp(&mut g);
            if !population.contains(&g) {
                population.push(g);
                if population.len() == config.pop_size {
                    break;
                }
            }
        }
        while population.len() < config.pop_size {
            population.push(ranges.random(&mut rng));
        }
        let best_genome = population[0].clone();
        Self {
            ranges,
            config,
            rng,
            population,
            cache: HashMap::new(),
            evaluations: 0,
            cache_hits: 0,
            history: Vec::new(),
            best_genome,
            best_fitness: f64::INFINITY,
            stagnant: 0,
            next_gen: 0,
            done: false,
            obs: Arc::clone(obs::global()),
            last_timing: None,
        }
    }

    /// Redirects this search's timings and counters to `registry`
    /// (instead of the process-wide default). Recording never feeds back
    /// into the search, so this cannot change results.
    pub fn set_obs(&mut self, registry: Arc<obs::Registry>) {
        self.obs = registry;
    }

    /// The last completed generation's timing breakdown (`None` before
    /// the first step).
    #[must_use]
    pub fn last_timing(&self) -> Option<GenTiming> {
        self.last_timing
    }

    /// Runs exactly one generation: evaluates the current population
    /// (through the memo table, in parallel when configured), records
    /// history, and — unless the run just finished — breeds the next
    /// population. Returns `true` once the run is complete; further calls
    /// are no-ops.
    ///
    /// `fitness` must be deterministic: results are memoized by genome.
    /// Non-finite fitness values are treated as `+inf` (worst).
    pub fn step<F>(&mut self, fitness: F) -> bool
    where
        F: Fn(&[i64]) -> f64 + Sync,
    {
        let threads = self.config.threads;
        self.step_with(&LocalEvaluator::new(fitness, threads))
    }

    /// Like [`step`], but evaluates cache misses through an explicit
    /// [`Evaluator`] backend instead of the config's local thread pool.
    /// Because fitness is a pure function of the genome and results merge
    /// into the memo table keyed by genome, every backend — local threads,
    /// remote workers, anything — yields bit-identical runs.
    ///
    /// [`step`]: GaState::step
    pub fn step_with<E>(&mut self, backend: &E) -> bool
    where
        E: Evaluator + ?Sized,
    {
        if self.done || self.next_gen >= self.config.generations {
            self.done = true;
            return true;
        }
        let obs = Arc::clone(&self.obs);
        let gen_index = self.next_gen;
        let _gen_span = obs::span!(obs, "generation", gen = gen_index);
        let (evals_before, hits_before) = (self.evaluations, self.cache_hits);

        let eval_started = obs.now_micros();
        let scores = {
            let _span = obs.span("eval");
            self.evaluate(backend)
        };
        let eval_micros = obs.now_micros().saturating_sub(eval_started);

        let select_started = obs.now_micros();
        let stagnated = {
            let _span = obs.span("select");
            // Track the best.
            let mut improved = false;
            for (genome, &score) in self.population.iter().zip(&scores) {
                if score < self.best_fitness {
                    self.best_fitness = score;
                    self.best_genome = genome.clone();
                    improved = true;
                }
            }
            let finite_mean = {
                let finite: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
                if finite.is_empty() {
                    f64::INFINITY
                } else {
                    finite.iter().sum::<f64>() / finite.len() as f64
                }
            };
            self.history.push(Generation {
                index: self.next_gen,
                best_fitness: self.best_fitness,
                best_genome: self.best_genome.clone(),
                mean_fitness: finite_mean,
            });

            self.stagnant = if improved { 0 } else { self.stagnant + 1 };
            self.config
                .stagnation_limit
                .is_some_and(|limit| self.stagnant >= limit)
        };
        let select_micros = obs.now_micros().saturating_sub(select_started);

        let mut breed_micros = 0;
        let finished = if stagnated || self.next_gen + 1 == self.config.generations {
            self.done = true;
            true
        } else {
            let breed_started = obs.now_micros();
            {
                let _span = obs.span("breed");
                self.breed(&scores);
            }
            breed_micros = obs.now_micros().saturating_sub(breed_started);
            false
        };
        self.next_gen += 1;

        obs.counter("ga_generations").inc();
        obs.counter("ga_evaluations")
            .add((self.evaluations - evals_before) as u64);
        obs.counter("ga_cache_hits")
            .add((self.cache_hits - hits_before) as u64);
        obs.histogram("ga_eval_micros").record(eval_micros);
        obs.histogram("ga_select_micros").record(select_micros);
        obs.histogram("ga_breed_micros").record(breed_micros);
        self.last_timing = Some(GenTiming {
            generation: gen_index,
            eval_micros,
            select_micros,
            breed_micros,
            evaluations: self.evaluations - evals_before,
            cache_hits: self.cache_hits - hits_before,
        });
        finished
    }

    /// Breeds the next generation from the scored current one.
    fn breed(&mut self, scores: &[f64]) {
        let cfg = self.config.clone();
        let mut order: Vec<usize> = (0..self.population.len()).collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));

        let mut next: Vec<Genome> = Vec::with_capacity(cfg.pop_size);
        for &i in order.iter().take(cfg.elitism) {
            next.push(self.population[i].clone());
        }
        while next.len() < cfg.pop_size {
            let pa = tournament(scores, cfg.tournament_size, &mut self.rng);
            let pb = tournament(scores, cfg.tournament_size, &mut self.rng);
            let (mut c, mut d) = if self.rng.chance(cfg.crossover_prob) {
                let (x, y) = (&self.population[pa], &self.population[pb]);
                match cfg.crossover_kind {
                    CrossoverKind::OnePoint => one_point_crossover(x, y, &mut self.rng),
                    CrossoverKind::TwoPoint => two_point_crossover(x, y, &mut self.rng),
                    CrossoverKind::Uniform => uniform_crossover(x, y, &mut self.rng),
                    CrossoverKind::Mixed => {
                        if self.rng.chance(0.5) {
                            uniform_crossover(x, y, &mut self.rng)
                        } else {
                            one_point_crossover(x, y, &mut self.rng)
                        }
                    }
                }
            } else {
                (self.population[pa].clone(), self.population[pb].clone())
            };
            mutate(&mut c, &self.ranges, cfg.mutation_prob, &mut self.rng);
            mutate(&mut d, &self.ranges, cfg.mutation_prob, &mut self.rng);
            next.push(c);
            if next.len() < cfg.pop_size {
                next.push(d);
            }
        }
        self.population = next;
    }

    /// Evaluates the current population through the memo table, farming
    /// the deduplicated cache misses out to the backend. Backends never
    /// consume engine randomness, so every backend (and thread count) is
    /// bit-identical to sequential evaluation.
    ///
    /// # Panics
    /// Panics if the backend returns the wrong number of scores — that is
    /// a broken [`Evaluator`] contract, not a recoverable condition.
    fn evaluate<E>(&mut self, backend: &E) -> Vec<f64>
    where
        E: Evaluator + ?Sized,
    {
        // Split into hits and (deduplicated) misses.
        let mut misses: Vec<Genome> = Vec::new();
        {
            let mut seen: HashMap<&Genome, ()> = HashMap::new();
            for g in &self.population {
                if self.cache.contains_key(g) {
                    self.cache_hits += 1;
                } else if seen.insert(g, ()).is_none() {
                    misses.push(g.clone());
                }
            }
        }
        self.evaluations += misses.len();

        let scores = backend.evaluate(&misses);
        assert_eq!(
            scores.len(),
            misses.len(),
            "evaluator returned {} scores for {} genomes",
            scores.len(),
            misses.len()
        );
        let sanitize = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
        self.cache
            .extend(misses.into_iter().zip(scores.into_iter().map(sanitize)));

        self.population.iter().map(|g| self.cache[g]).collect()
    }

    /// Whether the run has finished (max generations, stagnation, or a
    /// zero-generation config).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done || self.next_gen >= self.config.generations
    }

    /// Number of completed generations.
    #[must_use]
    pub fn generation(&self) -> usize {
        self.history.len()
    }

    /// The configuration this search runs under.
    #[must_use]
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Re-plans the local evaluation thread count (clamped to ≥ 1).
    ///
    /// Thread count affects wall-clock only, never results, so a host may
    /// freely adjust it on a restored search — the `tuned` daemon does,
    /// to divide a machine-wide thread budget across concurrent jobs. The
    /// new value is recorded in subsequent snapshots.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// The search-space bounds.
    #[must_use]
    pub fn ranges(&self) -> &Ranges {
        &self.ranges
    }

    /// The current population, in breeding order. Together with
    /// [`cached`](Self::cached) this lets an external driver predict
    /// exactly which genomes the next [`step_with`](Self::step_with)
    /// will send to its evaluator (population order, memoized genomes
    /// skipped, duplicates once) — the `search` crate's ask/tell
    /// adapter depends on that prediction being exact.
    #[must_use]
    pub fn population(&self) -> &[Genome] {
        &self.population
    }

    /// The memoized fitness of a genome, if it has been evaluated.
    #[must_use]
    pub fn cached(&self, genome: &[i64]) -> Option<f64> {
        self.cache.get(genome).copied()
    }

    /// Best genome and fitness so far (`None` before the first generation).
    #[must_use]
    pub fn best(&self) -> Option<(&Genome, f64)> {
        if self.history.is_empty() {
            None
        } else {
            Some((&self.best_genome, self.best_fitness))
        }
    }

    /// Per-generation history so far.
    #[must_use]
    pub fn history(&self) -> &[Generation] {
        &self.history
    }

    /// Distinct genomes evaluated so far (cache misses).
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Evaluations answered from the memo table so far.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// The run's outcome so far, in the same shape [`GeneticAlgorithm::run`]
    /// returns.
    #[must_use]
    pub fn result(&self) -> GaResult {
        GaResult {
            best_genome: self.best_genome.clone(),
            best_fitness: self.best_fitness,
            history: self.history.clone(),
            evaluations: self.evaluations,
            cache_hits: self.cache_hits,
        }
    }

    /// A plain-data image of the complete search state. Restoring it with
    /// [`GaState::restore`] and continuing yields bit-identical results to
    /// never having snapshotted.
    #[must_use]
    pub fn snapshot(&self) -> GaSnapshot {
        let mut cache: Vec<(Genome, f64)> =
            self.cache.iter().map(|(g, &v)| (g.clone(), v)).collect();
        cache.sort_by(|a, b| a.0.cmp(&b.0));
        GaSnapshot {
            bounds: self.ranges.iter().collect(),
            kinds: self.ranges.kinds().to_vec(),
            config: self.config.clone(),
            rng_state: self.rng.state(),
            population: self.population.clone(),
            cache,
            evaluations: self.evaluations,
            cache_hits: self.cache_hits,
            history: self.history.clone(),
            best_genome: self.best_genome.clone(),
            best_fitness: self.best_fitness,
            stagnant: self.stagnant,
            next_gen: self.next_gen,
            done: self.done,
        }
    }

    /// Rebuilds a live state from a snapshot.
    ///
    /// # Errors
    /// Returns a description of the problem when the image is internally
    /// inconsistent (wrong population size, out-of-range genomes, history
    /// longer than the generation counter).
    pub fn restore(snapshot: GaSnapshot) -> Result<Self, String> {
        let GaSnapshot {
            bounds,
            kinds,
            config,
            rng_state,
            population,
            cache,
            evaluations,
            cache_hits,
            history,
            best_genome,
            best_fitness,
            stagnant,
            next_gen,
            done,
        } = snapshot;
        if bounds.is_empty() {
            return Err("snapshot has no gene bounds".into());
        }
        if bounds.iter().any(|&(lo, hi)| lo > hi) {
            return Err("snapshot has inverted gene bounds".into());
        }
        if kinds.len() != bounds.len() {
            return Err(format!(
                "snapshot has {} gene kinds for {} bounds",
                kinds.len(),
                bounds.len()
            ));
        }
        let ranges = Ranges::with_kinds(bounds, kinds);
        config.validate();
        if population.len() != config.pop_size {
            return Err(format!(
                "snapshot population has {} genomes, config says {}",
                population.len(),
                config.pop_size
            ));
        }
        if let Some(g) = population.iter().find(|g| !ranges.contains(g)) {
            return Err(format!("snapshot population genome {g:?} out of range"));
        }
        if history.len() > config.generations {
            return Err(format!(
                "snapshot history has {} generations, config allows {}",
                history.len(),
                config.generations
            ));
        }
        Ok(Self {
            ranges,
            config,
            rng: Rng::from_state(rng_state),
            population,
            cache: cache.into_iter().collect(),
            evaluations,
            cache_hits,
            history,
            best_genome,
            best_fitness,
            stagnant,
            next_gen,
            done,
            obs: Arc::clone(obs::global()),
            last_timing: None,
        })
    }
}

/// The engine. Construct with ranges and a config, then [`run`] with a
/// fitness function (lower is better), or [`start`] a resumable
/// [`GaState`].
///
/// [`run`]: GeneticAlgorithm::run
/// [`start`]: GeneticAlgorithm::start
#[derive(Debug)]
pub struct GeneticAlgorithm {
    ranges: Ranges,
    config: GaConfig,
}

impl GeneticAlgorithm {
    /// Creates an engine.
    ///
    /// # Panics
    /// Panics on degenerate configs (zero population, zero elitism pool
    /// larger than the population, zero threads).
    #[must_use]
    pub fn new(ranges: Ranges, config: GaConfig) -> Self {
        config.validate();
        Self { ranges, config }
    }

    /// Seeds a resumable search over this engine's ranges and config.
    #[must_use]
    pub fn start(&self) -> GaState {
        GaState::new(self.ranges.clone(), self.config.clone())
    }

    /// Runs the GA to completion, minimizing `fitness`.
    ///
    /// `fitness` must be deterministic: results are memoized by genome.
    /// Non-finite fitness values are treated as `+inf` (worst).
    pub fn run<F>(&self, fitness: F) -> GaResult
    where
        F: Fn(&[i64]) -> f64 + Sync,
    {
        let mut state = self.start();
        while !state.step(&fitness) {}
        state.result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_ranges() -> Ranges {
        Ranges::new(vec![(-100, 100); 4])
    }

    /// Distance-squared to a hidden optimum: easy landscape.
    fn sphere(target: &[i64]) -> impl Fn(&[i64]) -> f64 + Sync + '_ {
        move |g: &[i64]| {
            g.iter()
                .zip(target)
                .map(|(a, b)| ((a - b) * (a - b)) as f64)
                .sum()
        }
    }

    #[test]
    fn finds_the_sphere_optimum() {
        let target = vec![17, -42, 3, 88];
        let ga = GeneticAlgorithm::new(
            sphere_ranges(),
            GaConfig {
                pop_size: 24,
                generations: 150,
                stagnation_limit: None,
                threads: 1,
                seed: 11,
                ..GaConfig::default()
            },
        );
        let result = ga.run(sphere(&target));
        assert!(
            result.best_fitness < 30.0,
            "fitness {} genome {:?}",
            result.best_fitness,
            result.best_genome
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let target = vec![5, 5, 5, 5];
        let mk = || {
            GeneticAlgorithm::new(
                sphere_ranges(),
                GaConfig {
                    generations: 30,
                    threads: 1,
                    seed: 99,
                    ..GaConfig::default()
                },
            )
            .run(sphere(&target))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.best_genome, b.best_genome);
        assert_eq!(a.history.len(), b.history.len());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let target = vec![5, -5, 25, 0];
        let run = |threads| {
            GeneticAlgorithm::new(
                sphere_ranges(),
                GaConfig {
                    generations: 25,
                    threads,
                    seed: 7,
                    ..GaConfig::default()
                },
            )
            .run(sphere(&target))
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.best_genome, par.best_genome);
        assert_eq!(seq.best_fitness, par.best_fitness);
    }

    #[test]
    fn best_fitness_is_monotone_in_history() {
        let target = vec![1, 2, 3, 4];
        let r = GeneticAlgorithm::new(
            sphere_ranges(),
            GaConfig {
                generations: 40,
                threads: 1,
                seed: 3,
                ..GaConfig::default()
            },
        )
        .run(sphere(&target));
        for w in r.history.windows(2) {
            assert!(w[1].best_fitness <= w[0].best_fitness);
        }
    }

    #[test]
    fn memoization_saves_evaluations() {
        let target = vec![0, 0, 0, 0];
        let r = GeneticAlgorithm::new(
            sphere_ranges(),
            GaConfig {
                pop_size: 20,
                generations: 60,
                threads: 1,
                seed: 21,
                stagnation_limit: None,
                ..GaConfig::default()
            },
        )
        .run(sphere(&target));
        assert!(r.cache_hits > 0, "expected some repeated genomes");
        // Within-generation duplicates are deduplicated before evaluation,
        // so distinct evaluations never exceed the genomes proposed.
        assert!(r.evaluations < 20 * r.history.len());
    }

    #[test]
    fn stagnation_stops_early() {
        // Constant fitness: never improves after the first generation.
        let r = GeneticAlgorithm::new(
            sphere_ranges(),
            GaConfig {
                generations: 500,
                stagnation_limit: Some(5),
                threads: 1,
                ..GaConfig::default()
            },
        )
        .run(|_| 1.0);
        assert!(r.history.len() <= 7, "ran {} generations", r.history.len());
    }

    #[test]
    fn nonfinite_fitness_is_worst() {
        // NaN for everything except one genome; the GA must still find it.
        let r = GeneticAlgorithm::new(
            Ranges::new(vec![(0, 3); 2]),
            GaConfig {
                pop_size: 8,
                generations: 30,
                threads: 1,
                seed: 5,
                ..GaConfig::default()
            },
        )
        .run(|g| if g == [2, 2] { 0.0 } else { f64::NAN });
        assert_eq!(r.best_genome, vec![2, 2]);
        assert_eq!(r.best_fitness, 0.0);
    }

    #[test]
    #[should_panic(expected = "population must be at least 2")]
    fn tiny_population_rejected() {
        let _ = GeneticAlgorithm::new(
            sphere_ranges(),
            GaConfig {
                pop_size: 1,
                elitism: 0,
                ..GaConfig::default()
            },
        );
    }

    // ---- stepping / snapshot tests ----

    fn step_cfg(generations: usize) -> GaConfig {
        GaConfig {
            pop_size: 12,
            generations,
            threads: 1,
            seed: 404,
            stagnation_limit: None,
            ..GaConfig::default()
        }
    }

    #[test]
    fn stepped_run_matches_blocking_run() {
        let target = vec![9, -9, 40, -40];
        let f = sphere(&target);
        let engine = GeneticAlgorithm::new(sphere_ranges(), step_cfg(35));
        let blocking = engine.run(&f);

        let mut state = engine.start();
        let mut steps = 0;
        while !state.step(&f) {
            steps += 1;
        }
        let stepped = state.result();
        assert_eq!(steps + 1, blocking.history.len());
        assert_eq!(stepped.best_genome, blocking.best_genome);
        assert_eq!(
            stepped.best_fitness.to_bits(),
            blocking.best_fitness.to_bits()
        );
        assert_eq!(stepped.history, blocking.history);
        assert_eq!(stepped.evaluations, blocking.evaluations);
        assert_eq!(stepped.cache_hits, blocking.cache_hits);
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let target = vec![-3, 14, 15, 9];
        let f = sphere(&target);
        let engine = GeneticAlgorithm::new(sphere_ranges(), step_cfg(30));
        let reference = engine.run(&f);

        // Interrupt after every single generation: snapshot, restore,
        // continue — as the daemon does across process restarts.
        let mut state = engine.start();
        loop {
            let snap = state.snapshot();
            state = GaState::restore(snap).expect("valid snapshot");
            if state.step(&f) {
                break;
            }
        }
        let resumed = state.result();
        assert_eq!(resumed.best_genome, reference.best_genome);
        assert_eq!(
            resumed.best_fitness.to_bits(),
            reference.best_fitness.to_bits()
        );
        assert_eq!(resumed.history, reference.history);
        assert_eq!(resumed.evaluations, reference.evaluations);
        assert_eq!(resumed.cache_hits, reference.cache_hits);
    }

    #[test]
    fn snapshot_roundtrips_through_restore() {
        let f = sphere(&[1, 2, 3, 4]);
        let mut state = GaState::new(sphere_ranges(), step_cfg(10));
        for _ in 0..4 {
            assert!(!state.step(&f));
        }
        let snap = state.snapshot();
        let restored = GaState::restore(snap.clone()).unwrap();
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.generation(), 4);
        assert!(!restored.is_done());
    }

    #[test]
    fn restore_rejects_corrupt_population() {
        let mut snap = GaState::new(sphere_ranges(), step_cfg(5)).snapshot();
        snap.population[0][0] = 10_000; // out of the (-100, 100) range
        assert!(GaState::restore(snap).is_err());
        let mut snap = GaState::new(sphere_ranges(), step_cfg(5)).snapshot();
        snap.population.pop();
        assert!(GaState::restore(snap).is_err());
    }

    #[test]
    fn step_after_done_is_idempotent() {
        let f = sphere(&[0, 0, 0, 0]);
        let mut state = GaState::new(sphere_ranges(), step_cfg(3));
        while !state.step(&f) {}
        let before = state.result();
        assert!(state.step(&f));
        assert!(state.is_done());
        assert_eq!(state.result(), before);
    }

    #[test]
    fn best_is_none_before_first_step() {
        let state = GaState::new(sphere_ranges(), step_cfg(3));
        assert!(state.best().is_none());
        assert_eq!(state.generation(), 0);
    }

    #[test]
    fn step_with_custom_backend_matches_step() {
        // A backend that evaluates through its own machinery (reversed
        // iteration order, batch-at-once) must be indistinguishable from
        // the plain closure path.
        struct Reversed;
        impl crate::eval::Evaluator for Reversed {
            fn evaluate(&self, genomes: &[Genome]) -> Vec<f64> {
                let mut scores: Vec<f64> = genomes
                    .iter()
                    .rev()
                    .map(|g| g.iter().map(|&x| (x * x) as f64).sum())
                    .collect();
                scores.reverse();
                scores
            }
        }
        let f = |g: &[i64]| g.iter().map(|&x| (x * x) as f64).sum();
        let mut a = GaState::new(sphere_ranges(), step_cfg(20));
        let mut b = GaState::new(sphere_ranges(), step_cfg(20));
        loop {
            let da = a.step(f);
            let db = b.step_with(&Reversed);
            assert_eq!(da, db);
            if da {
                break;
            }
        }
        assert_eq!(a.result(), b.result());
        assert_eq!(
            a.result().best_fitness.to_bits(),
            b.result().best_fitness.to_bits()
        );
    }

    #[test]
    fn set_threads_changes_config_not_results() {
        let f = sphere(&[1, 2, 3, 4]);
        let mut a = GaState::new(sphere_ranges(), step_cfg(12));
        let mut b = GaState::new(sphere_ranges(), step_cfg(12));
        b.set_threads(0); // clamps to 1
        assert_eq!(b.config().threads, 1);
        b.set_threads(3);
        assert_eq!(b.config().threads, 3);
        while !a.step(&f) {}
        while !b.step(&f) {}
        assert_eq!(a.result(), b.result());
        assert_eq!(b.snapshot().config.threads, 3);
    }

    #[test]
    #[should_panic(expected = "evaluator returned")]
    fn short_score_vector_is_a_contract_violation() {
        struct Broken;
        impl crate::eval::Evaluator for Broken {
            fn evaluate(&self, _genomes: &[Genome]) -> Vec<f64> {
                Vec::new()
            }
        }
        let mut state = GaState::new(sphere_ranges(), step_cfg(3));
        let _ = state.step_with(&Broken);
    }

    #[test]
    fn step_records_exact_obs_counters_under_manual_clock() {
        let clock = Arc::new(obs::ManualClock::new());
        let reg = Arc::new(obs::Registry::with_clock(clock));
        let f = sphere(&[1, 2, 3, 4]);
        let mut state = GaState::new(sphere_ranges(), step_cfg(5));
        state.set_obs(Arc::clone(&reg));
        assert!(state.last_timing().is_none());
        while !state.step(&f) {}

        let snap = reg.snapshot();
        assert_eq!(snap.counter("ga_generations"), 5);
        assert_eq!(snap.counter("ga_evaluations"), state.evaluations() as u64);
        assert_eq!(snap.counter("ga_cache_hits"), state.cache_hits() as u64);
        // Frozen clock: every duration is exactly zero, so all five
        // samples land in the first bucket and the sums are zero.
        for name in ["ga_eval_micros", "ga_select_micros", "ga_breed_micros"] {
            let h = snap.histogram(name).unwrap();
            assert_eq!(h.total, 5, "{name}");
            assert_eq!(h.counts[0], 5, "{name}");
            assert_eq!(h.sum, 0, "{name}");
            assert_eq!(h.max, 0, "{name}");
        }
        // The span hierarchy: one "generation" per step, with nested
        // phases. The final generation does not breed.
        let count = |p: &str| snap.spans.iter().filter(|s| s.path == p).count();
        assert_eq!(count("generation"), 5);
        assert_eq!(count("generation/eval"), 5);
        assert_eq!(count("generation/select"), 5);
        assert_eq!(count("generation/breed"), 4);
        assert!(snap.spans.iter().any(|s| s.label == "generation gen=0"));

        let t = state.last_timing().unwrap();
        assert_eq!(t.generation, 4);
        assert_eq!((t.eval_micros, t.select_micros, t.breed_micros), (0, 0, 0));
    }

    #[test]
    fn obs_injection_does_not_change_results() {
        let f = sphere(&[7, -7, 7, -7]);
        let mut plain = GaState::new(sphere_ranges(), step_cfg(15));
        let mut observed = GaState::new(sphere_ranges(), step_cfg(15));
        observed.set_obs(Arc::new(obs::Registry::new()));
        while !plain.step(&f) {}
        while !observed.step(&f) {}
        assert_eq!(plain.result(), observed.result());
        assert_eq!(
            plain.result().best_fitness.to_bits(),
            observed.result().best_fitness.to_bits()
        );
    }

    #[test]
    fn with_seeds_and_no_seeds_is_exactly_new() {
        let f = sphere(&[7, -7, 7, -7]);
        let mut cold = GaState::new(sphere_ranges(), step_cfg(21));
        let mut warm = GaState::with_seeds(sphere_ranges(), step_cfg(21), &[]);
        assert_eq!(cold.snapshot(), warm.snapshot());
        while !cold.step(&f) {}
        while !warm.step(&f) {}
        assert_eq!(
            cold.result().best_fitness.to_bits(),
            warm.result().best_fitness.to_bits()
        );
    }

    #[test]
    fn seeds_are_planted_clamped_and_deduped() {
        let ranges = sphere_ranges();
        let lo_hi = ranges.gene(0);
        let seeds = vec![
            vec![1, 2, 3, 4],
            vec![1, 2, 3, 4],              // duplicate: dropped
            vec![lo_hi.1 + 1000, 0, 0, 0], // out of range: clamped
            vec![1, 2],                    // wrong arity: skipped
        ];
        let state = GaState::with_seeds(ranges.clone(), step_cfg(3), &seeds);
        let pop = state.population();
        assert_eq!(pop[0], vec![1, 2, 3, 4]);
        assert_eq!(pop[1], vec![lo_hi.1, 0, 0, 0]);
        assert_ne!(pop[2], vec![1, 2, 3, 4], "duplicate seed was planted twice");
        assert_eq!(pop.len(), state.config().pop_size);
        for g in pop {
            assert!(ranges.contains(g));
        }
    }

    #[test]
    fn seeded_run_is_deterministic_in_config_seed_and_seeds() {
        let f = sphere(&[5, 5, -5, -5]);
        let seeds = vec![vec![5, 5, -5, -5], vec![0, 0, 0, 0]];
        let run = || {
            let mut s = GaState::with_seeds(sphere_ranges(), step_cfg(9), &seeds);
            while !s.step(&f) {}
            (s.result().best_genome.clone(), s.result().best_fitness)
        };
        let (g1, f1) = run();
        let (g2, f2) = run();
        assert_eq!(g1, g2);
        assert_eq!(f1.to_bits(), f2.to_bits());
    }

    #[test]
    fn snapshot_carries_gene_kinds_through_restore() {
        let ranges = Ranges::with_kinds(
            vec![(0, 3), (0, 1), (1, 50), (1, 400)],
            vec![GeneKind::Cat, GeneKind::Bool, GeneKind::Int, GeneKind::Int],
        );
        let f = |g: &[i64]| g.iter().map(|&x| x as f64).sum();
        let mut state = GaState::new(ranges.clone(), step_cfg(6));
        for _ in 0..2 {
            assert!(!state.step(f));
        }
        let snap = state.snapshot();
        assert_eq!(snap.kinds, ranges.kinds());
        let restored = GaState::restore(snap.clone()).unwrap();
        assert_eq!(restored.ranges().kinds(), ranges.kinds());
        assert_eq!(restored.snapshot(), snap);

        let mut bad = snap;
        bad.kinds.pop();
        assert!(GaState::restore(bad).is_err());
    }

    #[test]
    fn crossover_kind_names_roundtrip() {
        for kind in [
            CrossoverKind::OnePoint,
            CrossoverKind::TwoPoint,
            CrossoverKind::Uniform,
            CrossoverKind::Mixed,
        ] {
            assert_eq!(CrossoverKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(CrossoverKind::from_name("nope"), None);
    }
}
