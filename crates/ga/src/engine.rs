//! The generational GA engine with memoized, optionally parallel fitness
//! evaluation.

use std::collections::HashMap;

use parking_lot::Mutex;
use simrng::Rng;

use crate::genome::{Genome, Ranges};
use crate::ops::{mutate, one_point_crossover, tournament, two_point_crossover, uniform_crossover};

/// Which recombination operator breeding uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrossoverKind {
    /// One-point tail swap.
    OnePoint,
    /// Two-point middle-segment swap (ECJ's vector default).
    TwoPoint,
    /// Per-gene coin-flip.
    Uniform,
    /// A 50/50 mix of one-point and uniform per breeding pair.
    #[default]
    Mixed,
}

/// Engine configuration.
///
/// The paper's setup (§3.1) is population 20 evolved for 500 generations;
/// [`GaConfig::paper`] reproduces it. The default configuration trades a
/// little search quality for wall-clock (the fitness landscape here
/// plateaus long before 500 generations; `stagnation_limit` stops early).
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub pop_size: usize,
    /// Maximum generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Probability a breeding pair undergoes crossover (else clones).
    pub crossover_prob: f64,
    /// Recombination operator.
    pub crossover_kind: CrossoverKind,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed (the whole run is a pure function of this).
    pub seed: u64,
    /// Stop after this many generations without best-fitness improvement
    /// (`None` = never stop early).
    pub stagnation_limit: Option<usize>,
    /// Worker threads for fitness evaluation (1 = sequential).
    pub threads: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            pop_size: 20,
            generations: 100,
            tournament_size: 2,
            crossover_prob: 0.9,
            crossover_kind: CrossoverKind::Mixed,
            mutation_prob: 0.25,
            elitism: 2,
            seed: 0x6a11,
            stagnation_limit: Some(30),
            threads: std::thread::available_parallelism().map_or(1, usize::from),
        }
    }
}

impl GaConfig {
    /// The paper's §3.1 configuration: population 20, 500 generations, no
    /// early stopping.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            pop_size: 20,
            generations: 500,
            stagnation_limit: None,
            ..Self::default()
        }
    }
}

/// One generation's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Generation {
    /// Generation index (0-based).
    pub index: usize,
    /// Best fitness seen up to and including this generation.
    pub best_fitness: f64,
    /// Best genome so far.
    pub best_genome: Genome,
    /// Mean fitness of this generation's population.
    pub mean_fitness: f64,
}

/// The outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaResult {
    /// Best genome found.
    pub best_genome: Genome,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-generation history (useful for convergence plots).
    pub history: Vec<Generation>,
    /// Distinct genomes actually evaluated (cache misses).
    pub evaluations: usize,
    /// Evaluations answered from the memo table.
    pub cache_hits: usize,
}

/// The engine. Construct with ranges and a config, then [`run`] with a
/// fitness function (lower is better).
///
/// [`run`]: GeneticAlgorithm::run
#[derive(Debug)]
pub struct GeneticAlgorithm {
    ranges: Ranges,
    config: GaConfig,
}

impl GeneticAlgorithm {
    /// Creates an engine.
    ///
    /// # Panics
    /// Panics on degenerate configs (zero population, zero elitism pool
    /// larger than the population, zero threads).
    #[must_use]
    pub fn new(ranges: Ranges, config: GaConfig) -> Self {
        assert!(config.pop_size >= 2, "population must be at least 2");
        assert!(
            config.elitism < config.pop_size,
            "elitism must leave room to breed"
        );
        assert!(config.threads >= 1, "need at least one evaluation thread");
        assert!(
            config.tournament_size >= 1,
            "tournament size must be positive"
        );
        Self { ranges, config }
    }

    /// Runs the GA, minimizing `fitness`.
    ///
    /// `fitness` must be deterministic: results are memoized by genome.
    /// Non-finite fitness values are treated as `+inf` (worst).
    pub fn run<F>(&self, fitness: F) -> GaResult
    where
        F: Fn(&[i64]) -> f64 + Sync,
    {
        let cfg = &self.config;
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let cache: Mutex<HashMap<Genome, f64>> = Mutex::new(HashMap::new());
        let mut evaluations = 0usize;
        let mut cache_hits = 0usize;

        let mut population: Vec<Genome> = (0..cfg.pop_size)
            .map(|_| self.ranges.random(&mut rng))
            .collect();

        let mut history: Vec<Generation> = Vec::with_capacity(cfg.generations);
        let mut best_genome = population[0].clone();
        let mut best_fitness = f64::INFINITY;
        let mut stagnant = 0usize;

        for gen_index in 0..cfg.generations {
            let scores = self.evaluate(
                &population,
                &fitness,
                &cache,
                &mut evaluations,
                &mut cache_hits,
            );

            // Track the best.
            let mut improved = false;
            for (genome, &score) in population.iter().zip(&scores) {
                if score < best_fitness {
                    best_fitness = score;
                    best_genome = genome.clone();
                    improved = true;
                }
            }
            let finite_mean = {
                let finite: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
                if finite.is_empty() {
                    f64::INFINITY
                } else {
                    finite.iter().sum::<f64>() / finite.len() as f64
                }
            };
            history.push(Generation {
                index: gen_index,
                best_fitness,
                best_genome: best_genome.clone(),
                mean_fitness: finite_mean,
            });

            stagnant = if improved { 0 } else { stagnant + 1 };
            if let Some(limit) = cfg.stagnation_limit {
                if stagnant >= limit {
                    break;
                }
            }
            if gen_index + 1 == cfg.generations {
                break;
            }

            // ---- breed the next generation ----
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));

            let mut next: Vec<Genome> = Vec::with_capacity(cfg.pop_size);
            for &i in order.iter().take(cfg.elitism) {
                next.push(population[i].clone());
            }
            while next.len() < cfg.pop_size {
                let pa = tournament(&scores, cfg.tournament_size, &mut rng);
                let pb = tournament(&scores, cfg.tournament_size, &mut rng);
                let (mut c, mut d) = if rng.chance(cfg.crossover_prob) {
                    let (x, y) = (&population[pa], &population[pb]);
                    match cfg.crossover_kind {
                        CrossoverKind::OnePoint => one_point_crossover(x, y, &mut rng),
                        CrossoverKind::TwoPoint => two_point_crossover(x, y, &mut rng),
                        CrossoverKind::Uniform => uniform_crossover(x, y, &mut rng),
                        CrossoverKind::Mixed => {
                            if rng.chance(0.5) {
                                uniform_crossover(x, y, &mut rng)
                            } else {
                                one_point_crossover(x, y, &mut rng)
                            }
                        }
                    }
                } else {
                    (population[pa].clone(), population[pb].clone())
                };
                mutate(&mut c, &self.ranges, cfg.mutation_prob, &mut rng);
                mutate(&mut d, &self.ranges, cfg.mutation_prob, &mut rng);
                next.push(c);
                if next.len() < cfg.pop_size {
                    next.push(d);
                }
            }
            population = next;
        }

        GaResult {
            best_genome,
            best_fitness,
            history,
            evaluations,
            cache_hits,
        }
    }

    /// Evaluates a population through the memo table, farming cache misses
    /// out to worker threads.
    fn evaluate<F>(
        &self,
        population: &[Genome],
        fitness: &F,
        cache: &Mutex<HashMap<Genome, f64>>,
        evaluations: &mut usize,
        cache_hits: &mut usize,
    ) -> Vec<f64>
    where
        F: Fn(&[i64]) -> f64 + Sync,
    {
        // Split into hits and (deduplicated) misses.
        let mut misses: Vec<&Genome> = Vec::new();
        {
            let cache = cache.lock();
            let mut seen: HashMap<&Genome, ()> = HashMap::new();
            for g in population {
                if cache.contains_key(g) {
                    *cache_hits += 1;
                } else if seen.insert(g, ()).is_none() {
                    misses.push(g);
                }
            }
        }
        *evaluations += misses.len();

        let sanitize = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
        if self.config.threads <= 1 || misses.len() <= 1 {
            let mut cache = cache.lock();
            for g in misses {
                let v = sanitize(fitness(g));
                cache.insert(g.clone(), v);
            }
        } else {
            let n_threads = self.config.threads.min(misses.len());
            let chunk = misses.len().div_ceil(n_threads);
            std::thread::scope(|scope| {
                for part in misses.chunks(chunk) {
                    scope.spawn(move || {
                        for g in part {
                            let v = sanitize(fitness(g));
                            cache.lock().insert((*g).clone(), v);
                        }
                    });
                }
            });
        }

        let cache = cache.lock();
        population.iter().map(|g| cache[g]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_ranges() -> Ranges {
        Ranges::new(vec![(-100, 100); 4])
    }

    /// Distance-squared to a hidden optimum: easy landscape.
    fn sphere(target: &[i64]) -> impl Fn(&[i64]) -> f64 + Sync + '_ {
        move |g: &[i64]| {
            g.iter()
                .zip(target)
                .map(|(a, b)| ((a - b) * (a - b)) as f64)
                .sum()
        }
    }

    #[test]
    fn finds_the_sphere_optimum() {
        let target = vec![17, -42, 3, 88];
        let ga = GeneticAlgorithm::new(
            sphere_ranges(),
            GaConfig {
                pop_size: 24,
                generations: 150,
                stagnation_limit: None,
                threads: 1,
                seed: 11,
                ..GaConfig::default()
            },
        );
        let result = ga.run(sphere(&target));
        assert!(
            result.best_fitness < 30.0,
            "fitness {} genome {:?}",
            result.best_fitness,
            result.best_genome
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let target = vec![5, 5, 5, 5];
        let mk = || {
            GeneticAlgorithm::new(
                sphere_ranges(),
                GaConfig {
                    generations: 30,
                    threads: 1,
                    seed: 99,
                    ..GaConfig::default()
                },
            )
            .run(sphere(&target))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.best_genome, b.best_genome);
        assert_eq!(a.history.len(), b.history.len());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let target = vec![5, -5, 25, 0];
        let run = |threads| {
            GeneticAlgorithm::new(
                sphere_ranges(),
                GaConfig {
                    generations: 25,
                    threads,
                    seed: 7,
                    ..GaConfig::default()
                },
            )
            .run(sphere(&target))
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.best_genome, par.best_genome);
        assert_eq!(seq.best_fitness, par.best_fitness);
    }

    #[test]
    fn best_fitness_is_monotone_in_history() {
        let target = vec![1, 2, 3, 4];
        let r = GeneticAlgorithm::new(
            sphere_ranges(),
            GaConfig {
                generations: 40,
                threads: 1,
                seed: 3,
                ..GaConfig::default()
            },
        )
        .run(sphere(&target));
        for w in r.history.windows(2) {
            assert!(w[1].best_fitness <= w[0].best_fitness);
        }
    }

    #[test]
    fn memoization_saves_evaluations() {
        let target = vec![0, 0, 0, 0];
        let r = GeneticAlgorithm::new(
            sphere_ranges(),
            GaConfig {
                pop_size: 20,
                generations: 60,
                threads: 1,
                seed: 21,
                stagnation_limit: None,
                ..GaConfig::default()
            },
        )
        .run(sphere(&target));
        assert!(r.cache_hits > 0, "expected some repeated genomes");
        // Within-generation duplicates are deduplicated before evaluation,
        // so distinct evaluations never exceed the genomes proposed.
        assert!(r.evaluations < 20 * r.history.len());
    }

    #[test]
    fn stagnation_stops_early() {
        // Constant fitness: never improves after the first generation.
        let r = GeneticAlgorithm::new(
            sphere_ranges(),
            GaConfig {
                generations: 500,
                stagnation_limit: Some(5),
                threads: 1,
                ..GaConfig::default()
            },
        )
        .run(|_| 1.0);
        assert!(r.history.len() <= 7, "ran {} generations", r.history.len());
    }

    #[test]
    fn nonfinite_fitness_is_worst() {
        // NaN for everything except one genome; the GA must still find it.
        let r = GeneticAlgorithm::new(
            Ranges::new(vec![(0, 3); 2]),
            GaConfig {
                pop_size: 8,
                generations: 30,
                threads: 1,
                seed: 5,
                ..GaConfig::default()
            },
        )
        .run(|g| if g == [2, 2] { 0.0 } else { f64::NAN });
        assert_eq!(r.best_genome, vec![2, 2]);
        assert_eq!(r.best_fitness, 0.0);
    }

    #[test]
    #[should_panic(expected = "population must be at least 2")]
    fn tiny_population_rejected() {
        let _ = GeneticAlgorithm::new(
            sphere_ranges(),
            GaConfig {
                pop_size: 1,
                elitism: 0,
                ..GaConfig::default()
            },
        );
    }
}
