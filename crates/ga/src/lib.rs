//! A genetic-algorithm engine for integer-vector genomes — the stand-in
//! for the ECJ library ([Luke, 2004]) the paper uses to tune the Jikes RVM
//! inlining heuristic.
//!
//! Scope mirrors what the paper needs from ECJ:
//!
//! * fixed-length integer genomes with per-gene inclusive ranges
//!   ([`genome`]);
//! * tournament selection, one-point and uniform crossover,
//!   range-respecting mutation (uniform reset and geometric step), elitism
//!   ([`ops`]);
//! * a generational [`engine`] with **fitness memoization** (converged
//!   populations re-propose the same genomes constantly; the simulator
//!   evaluation is the expensive part) and optional **parallel
//!   evaluation** across worker threads, plus per-generation history for
//!   convergence analysis and early stopping on stagnation;
//! * a pluggable [`eval`] backend seam: [`GaState::step_with`] evaluates a
//!   generation through any [`Evaluator`] — the built-in
//!   [`LocalEvaluator`] thread pool or a remote worker fleet (see the
//!   `served` dispatch layer) — with bit-identical results either way.
//!
//! Fitness is *minimized* (the paper minimizes time metrics). Everything
//! is deterministic given the seed: parallel evaluation never consumes
//! randomness, only the sequential breeding loop does.
//!
//! [Luke, 2004]: https://cs.gmu.edu/~eclab/projects/ecj/

pub mod engine;
pub mod eval;
pub mod genome;
pub mod ops;

pub use engine::{
    CrossoverKind, GaConfig, GaResult, GaSnapshot, GaState, GenTiming, Generation, GeneticAlgorithm,
};
pub use eval::{Evaluator, LocalEvaluator, PendingScores, PipelinedEvaluator, ReadyScores};
pub use genome::{GeneKind, Genome, Ranges};
