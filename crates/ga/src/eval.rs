//! Pluggable fitness-evaluation backends.
//!
//! [`GaState::step`](crate::GaState::step) historically owned its own
//! scoped-thread fan-out; that code now lives in [`LocalEvaluator`], and
//! the engine only asks *some* [`Evaluator`] for the fitness of the
//! generation's deduplicated cache misses. This is the seam the `tuned`
//! daemon uses to swap local threads for a fleet of remote `evald`
//! workers: the engine cannot tell the difference, and because fitness is
//! a pure function of the genome and results merge into the memo table
//! keyed by genome, every backend yields bit-identical runs.

use crate::genome::Genome;

/// A batch fitness-evaluation backend.
///
/// The engine calls [`evaluate`](Evaluator::evaluate) once per generation
/// with the deduplicated, not-yet-memoized genomes. Implementations must
/// be **pure**: the same genome always maps to the same `f64` (bit for
/// bit), regardless of batch composition, ordering, thread, process, or
/// host. The engine sanitizes non-finite scores to `+inf` afterwards, so
/// backends may return `NaN`/`inf` for broken evaluations.
pub trait Evaluator: Sync {
    /// Computes fitness for each genome; `result[i]` scores `genomes[i]`.
    fn evaluate(&self, genomes: &[Genome]) -> Vec<f64>;
}

/// A batch of fitness scores that may still be in flight.
///
/// Returned by [`PipelinedEvaluator::begin`]; [`wait`](PendingScores::wait)
/// blocks until every score is known and consumes the handle — a batch
/// is begun once and collected once.
pub trait PendingScores {
    /// Blocks until the whole batch is scored; `result[i]` scores the
    /// `genomes[i]` passed to `begin`.
    fn wait(self: Box<Self>) -> Vec<f64>;
}

/// Scores already in hand — the trivial [`PendingScores`], used by
/// backends whose evaluation is synchronous.
pub struct ReadyScores(pub Vec<f64>);

impl PendingScores for ReadyScores {
    fn wait(self: Box<Self>) -> Vec<f64> {
        self.0
    }
}

/// An [`Evaluator`] that can split evaluation into a non-blocking
/// `begin` and a blocking `wait`, so a driver can overlap useful work
/// (proposing the next generation, persisting a checkpoint) with
/// in-flight evaluations. Purity rules are identical to
/// [`Evaluator::evaluate`]; `begin` + `wait` must return the same bits
/// `evaluate` would.
pub trait PipelinedEvaluator: Evaluator {
    /// Starts evaluating `genomes` and returns a handle to collect the
    /// scores. Backends without real asynchrony may evaluate eagerly
    /// and hand back [`ReadyScores`].
    fn begin<'s>(&'s self, genomes: &[Genome]) -> Box<dyn PendingScores + 's>;
}

/// The in-process backend: a fitness function fanned out over scoped
/// worker threads (the engine's original evaluation path, verbatim).
///
/// Worker threads never consume randomness, so any `threads` value
/// produces bit-identical results.
pub struct LocalEvaluator<F> {
    fitness: F,
    threads: usize,
}

impl<F> LocalEvaluator<F>
where
    F: Fn(&[i64]) -> f64 + Sync,
{
    /// Wraps a fitness function; `threads` ≤ 1 evaluates sequentially.
    #[must_use]
    pub fn new(fitness: F, threads: usize) -> Self {
        Self {
            fitness,
            threads: threads.max(1),
        }
    }
}

impl<F> Evaluator for LocalEvaluator<F>
where
    F: Fn(&[i64]) -> f64 + Sync,
{
    fn evaluate(&self, genomes: &[Genome]) -> Vec<f64> {
        if self.threads <= 1 || genomes.len() <= 1 {
            return genomes.iter().map(|g| (self.fitness)(g)).collect();
        }
        let n_threads = self.threads.min(genomes.len());
        let chunk = genomes.len().div_ceil(n_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = genomes
                .chunks(chunk)
                .map(|part| {
                    scope
                        .spawn(move || part.iter().map(|g| (self.fitness)(g)).collect::<Vec<f64>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("evaluation worker panicked"))
                .collect()
        })
    }
}

impl<F> PipelinedEvaluator for LocalEvaluator<F>
where
    F: Fn(&[i64]) -> f64 + Sync,
{
    fn begin<'s>(&'s self, genomes: &[Genome]) -> Box<dyn PendingScores + 's> {
        Box::new(ReadyScores(self.evaluate(genomes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genomes(n: usize) -> Vec<Genome> {
        (0..n).map(|i| vec![i as i64, (i * i) as i64]).collect()
    }

    fn f(g: &[i64]) -> f64 {
        g.iter().map(|&x| x as f64).sum()
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let gs = genomes(17);
        let seq = LocalEvaluator::new(f, 1).evaluate(&gs);
        let par = LocalEvaluator::new(f, 4).evaluate(&gs);
        assert_eq!(seq.len(), gs.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn more_threads_than_genomes_is_fine() {
        let gs = genomes(3);
        let scores = LocalEvaluator::new(f, 64).evaluate(&gs);
        assert_eq!(scores, vec![0.0, 2.0, 6.0]);
    }

    #[test]
    fn empty_batch_returns_empty() {
        assert!(LocalEvaluator::new(f, 4).evaluate(&[]).is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let gs = genomes(2);
        assert_eq!(LocalEvaluator::new(f, 0).evaluate(&gs).len(), 2);
    }

    #[test]
    fn begin_then_wait_matches_evaluate_bit_for_bit() {
        let gs = genomes(9);
        let eval = LocalEvaluator::new(f, 3);
        let direct = eval.evaluate(&gs);
        let pipelined = eval.begin(&gs).wait();
        assert_eq!(direct.len(), pipelined.len());
        for (a, b) in direct.iter().zip(&pipelined) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
