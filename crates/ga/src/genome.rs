//! Genomes and gene ranges.

use simrng::Rng;

/// A fixed-length integer genome.
pub type Genome = Vec<i64>;

/// What a gene's integer value *means*, which dictates which mutation
/// moves are sound:
///
/// * [`GeneKind::Int`] — an ordered magnitude (a threshold, a size): the
///   geometric-step mutation applies, neighbouring values are similar.
/// * [`GeneKind::Bool`] — a 0/1 toggle: the only sensible move is a
///   re-draw.
/// * [`GeneKind::Cat`] — an unordered categorical choice (an enum tag):
///   value 2 is no "closer" to 3 than to 0, so mutation must re-sample
///   uniformly and never interpolate or step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GeneKind {
    /// Ordered integer magnitude (the default; the inlining thresholds).
    #[default]
    Int,
    /// Boolean toggle encoded as 0/1.
    Bool,
    /// Unordered categorical choice over `lo..=hi`.
    Cat,
}

impl GeneKind {
    /// One-character code used in compact serializations.
    #[must_use]
    pub fn code(self) -> char {
        match self {
            GeneKind::Int => 'i',
            GeneKind::Bool => 'b',
            GeneKind::Cat => 'c',
        }
    }

    /// Inverse of [`GeneKind::code`].
    #[must_use]
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'i' => Some(GeneKind::Int),
            'b' => Some(GeneKind::Bool),
            'c' => Some(GeneKind::Cat),
            _ => None,
        }
    }
}

/// Inclusive per-gene bounds, plus each gene's [`GeneKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ranges {
    bounds: Vec<(i64, i64)>,
    kinds: Vec<GeneKind>,
}

impl Ranges {
    /// Creates all-[`GeneKind::Int`] ranges from inclusive `(lo, hi)`
    /// pairs.
    ///
    /// # Panics
    /// Panics if any `lo > hi` or the list is empty.
    #[must_use]
    pub fn new(bounds: Vec<(i64, i64)>) -> Self {
        let kinds = vec![GeneKind::Int; bounds.len()];
        Self::with_kinds(bounds, kinds)
    }

    /// Creates ranges with explicit per-gene kinds.
    ///
    /// # Panics
    /// Panics if any `lo > hi`, the list is empty, or `kinds` has a
    /// different length than `bounds`.
    #[must_use]
    pub fn with_kinds(bounds: Vec<(i64, i64)>, kinds: Vec<GeneKind>) -> Self {
        assert!(!bounds.is_empty(), "ranges must have at least one gene");
        assert_eq!(
            bounds.len(),
            kinds.len(),
            "kinds must match bounds in length"
        );
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            assert!(lo <= hi, "gene {i}: lo {lo} > hi {hi}");
        }
        Self { bounds, kinds }
    }

    /// Number of genes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True when there are no genes (never, for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// The inclusive bounds of gene `i`.
    #[must_use]
    pub fn gene(&self, i: usize) -> (i64, i64) {
        self.bounds[i]
    }

    /// The kind of gene `i`.
    #[must_use]
    pub fn kind(&self, i: usize) -> GeneKind {
        self.kinds[i]
    }

    /// All gene kinds, in gene order.
    #[must_use]
    pub fn kinds(&self) -> &[GeneKind] {
        &self.kinds
    }

    /// Iterates over all bounds.
    pub fn iter(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.bounds.iter().copied()
    }

    /// Draws a uniformly random genome.
    #[must_use]
    pub fn random(&self, rng: &mut Rng) -> Genome {
        self.bounds
            .iter()
            .map(|&(lo, hi)| rng.range_i64(lo, hi))
            .collect()
    }

    /// Draws a uniformly random value for one gene.
    #[must_use]
    pub fn random_gene(&self, i: usize, rng: &mut Rng) -> i64 {
        let (lo, hi) = self.bounds[i];
        rng.range_i64(lo, hi)
    }

    /// Clamps every gene of a genome into range, in place.
    pub fn clamp(&self, genome: &mut Genome) {
        for (g, &(lo, hi)) in genome.iter_mut().zip(&self.bounds) {
            *g = (*g).clamp(lo, hi);
        }
    }

    /// Whether the genome has the right length and every gene is in range.
    #[must_use]
    pub fn contains(&self, genome: &[i64]) -> bool {
        genome.len() == self.bounds.len()
            && genome
                .iter()
                .zip(&self.bounds)
                .all(|(g, &(lo, hi))| (lo..=hi).contains(g))
    }

    /// Number of distinct genomes.
    #[must_use]
    pub fn cardinality(&self) -> u128 {
        self.bounds
            .iter()
            .map(|&(lo, hi)| (hi as i128 - lo as i128 + 1) as u128)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges() -> Ranges {
        Ranges::new(vec![(1, 50), (1, 30), (1, 15), (1, 4000), (1, 400)])
    }

    #[test]
    fn random_genomes_are_in_range() {
        let r = ranges();
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..200 {
            let g = r.random(&mut rng);
            assert!(r.contains(&g), "{g:?}");
        }
    }

    #[test]
    fn clamp_brings_genes_into_range() {
        let r = ranges();
        let mut g = vec![0, 100, -5, 9999, 401];
        r.clamp(&mut g);
        assert_eq!(g, vec![1, 30, 1, 4000, 400]);
        assert!(r.contains(&g));
    }

    #[test]
    fn contains_rejects_wrong_length() {
        let r = ranges();
        assert!(!r.contains(&[1, 2, 3]));
    }

    #[test]
    fn cardinality_multiplies() {
        let r = Ranges::new(vec![(1, 2), (0, 9)]);
        assert_eq!(r.cardinality(), 20);
    }

    #[test]
    fn degenerate_single_value_range_works() {
        let r = Ranges::new(vec![(7, 7)]);
        let mut rng = Rng::seed_from_u64(2);
        assert_eq!(r.random(&mut rng), vec![7]);
    }

    #[test]
    #[should_panic(expected = "lo 5 > hi 2")]
    fn inverted_range_panics() {
        let _ = Ranges::new(vec![(5, 2)]);
    }

    #[test]
    fn new_defaults_every_gene_to_int() {
        let r = ranges();
        assert!(r.kinds().iter().all(|&k| k == GeneKind::Int));
        assert_eq!(r.kinds().len(), r.len());
    }

    #[test]
    fn with_kinds_carries_kinds_through() {
        let r = Ranges::with_kinds(
            vec![(0, 3), (0, 1), (1, 50)],
            vec![GeneKind::Cat, GeneKind::Bool, GeneKind::Int],
        );
        assert_eq!(r.kind(0), GeneKind::Cat);
        assert_eq!(r.kind(1), GeneKind::Bool);
        assert_eq!(r.kind(2), GeneKind::Int);
    }

    #[test]
    #[should_panic(expected = "kinds must match bounds")]
    fn mismatched_kinds_length_panics() {
        let _ = Ranges::with_kinds(vec![(0, 1), (0, 1)], vec![GeneKind::Bool]);
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in [GeneKind::Int, GeneKind::Bool, GeneKind::Cat] {
            assert_eq!(GeneKind::from_code(k.code()), Some(k));
        }
        assert_eq!(GeneKind::from_code('x'), None);
    }
}
