//! Genomes and gene ranges.

use simrng::Rng;

/// A fixed-length integer genome.
pub type Genome = Vec<i64>;

/// Inclusive per-gene bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ranges {
    bounds: Vec<(i64, i64)>,
}

impl Ranges {
    /// Creates ranges from inclusive `(lo, hi)` pairs.
    ///
    /// # Panics
    /// Panics if any `lo > hi` or the list is empty.
    #[must_use]
    pub fn new(bounds: Vec<(i64, i64)>) -> Self {
        assert!(!bounds.is_empty(), "ranges must have at least one gene");
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            assert!(lo <= hi, "gene {i}: lo {lo} > hi {hi}");
        }
        Self { bounds }
    }

    /// Number of genes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True when there are no genes (never, for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// The inclusive bounds of gene `i`.
    #[must_use]
    pub fn gene(&self, i: usize) -> (i64, i64) {
        self.bounds[i]
    }

    /// Iterates over all bounds.
    pub fn iter(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.bounds.iter().copied()
    }

    /// Draws a uniformly random genome.
    #[must_use]
    pub fn random(&self, rng: &mut Rng) -> Genome {
        self.bounds
            .iter()
            .map(|&(lo, hi)| rng.range_i64(lo, hi))
            .collect()
    }

    /// Draws a uniformly random value for one gene.
    #[must_use]
    pub fn random_gene(&self, i: usize, rng: &mut Rng) -> i64 {
        let (lo, hi) = self.bounds[i];
        rng.range_i64(lo, hi)
    }

    /// Clamps every gene of a genome into range, in place.
    pub fn clamp(&self, genome: &mut Genome) {
        for (g, &(lo, hi)) in genome.iter_mut().zip(&self.bounds) {
            *g = (*g).clamp(lo, hi);
        }
    }

    /// Whether the genome has the right length and every gene is in range.
    #[must_use]
    pub fn contains(&self, genome: &[i64]) -> bool {
        genome.len() == self.bounds.len()
            && genome
                .iter()
                .zip(&self.bounds)
                .all(|(g, &(lo, hi))| (lo..=hi).contains(g))
    }

    /// Number of distinct genomes.
    #[must_use]
    pub fn cardinality(&self) -> u128 {
        self.bounds
            .iter()
            .map(|&(lo, hi)| (hi as i128 - lo as i128 + 1) as u128)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges() -> Ranges {
        Ranges::new(vec![(1, 50), (1, 30), (1, 15), (1, 4000), (1, 400)])
    }

    #[test]
    fn random_genomes_are_in_range() {
        let r = ranges();
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..200 {
            let g = r.random(&mut rng);
            assert!(r.contains(&g), "{g:?}");
        }
    }

    #[test]
    fn clamp_brings_genes_into_range() {
        let r = ranges();
        let mut g = vec![0, 100, -5, 9999, 401];
        r.clamp(&mut g);
        assert_eq!(g, vec![1, 30, 1, 4000, 400]);
        assert!(r.contains(&g));
    }

    #[test]
    fn contains_rejects_wrong_length() {
        let r = ranges();
        assert!(!r.contains(&[1, 2, 3]));
    }

    #[test]
    fn cardinality_multiplies() {
        let r = Ranges::new(vec![(1, 2), (0, 9)]);
        assert_eq!(r.cardinality(), 20);
    }

    #[test]
    fn degenerate_single_value_range_works() {
        let r = Ranges::new(vec![(7, 7)]);
        let mut rng = Rng::seed_from_u64(2);
        assert_eq!(r.random(&mut rng), vec![7]);
    }

    #[test]
    #[should_panic(expected = "lo 5 > hi 2")]
    fn inverted_range_panics() {
        let _ = Ranges::new(vec![(5, 2)]);
    }
}
