//! Genetic operators: selection, crossover, mutation.

use simrng::Rng;

use crate::genome::{GeneKind, Genome, Ranges};

/// Tournament selection: picks `size` individuals uniformly and returns
/// the index of the fittest (lowest fitness). `size = 1` degenerates to
/// uniform random selection.
///
/// # Panics
/// Panics if `fitness` is empty or `size == 0`.
#[must_use]
pub fn tournament(fitness: &[f64], size: usize, rng: &mut Rng) -> usize {
    assert!(!fitness.is_empty() && size > 0, "bad tournament inputs");
    let mut best = rng.below(fitness.len() as u64) as usize;
    for _ in 1..size {
        let cand = rng.below(fitness.len() as u64) as usize;
        if fitness[cand] < fitness[best] {
            best = cand;
        }
    }
    best
}

/// One-point crossover: children swap tails after a random cut point in
/// `1..len` (so both parents always contribute).
#[must_use]
pub fn one_point_crossover(a: &Genome, b: &Genome, rng: &mut Rng) -> (Genome, Genome) {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return (a.clone(), b.clone());
    }
    let cut = 1 + rng.below(a.len() as u64 - 1) as usize;
    let mut c = a.clone();
    let mut d = b.clone();
    c[cut..].copy_from_slice(&b[cut..]);
    d[cut..].copy_from_slice(&a[cut..]);
    (c, d)
}

/// Two-point crossover: children swap the middle segment between two
/// random cut points (ECJ's default for fixed-length vectors).
#[must_use]
pub fn two_point_crossover(a: &Genome, b: &Genome, rng: &mut Rng) -> (Genome, Genome) {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return (a.clone(), b.clone());
    }
    let x = rng.below(a.len() as u64) as usize;
    let y = rng.below(a.len() as u64) as usize;
    let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
    let mut c = a.clone();
    let mut d = b.clone();
    c[lo..hi].copy_from_slice(&b[lo..hi]);
    d[lo..hi].copy_from_slice(&a[lo..hi]);
    (c, d)
}

/// Uniform crossover: each gene independently comes from either parent.
#[must_use]
pub fn uniform_crossover(a: &Genome, b: &Genome, rng: &mut Rng) -> (Genome, Genome) {
    debug_assert_eq!(a.len(), b.len());
    let mut c = a.clone();
    let mut d = b.clone();
    for i in 0..a.len() {
        if rng.chance(0.5) {
            c[i] = b[i];
            d[i] = a[i];
        }
    }
    (c, d)
}

/// Mutates each gene independently with probability `per_gene_prob`.
///
/// For [`GeneKind::Int`] genes, half of the mutations are *resets*
/// (uniform redraw over the gene's range — global exploration), half are
/// *geometric steps* (multiply or nudge the current value — local
/// refinement, important for wide ranges like `CALLER_MAX_SIZE`'s 1..4000
/// where uniform resets alone rarely sample small values).
///
/// [`GeneKind::Bool`] and [`GeneKind::Cat`] genes have no magnitude
/// order, so stepping would invent structure that is not there: they are
/// always re-drawn uniformly, never interpolated.
pub fn mutate(genome: &mut Genome, ranges: &Ranges, per_gene_prob: f64, rng: &mut Rng) {
    for (i, gene) in genome.iter_mut().enumerate() {
        if !rng.chance(per_gene_prob) {
            continue;
        }
        if ranges.kind(i) != GeneKind::Int {
            *gene = ranges.random_gene(i, rng);
            continue;
        }
        let (lo, hi) = ranges.gene(i);
        if rng.chance(0.5) {
            *gene = ranges.random_gene(i, rng);
        } else {
            // Geometric step: scale by a factor in [0.5, 2.0) or, for tiny
            // values where scaling is too coarse, step by ±1..3.
            let v = *gene;
            let stepped = if v.abs() >= 4 {
                let factor = rng.f64_range(0.5, 2.0);
                (v as f64 * factor).round() as i64
            } else {
                v + rng.range_i64(-3, 3)
            };
            *gene = stepped.clamp(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tournament_prefers_lower_fitness() {
        let fitness = vec![5.0, 1.0, 9.0, 3.0];
        let mut rng = Rng::seed_from_u64(3);
        // With a tournament as large as the population, the best always
        // has a chance to be picked; over many draws, index 1 must
        // dominate.
        let mut wins = [0usize; 4];
        for _ in 0..400 {
            wins[tournament(&fitness, 3, &mut rng)] += 1;
        }
        assert!(
            wins[1] > wins[0] && wins[1] > wins[2] && wins[1] > wins[3],
            "{wins:?}"
        );
        assert_eq!(wins[2], *wins.iter().min().unwrap(), "worst wins least");
    }

    #[test]
    fn tournament_size_one_is_uniform() {
        let fitness = vec![5.0, 1.0];
        let mut rng = Rng::seed_from_u64(4);
        let picks: Vec<usize> = (0..200)
            .map(|_| tournament(&fitness, 1, &mut rng))
            .collect();
        let ones = picks.iter().filter(|&&p| p == 1).count();
        assert!((60..140).contains(&ones), "{ones}");
    }

    #[test]
    fn one_point_preserves_genes() {
        let a = vec![1, 2, 3, 4, 5];
        let b = vec![10, 20, 30, 40, 50];
        let mut rng = Rng::seed_from_u64(5);
        let (c, d) = one_point_crossover(&a, &b, &mut rng);
        for i in 0..5 {
            assert!(c[i] == a[i] || c[i] == b[i]);
            // The two children are complementary.
            assert_eq!(c[i] == a[i], d[i] == b[i]);
        }
        // A cut in 1..5 means c starts with a's first gene.
        assert_eq!(c[0], a[0]);
        assert_eq!(d[0], b[0]);
    }

    #[test]
    fn uniform_children_are_complementary() {
        let a = vec![1, 2, 3, 4];
        let b = vec![9, 8, 7, 6];
        let mut rng = Rng::seed_from_u64(6);
        let (c, d) = uniform_crossover(&a, &b, &mut rng);
        for i in 0..4 {
            assert_eq!(c[i] + d[i], a[i] + b[i], "complementary at {i}");
        }
    }

    #[test]
    fn mutation_respects_ranges() {
        let ranges = Ranges::new(vec![(1, 50), (1, 30), (1, 15), (1, 4000), (1, 400)]);
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..200 {
            let mut g = ranges.random(&mut rng);
            mutate(&mut g, &ranges, 1.0, &mut rng);
            assert!(ranges.contains(&g), "{g:?}");
        }
    }

    #[test]
    fn zero_probability_mutation_is_identity() {
        let ranges = Ranges::new(vec![(1, 100); 4]);
        let mut rng = Rng::seed_from_u64(8);
        let g0 = ranges.random(&mut rng);
        let mut g = g0.clone();
        mutate(&mut g, &ranges, 0.0, &mut rng);
        assert_eq!(g, g0);
    }

    #[test]
    fn mutation_eventually_changes_every_gene() {
        let ranges = Ranges::new(vec![(1, 100); 5]);
        let mut rng = Rng::seed_from_u64(9);
        let g0 = ranges.random(&mut rng);
        let mut changed = [false; 5];
        for _ in 0..300 {
            let mut g = g0.clone();
            mutate(&mut g, &ranges, 1.0, &mut rng);
            for i in 0..5 {
                changed[i] |= g[i] != g0[i];
            }
        }
        assert!(changed.iter().all(|&c| c), "{changed:?}");
    }

    #[test]
    fn categorical_and_bool_genes_redraw_uniformly() {
        let ranges = Ranges::with_kinds(
            vec![(0, 4), (0, 1), (1, 4000)],
            vec![GeneKind::Cat, GeneKind::Bool, GeneKind::Int],
        );
        let mut rng = Rng::seed_from_u64(12);
        let mut seen_cat = [false; 5];
        for _ in 0..400 {
            let mut g = vec![2, 0, 2000];
            mutate(&mut g, &ranges, 1.0, &mut rng);
            assert!(ranges.contains(&g), "{g:?}");
            seen_cat[g[0] as usize] = true;
        }
        // A uniform redraw reaches every category, including ones far
        // from the current value — a stepping mutation would not.
        assert!(seen_cat.iter().all(|&s| s), "{seen_cat:?}");
    }

    #[test]
    fn int_gene_mutation_is_rng_identical_with_and_without_kinds() {
        // The kind-aware path must not perturb the RNG stream for all-Int
        // ranges: this is what keeps inlining runs bit-identical across
        // the problem-generic refactor.
        let bounds = vec![(1, 50), (1, 30), (1, 15), (1, 4000), (1, 400)];
        let plain = Ranges::new(bounds.clone());
        let kinded = Ranges::with_kinds(bounds, vec![GeneKind::Int; 5]);
        let mut rng_a = Rng::seed_from_u64(13);
        let mut rng_b = Rng::seed_from_u64(13);
        for _ in 0..100 {
            let mut a = plain.random(&mut rng_a);
            let mut b = kinded.random(&mut rng_b);
            assert_eq!(a, b);
            mutate(&mut a, &plain, 0.3, &mut rng_a);
            mutate(&mut b, &kinded, 0.3, &mut rng_b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn two_point_preserves_genes_and_complements() {
        let a = vec![1, 2, 3, 4, 5, 6];
        let b = vec![10, 20, 30, 40, 50, 60];
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..50 {
            let (c, d) = two_point_crossover(&a, &b, &mut rng);
            for i in 0..6 {
                assert!(c[i] == a[i] || c[i] == b[i]);
                assert_eq!(c[i] == a[i], d[i] == b[i], "complementary at {i}");
            }
            // The swapped region is contiguous.
            let flips: Vec<bool> = c.iter().zip(&a).map(|(x, y)| x != y).collect();
            let transitions = flips.windows(2).filter(|w| w[0] != w[1]).count();
            assert!(transitions <= 2, "{flips:?}");
        }
    }

    #[test]
    fn crossover_of_length_one_copies() {
        let a = vec![1];
        let b = vec![2];
        let mut rng = Rng::seed_from_u64(10);
        let (c, d) = one_point_crossover(&a, &b, &mut rng);
        assert_eq!((c, d), (a, b));
    }
}
