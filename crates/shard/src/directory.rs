//! The cluster-wide worker directory: who is alive, and which shard
//! does each worker serve.
//!
//! Entries are seeded from `evald` registration and refreshed by
//! heartbeats; liveness is an age check against a TTL, so a crashed
//! worker silently ages out without any explicit deregistration — the
//! same heartbeat-age convention `WorkerPool::sweep_stale` uses on the
//! dispatch side.
//!
//! Shard leases use rendezvous (highest-random-weight) hashing: a
//! worker's home shard is `argmax_s hash(addr, s)`, a pure function of
//! its own address and the shard count. That makes assignment stable
//! under churn — workers joining or leaving never reshuffle the
//! survivors' leases (the property the proptest suite checks) — while
//! still spreading a fleet roughly evenly across shards.
//!
//! Rebalancing when a shard starves is the *fallback rule*: a shard
//! whose lease set has no live worker borrows the entire live fleet, so
//! every shard can make progress while any worker at all is alive.

use std::collections::HashMap;
use std::sync::Mutex;

/// One worker's standing in the directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerLease {
    pub addr: String,
    /// The shard this worker's lease points at.
    pub shard: usize,
    /// Micros since the last registration or heartbeat.
    pub age_micros: u64,
    pub alive: bool,
}

/// Shared worker directory; clone the `Arc` and call from any thread.
pub struct Directory {
    shards: usize,
    ttl_micros: u64,
    /// addr -> last_seen (micros on the daemon's clock).
    seen: Mutex<HashMap<String, u64>>,
}

impl Directory {
    pub fn new(shards: usize, ttl_micros: u64) -> Self {
        assert!(shards > 0, "a daemon runs at least one shard");
        Directory {
            shards,
            ttl_micros,
            seen: Mutex::new(HashMap::new()),
        }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Records a registration or heartbeat for `addr` at `now`.
    pub fn observe(&self, addr: &str, now_micros: u64) {
        let mut seen = self.seen.lock().unwrap();
        let entry = seen.entry(addr.to_string()).or_insert(now_micros);
        *entry = (*entry).max(now_micros);
    }

    /// Drops a worker outright (dispatch evicted it as dead).
    pub fn forget(&self, addr: &str) {
        self.seen.lock().unwrap().remove(addr);
    }

    /// The shard `addr` serves in a cluster of `shards` — a pure
    /// function of the address, so churn elsewhere never moves it.
    pub fn lease_of(addr: &str, shards: usize) -> usize {
        assert!(shards > 0);
        (0..shards)
            .max_by_key(|&s| rendezvous_weight(addr, s))
            .unwrap_or(0)
    }

    fn is_live(&self, last_seen: u64, now: u64) -> bool {
        now.saturating_sub(last_seen) <= self.ttl_micros
    }

    /// Live worker addresses, sorted.
    pub fn live(&self, now_micros: u64) -> Vec<String> {
        let seen = self.seen.lock().unwrap();
        let mut out: Vec<String> = seen
            .iter()
            .filter(|(_, &at)| self.is_live(at, now_micros))
            .map(|(addr, _)| addr.clone())
            .collect();
        out.sort();
        out
    }

    /// The live workers shard `shard` may dispatch to: its leaseholders
    /// if any are alive, otherwise the whole live fleet (the
    /// starvation-rebalance fallback).
    pub fn workers_for(&self, shard: usize, now_micros: u64) -> Vec<String> {
        let live = self.live(now_micros);
        let leased: Vec<String> = live
            .iter()
            .filter(|addr| Self::lease_of(addr, self.shards) == shard)
            .cloned()
            .collect();
        if leased.is_empty() {
            live
        } else {
            leased
        }
    }

    /// Whether shard `shard` may use worker `addr` right now.
    pub fn allows(&self, shard: usize, addr: &str, now_micros: u64) -> bool {
        self.workers_for(shard, now_micros)
            .iter()
            .any(|a| a == addr)
    }

    /// Every known worker's lease and age (for the `workers` verb and
    /// metrics).
    pub fn snapshot(&self, now_micros: u64) -> Vec<WorkerLease> {
        let seen = self.seen.lock().unwrap();
        let mut out: Vec<WorkerLease> = seen
            .iter()
            .map(|(addr, &at)| WorkerLease {
                addr: addr.clone(),
                shard: Self::lease_of(addr, self.shards),
                age_micros: now_micros.saturating_sub(at),
                alive: self.is_live(at, now_micros),
            })
            .collect();
        out.sort_by(|a, b| a.addr.cmp(&b.addr));
        out
    }
}

/// FNV-1a over the address bytes and the shard index, mixed once more
/// so nearby shard indices decorrelate.
fn rendezvous_weight(addr: &str, shard: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= shard as u64;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    // splitmix64 finalizer
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TTL: u64 = 10_000_000;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("w{i}:7000")).collect()
    }

    #[test]
    fn leases_are_stable_under_churn() {
        let shards = 4;
        let fleet = addrs(20);
        let before: Vec<usize> = fleet
            .iter()
            .map(|a| Directory::lease_of(a, shards))
            .collect();
        // Leases depend only on (addr, shards): recomputing after any
        // imaginary join/leave gives the same answer.
        let after: Vec<usize> = fleet
            .iter()
            .map(|a| Directory::lease_of(a, shards))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn a_reasonable_fleet_covers_every_shard() {
        let shards = 8;
        let mut covered = vec![false; shards];
        for a in addrs(100) {
            covered[Directory::lease_of(&a, shards)] = true;
        }
        assert!(
            covered.iter().all(|&c| c),
            "100 workers must cover 8 shards"
        );
    }

    #[test]
    fn liveness_ages_out_and_heartbeats_refresh() {
        let d = Directory::new(2, TTL);
        d.observe("w0:7000", 0);
        assert_eq!(d.live(TTL), vec!["w0:7000".to_string()]);
        assert!(d.live(TTL + 1).is_empty(), "past TTL the worker is dead");
        d.observe("w0:7000", TTL + 1);
        assert_eq!(d.live(TTL + 1).len(), 1, "a heartbeat revives it");
        // Stale observations never move last_seen backwards.
        d.observe("w0:7000", 5);
        assert_eq!(d.live(TTL + 1).len(), 1);
    }

    #[test]
    fn a_starving_shard_borrows_the_whole_fleet() {
        let shards = 4;
        let d = Directory::new(shards, TTL);
        // Find two workers leased to the same shard so another shard
        // is guaranteed empty-ish; simplest: register exactly one
        // worker, so 3 of 4 shards have no leaseholder.
        d.observe("w0:7000", 0);
        let home = Directory::lease_of("w0:7000", shards);
        for s in 0..shards {
            assert_eq!(
                d.workers_for(s, 0),
                vec!["w0:7000".to_string()],
                "shard {s} must fall back to the only live worker"
            );
        }
        assert!(d.allows(home, "w0:7000", 0));
    }

    #[test]
    fn leased_shards_keep_their_own_workers() {
        let shards = 2;
        let d = Directory::new(shards, TTL);
        for a in addrs(16) {
            d.observe(&a, 0);
        }
        for s in 0..shards {
            let ws = d.workers_for(s, 0);
            assert!(!ws.is_empty());
            for w in &ws {
                assert_eq!(Directory::lease_of(w, shards), s);
            }
        }
    }

    #[test]
    fn snapshot_reports_leases_and_ages() {
        let d = Directory::new(2, TTL);
        d.observe("b:7000", 100);
        d.observe("a:7000", 50);
        let snap = d.snapshot(200);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].addr, "a:7000");
        assert_eq!(snap[0].age_micros, 150);
        assert!(snap[0].alive);
        assert_eq!(snap[1].shard, Directory::lease_of("b:7000", 2));
    }

    #[test]
    fn forget_removes_a_worker() {
        let d = Directory::new(2, TTL);
        d.observe("w0:7000", 0);
        d.forget("w0:7000");
        assert!(d.live(0).is_empty());
    }
}
