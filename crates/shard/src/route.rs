//! The job→shard map.
//!
//! Placement must survive daemon restarts with nothing but the run
//! directory to go on, so it is a pure function of the job id and the
//! shard count: recovery re-routes every job to the shard that already
//! owns its checkpoints. Job ids are assigned sequentially, so plain
//! modulo is also a perfect round-robin spread — no hashing needed.

/// The shard that owns `job_id` in a daemon running `shards` shards.
pub fn shard_of(job_id: u64, shards: usize) -> usize {
    assert!(shards > 0, "a daemon runs at least one shard");
    (job_id % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in 1..9usize {
            for id in 0..100u64 {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards), "placement must be pure");
            }
        }
    }

    #[test]
    fn sequential_ids_spread_evenly() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for id in 0..100u64 {
            counts[shard_of(id, shards)] += 1;
        }
        assert_eq!(counts, vec![25; 4]);
    }
}
