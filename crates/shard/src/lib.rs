//! # shard — the multi-tenant sharded control plane
//!
//! The pieces that turn `tuned` from one global job queue with per-job
//! worker leasing into N independent shards multiplexing thousands of
//! jobs from many tenants over one shared worker fleet:
//!
//! * [`route`] — the stable job→shard map. A job's shard is a pure
//!   function of its id and the shard count, so recovery after a
//!   restart re-derives the same placement from the run directory
//!   alone.
//! * [`drr`] — [`DrrScheduler`], a deficit-round-robin queue per shard.
//!   Each tenant gets its own FIFO and a deficit counter; jobs carry an
//!   eval-budget cost, so a tenant submitting huge jobs cannot crowd
//!   out a tenant submitting small ones. Work-conserving: a dequeue on
//!   a non-empty scheduler always returns a job.
//! * [`quota`] — [`QuotaAccountant`], per-tenant eval budgets. Admission
//!   reserves a job's estimated cost up front and rejects when the
//!   tenant's `used + reserved + estimate` would exceed its quota;
//!   actual evaluations are charged against the reservation as the job
//!   runs. Estimates are upper bounds, so `used` can never exceed the
//!   quota, and all arithmetic saturates — accounting never goes
//!   negative.
//! * [`directory`] — [`Directory`], the cluster-wide worker directory.
//!   Seeded from `evald` registration, liveness from heartbeat ages,
//!   and per-worker shard leases by rendezvous hashing: a worker's
//!   lease depends only on its own address and the shard count, so
//!   worker churn never reshuffles the survivors. A shard whose lease
//!   set is empty borrows the whole live fleet, so no shard starves
//!   while any worker is alive.
//!
//! The crate is deliberately free of I/O and of dependencies on the
//! rest of the workspace: `served` owns the sockets, threads, and
//! persistence and composes these pieces under its own locks.

pub mod directory;
pub mod drr;
pub mod quota;
pub mod route;

pub use directory::Directory;
pub use drr::DrrScheduler;
pub use quota::{QuotaAccountant, TenantUsage};
pub use route::shard_of;

/// The tenant a spec without a `tenant` key belongs to.
pub const DEFAULT_TENANT: &str = "default";

/// Why admission turned a request away. Every kind maps to a structured
/// `busy` frame on the wire so clients can tell "try again later"
/// (queue or connection pressure) from "over budget" (quota).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// The job's shard queue is at capacity; retry later.
    QueueFull,
    /// The tenant's eval budget cannot cover the job; retrying will not
    /// help until running jobs finish under their estimates or the
    /// quota is raised.
    Quota,
    /// The server is at its concurrent-connection cap; retry later.
    Connections,
}

impl RejectKind {
    /// Wire name for the `reason` field of a busy frame.
    pub fn reason(self) -> &'static str {
        match self {
            RejectKind::QueueFull => "queue_full",
            RejectKind::Quota => "quota",
            RejectKind::Connections => "connections",
        }
    }

    /// Whether the condition is transient (retry later) as opposed to a
    /// budget decision.
    pub fn retryable(self) -> bool {
        !matches!(self, RejectKind::Quota)
    }
}

/// A structured admission rejection: the kind plus a human-readable
/// message for the `error` field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    pub kind: RejectKind,
    pub message: String,
}

impl Reject {
    pub fn new(kind: RejectKind, message: impl Into<String>) -> Self {
        Reject {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.kind.reason())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_kinds_have_distinct_reasons() {
        let kinds = [
            RejectKind::QueueFull,
            RejectKind::Quota,
            RejectKind::Connections,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.reason(), b.reason());
            }
        }
        assert!(RejectKind::QueueFull.retryable());
        assert!(RejectKind::Connections.retryable());
        assert!(!RejectKind::Quota.retryable());
    }
}
