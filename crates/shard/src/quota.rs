//! Per-tenant eval-budget accounting.
//!
//! Admission control needs an answer *before* a job runs, but a job's
//! true evaluation count is only known after it finishes (caching,
//! early convergence, and race elimination all spend less than the
//! worst case). The accountant therefore works on reservations:
//!
//! * `admit` reserves the job's *estimated* cost — an upper bound on
//!   its evaluations — and rejects when `used + reserved + estimate`
//!   would exceed the tenant's quota;
//! * `charge` moves actual evaluations from reserved to used as the
//!   job runs;
//! * `settle` releases whatever the job reserved but never spent.
//!
//! Because estimates are upper bounds, `used` can never exceed the
//! quota; because every subtraction saturates, no counter ever
//! underflows — the two invariants the proptest suite hammers.

use std::collections::HashMap;

use crate::{Reject, RejectKind};

/// A tenant's standing: budget, spend, and job counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantUsage {
    pub tenant: String,
    /// Eval budget; `None` means unlimited.
    pub quota: Option<u64>,
    /// Actual evaluations charged so far.
    pub used: u64,
    /// Outstanding admission reservations not yet charged or settled.
    pub reserved: u64,
    /// Jobs admitted.
    pub admitted: u64,
    /// Submissions rejected over quota.
    pub rejected: u64,
    /// Jobs settled (finished, failed, or canceled).
    pub settled: u64,
}

impl TenantUsage {
    fn new(tenant: &str, quota: Option<u64>) -> Self {
        TenantUsage {
            tenant: tenant.to_string(),
            quota,
            used: 0,
            reserved: 0,
            admitted: 0,
            rejected: 0,
            settled: 0,
        }
    }
}

/// The daemon-wide quota ledger. Not thread-safe; held under the
/// daemon's job-table lock.
pub struct QuotaAccountant {
    accounts: HashMap<String, TenantUsage>,
}

impl QuotaAccountant {
    pub fn new() -> Self {
        QuotaAccountant {
            accounts: HashMap::new(),
        }
    }

    /// Builds a ledger with quotas preset for the named tenants; every
    /// other tenant is unlimited.
    pub fn with_quotas(quotas: &[(String, u64)]) -> Self {
        let mut a = QuotaAccountant::new();
        for (tenant, evals) in quotas {
            a.set_quota(tenant, Some(*evals));
        }
        a
    }

    pub fn set_quota(&mut self, tenant: &str, quota: Option<u64>) {
        self.account(tenant).quota = quota;
    }

    fn account(&mut self, tenant: &str) -> &mut TenantUsage {
        self.accounts
            .entry(tenant.to_string())
            .or_insert_with(|| TenantUsage::new(tenant, None))
    }

    /// Admits a job with an estimated eval cost, reserving the budget,
    /// or rejects when the tenant's quota cannot cover it.
    pub fn admit(&mut self, tenant: &str, estimate: u64) -> Result<(), Reject> {
        let acct = self.account(tenant);
        if let Some(quota) = acct.quota {
            let committed = acct.used.saturating_add(acct.reserved);
            if committed.saturating_add(estimate) > quota {
                acct.rejected = acct.rejected.saturating_add(1);
                return Err(Reject::new(
                    RejectKind::Quota,
                    format!(
                        "tenant '{tenant}' over eval quota: {committed} of {quota} committed, \
                         job needs {estimate}"
                    ),
                ));
            }
        }
        acct.reserved = acct.reserved.saturating_add(estimate);
        acct.admitted = acct.admitted.saturating_add(1);
        Ok(())
    }

    /// Charges actual evaluations against the tenant's reservation.
    pub fn charge(&mut self, tenant: &str, evals: u64) {
        let acct = self.account(tenant);
        acct.used = acct.used.saturating_add(evals);
        acct.reserved = acct.reserved.saturating_sub(evals);
    }

    /// Releases the unspent part of a job's reservation when it leaves
    /// the system (done, failed, or canceled).
    pub fn settle(&mut self, tenant: &str, unspent: u64) {
        let acct = self.account(tenant);
        acct.reserved = acct.reserved.saturating_sub(unspent);
        acct.settled = acct.settled.saturating_add(1);
    }

    /// All tenant standings, sorted by tenant name.
    pub fn usage(&self) -> Vec<TenantUsage> {
        let mut rows: Vec<TenantUsage> = self.accounts.values().cloned().collect();
        rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        rows
    }

    pub fn usage_of(&self, tenant: &str) -> Option<&TenantUsage> {
        self.accounts.get(tenant)
    }
}

impl Default for QuotaAccountant {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_tenants_always_admit() {
        let mut a = QuotaAccountant::new();
        for _ in 0..100 {
            a.admit("free", u64::MAX / 200).unwrap();
        }
        assert_eq!(a.usage_of("free").unwrap().admitted, 100);
    }

    #[test]
    fn quota_rejects_when_committed_budget_would_overflow() {
        let mut a = QuotaAccountant::with_quotas(&[("t".to_string(), 100)]);
        a.admit("t", 60).unwrap();
        let err = a.admit("t", 60).unwrap_err();
        assert_eq!(err.kind, RejectKind::Quota);
        let u = a.usage_of("t").unwrap();
        assert_eq!((u.admitted, u.rejected, u.reserved), (1, 1, 60));
        // A job within the remaining budget still fits.
        a.admit("t", 40).unwrap();
    }

    #[test]
    fn charging_moves_reservation_to_used_and_settle_releases_the_rest() {
        let mut a = QuotaAccountant::with_quotas(&[("t".to_string(), 100)]);
        a.admit("t", 50).unwrap();
        a.charge("t", 20);
        a.charge("t", 10);
        a.settle("t", 20); // spent 30 of the 50 reserved
        let u = a.usage_of("t").unwrap();
        assert_eq!((u.used, u.reserved, u.settled), (30, 0, 1));
        // The freed budget is available again.
        a.admit("t", 70).unwrap();
        assert!(a.admit("t", 1).is_err());
    }

    #[test]
    fn used_never_exceeds_quota_when_estimates_are_upper_bounds() {
        let mut a = QuotaAccountant::with_quotas(&[("t".to_string(), 90)]);
        let mut used_total = 0u64;
        for job in 0..20u64 {
            let estimate = 30;
            if a.admit("t", estimate).is_err() {
                continue;
            }
            let actual = (job % 4) * 10; // always <= estimate
            a.charge("t", actual);
            a.settle("t", estimate - actual);
            used_total += actual;
            assert!(a.usage_of("t").unwrap().used <= 90);
            assert_eq!(a.usage_of("t").unwrap().used, used_total);
        }
    }

    #[test]
    fn accounting_saturates_instead_of_underflowing() {
        let mut a = QuotaAccountant::new();
        a.charge("t", 5); // charge with no reservation at all
        a.settle("t", 10);
        let u = a.usage_of("t").unwrap();
        assert_eq!((u.used, u.reserved), (5, 0));
    }
}
