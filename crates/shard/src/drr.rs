//! Deficit-round-robin job scheduling across tenants.
//!
//! One `DrrScheduler` fronts each shard. Every tenant with queued jobs
//! owns a FIFO and a deficit counter; jobs carry a *cost* (the
//! estimated evaluation budget, see `quota`). On each turn of the
//! round-robin pointer a tenant's deficit grows by the quantum, and its
//! head job runs once the deficit covers the job's cost — so over any
//! window, tenants consume eval budget at equal rates no matter how
//! lopsided their job sizes are. Classic DRR (Shreedhar & Varghese)
//! with two conventions:
//!
//! * one job is served per `dequeue` call (the daemon claims jobs one
//!   runner at a time), carrying leftover deficit to the next rotation;
//! * a tenant's deficit resets when its queue drains, so an idle tenant
//!   cannot hoard credit and burst past active ones later.
//!
//! The scheduler is work-conserving: `dequeue` on a non-empty scheduler
//! always returns a job — deficits grow every rotation, so some head
//! job always becomes affordable within `ceil(max_cost / quantum)`
//! rotations.

use std::collections::VecDeque;

/// Default deficit quantum in eval-budget units. Roughly one small
/// job's worth (e.g. pop 16 × 32 generations), so small jobs flow
/// freely while a tenant queueing huge jobs waits a few rotations.
pub const DEFAULT_QUANTUM: u64 = 512;

struct Entry {
    job: u64,
    cost: u64,
}

struct TenantQueue {
    tenant: String,
    deficit: u64,
    jobs: VecDeque<Entry>,
}

/// A deficit-round-robin scheduler over tenant FIFOs. Not thread-safe;
/// the daemon holds it under its job-table lock.
pub struct DrrScheduler {
    quantum: u64,
    /// Only tenants with queued jobs; drained tenants are dropped so
    /// memory stays bounded by the backlog, not by tenant history.
    queues: Vec<TenantQueue>,
    /// Round-robin pointer into `queues`.
    cursor: usize,
}

impl DrrScheduler {
    pub fn new(quantum: u64) -> Self {
        DrrScheduler {
            quantum: quantum.max(1),
            queues: Vec::new(),
            cursor: 0,
        }
    }

    /// Queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.jobs.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Queue depth per tenant, in rotation order (for gauges).
    pub fn depths(&self) -> Vec<(String, usize)> {
        self.queues
            .iter()
            .map(|q| (q.tenant.clone(), q.jobs.len()))
            .collect()
    }

    /// Appends a job to its tenant's FIFO. New tenants join the
    /// rotation with zero deficit.
    pub fn enqueue(&mut self, tenant: &str, job: u64, cost: u64) {
        match self.queues.iter_mut().find(|q| q.tenant == tenant) {
            Some(q) => q.jobs.push_back(Entry { job, cost }),
            None => self.queues.push(TenantQueue {
                tenant: tenant.to_string(),
                deficit: 0,
                jobs: VecDeque::from([Entry { job, cost }]),
            }),
        }
    }

    /// Serves the next job under DRR, or `None` when nothing is queued.
    pub fn dequeue(&mut self) -> Option<(u64, String)> {
        if self.queues.is_empty() {
            return None;
        }
        loop {
            self.cursor %= self.queues.len();
            let q = &mut self.queues[self.cursor];
            q.deficit = q.deficit.saturating_add(self.quantum);
            let affordable = q.jobs.front().map(|e| e.cost <= q.deficit).unwrap_or(false);
            if affordable {
                let entry = q.jobs.pop_front().expect("front checked above");
                q.deficit -= entry.cost;
                let tenant = q.tenant.clone();
                if q.jobs.is_empty() {
                    self.drop_queue(self.cursor);
                } else {
                    self.cursor = (self.cursor + 1) % self.queues.len();
                }
                return Some((entry.job, tenant));
            }
            self.cursor = (self.cursor + 1) % self.queues.len();
        }
    }

    /// Removes a queued job (cancellation). Returns whether it was
    /// found.
    pub fn remove(&mut self, job: u64) -> bool {
        for i in 0..self.queues.len() {
            if let Some(pos) = self.queues[i].jobs.iter().position(|e| e.job == job) {
                self.queues[i].jobs.remove(pos);
                if self.queues[i].jobs.is_empty() {
                    self.drop_queue(i);
                }
                return true;
            }
        }
        false
    }

    /// Drops a drained tenant queue, keeping the cursor pointing at the
    /// same next-up tenant. Deficit is discarded (reset-on-empty).
    fn drop_queue(&mut self, i: usize) {
        self.queues.remove(i);
        if i < self.cursor {
            self.cursor -= 1;
        }
        if self.queues.is_empty() {
            self.cursor = 0;
        } else {
            self.cursor %= self.queues.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut DrrScheduler) -> Vec<(u64, String)> {
        let mut out = Vec::new();
        while let Some(x) = s.dequeue() {
            out.push(x);
        }
        out
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut s = DrrScheduler::new(4);
        for j in 0..5 {
            s.enqueue("a", j, 100);
        }
        let order: Vec<u64> = drain(&mut s).into_iter().map(|(j, _)| j).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn equal_costs_interleave_round_robin() {
        let mut s = DrrScheduler::new(10);
        for j in 0..3 {
            s.enqueue("a", j, 10);
            s.enqueue("b", 100 + j, 10);
        }
        let tenants: Vec<String> = drain(&mut s).into_iter().map(|(_, t)| t).collect();
        assert_eq!(tenants, vec!["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn big_jobs_do_not_crowd_out_small_ones() {
        // Tenant "big" queues jobs of cost 100, "small" of cost 10.
        // With quantum 10, "small" should serve ~10 jobs per "big" job:
        // equal eval budget, not equal job count.
        let mut s = DrrScheduler::new(10);
        for j in 0..3 {
            s.enqueue("big", j, 100);
        }
        for j in 0..30 {
            s.enqueue("small", 1000 + j, 10);
        }
        let order = drain(&mut s);
        assert_eq!(order.len(), 33);
        // Count small jobs served before the first big job.
        let first_big = order.iter().position(|(_, t)| t == "big").unwrap();
        let small_before = order[..first_big]
            .iter()
            .filter(|(_, t)| t == "small")
            .count();
        assert!(
            (5..=15).contains(&small_before),
            "expected ~10 small jobs per big job, got {small_before} before the first big"
        );
    }

    #[test]
    fn work_conserving_even_when_costs_dwarf_the_quantum() {
        let mut s = DrrScheduler::new(1);
        s.enqueue("a", 1, 10_000);
        assert_eq!(s.dequeue(), Some((1, "a".to_string())));
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn drained_tenants_lose_their_deficit() {
        let mut s = DrrScheduler::new(10);
        s.enqueue("a", 1, 10);
        assert!(s.dequeue().is_some());
        // "a" drained; it must not have banked credit while away.
        for j in 0..4 {
            s.enqueue("b", 10 + j, 10);
        }
        s.enqueue("a", 2, 10);
        let order: Vec<String> = drain(&mut s).into_iter().map(|(_, t)| t).collect();
        // "a" is served within the first rotation but cannot preempt
        // more than its fair share.
        assert_eq!(order.iter().filter(|t| *t == "a").count(), 1);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn remove_cancels_a_queued_job_and_prunes_the_tenant() {
        let mut s = DrrScheduler::new(10);
        s.enqueue("a", 1, 10);
        s.enqueue("a", 2, 10);
        s.enqueue("b", 3, 10);
        assert!(s.remove(2));
        assert!(!s.remove(2), "double-remove must report absence");
        assert!(s.remove(3), "removing b's only job prunes the tenant");
        assert_eq!(s.depths(), vec![("a".to_string(), 1)]);
        assert_eq!(drain(&mut s), vec![(1, "a".to_string())]);
    }

    #[test]
    fn every_tenant_with_work_is_served_within_a_bounded_window() {
        // The no-starvation bound the proptest suite stresses harder:
        // with T tenants and max cost C, any tenant with queued work is
        // served within T * (C/quantum + 2) dequeues.
        let quantum = 5;
        let mut s = DrrScheduler::new(quantum);
        let costs = [3u64, 40, 17, 8];
        for (t, &cost) in costs.iter().enumerate() {
            for j in 0..20 {
                s.enqueue(&format!("t{t}"), (t as u64) * 1000 + j, cost);
            }
        }
        let bound = costs.len() * (40 / quantum as usize + 2);
        let mut since_served = vec![0usize; costs.len()];
        while let Some((_, tenant)) = s.dequeue() {
            let idx: usize = tenant[1..].parse().unwrap();
            for (t, n) in since_served.iter_mut().enumerate() {
                let still_queued = s.depths().iter().any(|(name, _)| name == &format!("t{t}"));
                if still_queued {
                    *n += 1;
                    assert!(*n <= bound, "tenant t{t} starved for {n} dequeues");
                }
            }
            since_served[idx] = 0;
        }
    }
}
