// Gated: needs the crates.io `proptest` crate (see the `proptest`
// feature note in this crate's Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the sharded control plane's three pure
//! cores: the deficit-round-robin scheduler is work-conserving and
//! starves no runnable tenant, the quota accountant's books never go
//! negative or over budget, and worker shard leases are stable under
//! fleet churn.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use shard::directory::Directory;
use shard::drr::DrrScheduler;
use shard::quota::QuotaAccountant;
use shard::route::shard_of;

prop_compose! {
    /// A backlog: (tenant index, job cost) pairs over a small roster.
    fn arb_backlog()(jobs in proptest::collection::vec((0usize..5, 1u64..2000), 1..120)) -> Vec<(usize, u64)> {
        jobs
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Work conservation: as long as any job is queued, dequeue yields
    /// one — the scheduler never idles a non-empty queue — and every
    /// enqueued job comes out exactly once.
    #[test]
    fn drr_is_work_conserving(backlog in arb_backlog(), quantum in 1u64..4096) {
        let mut drr = DrrScheduler::new(quantum);
        for (i, (tenant, cost)) in backlog.iter().enumerate() {
            drr.enqueue(&format!("t{tenant}"), i as u64, *cost);
        }
        let mut seen = HashSet::new();
        for _ in 0..backlog.len() {
            prop_assert!(!drr.is_empty());
            let (job, _) = drr.dequeue().expect("non-empty scheduler must yield");
            prop_assert!(seen.insert(job), "job {job} dequeued twice");
        }
        prop_assert!(drr.is_empty());
        prop_assert_eq!(drr.dequeue(), None);
        prop_assert_eq!(seen.len(), backlog.len());
    }

    /// No starvation while runnable: with every tenant holding a
    /// backlog, each tenant gets a job within one full round of the
    /// roster times the worst cost/quantum ratio — a noisy tenant with
    /// huge jobs cannot push a cheap tenant's first job arbitrarily far
    /// back.
    #[test]
    fn drr_starves_no_runnable_tenant(
        tenants in 2usize..6,
        per_tenant in 1usize..20,
        costs in proptest::collection::vec(1u64..1000, 6),
        quantum in 100u64..2000,
    ) {
        let mut drr = DrrScheduler::new(quantum);
        let mut id = 0u64;
        for t in 0..tenants {
            for _ in 0..per_tenant {
                drr.enqueue(&format!("t{t}"), id, costs[t % costs.len()]);
                id += 1;
            }
        }
        // Every tenant's first job must appear within the first
        // `tenants * ceil(max_cost / quantum)` dequeues: one DRR round
        // accrues `quantum` deficit per tenant, so after that many
        // rounds every tenant has afforded at least one job.
        let max_cost = *costs.iter().take(tenants).max().expect("non-empty");
        let rounds_needed = max_cost.div_ceil(quantum) as usize;
        let window = tenants * rounds_needed.max(1);
        let mut served = HashSet::new();
        for _ in 0..window.min(tenants * per_tenant) {
            let (_, tenant) = drr.dequeue().expect("backlog is non-empty");
            served.insert(tenant);
        }
        for t in 0..tenants {
            prop_assert!(
                served.contains(&format!("t{t}")),
                "tenant t{t} got nothing in the first {window} dequeues (quantum {quantum})"
            );
        }
    }

    /// The accountant's books: used + reserved never exceeds the quota,
    /// nothing underflows, and a full admit/charge/settle lifecycle
    /// returns every reservation.
    #[test]
    fn quota_books_never_go_negative_or_over_budget(
        quota in 1u64..100_000,
        ops in proptest::collection::vec((1u64..5000, 0.0f64..1.0), 1..60),
    ) {
        let mut acct = QuotaAccountant::with_quotas(&[("t".to_string(), quota)]);
        let mut live: Vec<u64> = Vec::new(); // outstanding reservations
        for (estimate, spend_frac) in ops {
            match acct.admit("t", estimate) {
                Ok(()) => live.push(estimate),
                Err(reject) => {
                    // A reject must be the budget talking, not noise.
                    let u = acct.usage_of("t").expect("tenant exists");
                    prop_assert!(
                        u.used + u.reserved + estimate > quota,
                        "rejected ({}) with {} used + {} reserved + {estimate} <= {quota}",
                        reject, u.used, u.reserved
                    );
                }
            }
            let u = acct.usage_of("t").expect("tenant exists");
            prop_assert!(u.used + u.reserved <= quota,
                "{} used + {} reserved over the {quota} budget", u.used, u.reserved);
            // Occasionally run one reservation to completion: charge
            // part of it, settle the rest.
            if spend_frac > 0.5 {
                if let Some(reserved) = live.pop() {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let spent = ((reserved as f64) * spend_frac) as u64;
                    let spent = spent.min(reserved);
                    acct.charge("t", spent);
                    acct.settle("t", reserved - spent);
                }
            }
        }
        // Drain every outstanding reservation untouched.
        for reserved in live.drain(..) {
            acct.settle("t", reserved);
        }
        let u = acct.usage_of("t").expect("tenant exists");
        prop_assert_eq!(u.reserved, 0, "settling everything must zero the reservations");
        prop_assert!(u.used <= quota, "{} charged over the {quota} budget", u.used);
        prop_assert_eq!(u.settled, u.admitted, "every admitted reservation settles");
    }

    /// Shard routing is total and stable: every id lands in range, and
    /// the same id always lands in the same shard.
    #[test]
    fn shard_routing_is_total_and_stable(ids in proptest::collection::vec(any::<u64>(), 1..200), shards in 1usize..64) {
        for id in ids {
            let s = shard_of(id, shards);
            prop_assert!(s < shards);
            prop_assert_eq!(s, shard_of(id, shards));
        }
    }

    /// Lease stability under churn: a worker's shard lease depends only
    /// on its address and the shard count — adding or removing *other*
    /// workers never moves it (rendezvous hashing), so worker churn
    /// cannot stampede the directory.
    #[test]
    fn leases_are_stable_under_worker_churn(
        fleet in proptest::collection::hash_set("[a-z]{2,8}:[0-9]{2,4}", 2..40),
        shards in 1usize..16,
        churn in proptest::collection::vec(any::<prop::sample::Index>(), 1..10),
    ) {
        let fleet: Vec<String> = fleet.into_iter().collect();
        let before: HashMap<&String, usize> =
            fleet.iter().map(|w| (w, Directory::lease_of(w, shards))).collect();

        // Churn: drop a few workers from the fleet entirely.
        let mut dropped = HashSet::new();
        for idx in churn {
            dropped.insert(idx.index(fleet.len()));
        }
        for (i, worker) in fleet.iter().enumerate() {
            if dropped.contains(&i) {
                continue;
            }
            prop_assert_eq!(
                Directory::lease_of(worker, shards),
                before[worker],
                "{worker}'s lease moved when unrelated workers churned"
            );
        }

        // And the directory agrees with the pure function.
        let dir = Directory::new(shards, 1_000_000);
        for (i, worker) in fleet.iter().enumerate() {
            if !dropped.contains(&i) {
                dir.observe(worker, 1);
            }
        }
        for lease in dir.snapshot(1) {
            prop_assert_eq!(lease.shard, before[&lease.addr]);
        }
    }
}
