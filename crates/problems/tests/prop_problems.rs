//! Property tests for the Problem invariants: genetic operators keep
//! arbitrary kinded genomes inside their space, encode/decode
//! round-trips, and categorical genes are re-drawn rather than
//! interpolated.
//!
//! Gated behind the bare `proptest` cargo feature because the
//! `proptest` crate is not vendored (offline, zero-dependency builds).
//! To run:
//!
//! ```text
//! # on a networked machine:
//! #   add `proptest = "1"` under [dev-dependencies] in crates/problems/Cargo.toml
//! cargo test -p inlinetune-problems --features proptest
//! ```

#![cfg(feature = "proptest")]

use std::sync::OnceLock;

use ga::ops::{mutate, one_point_crossover, two_point_crossover, uniform_crossover};
use ga::{GeneKind, Ranges};
use inliner::{InlineParams, ParamRanges};
use proptest::prelude::*;
use simrng::Rng;

/// An arbitrary mixed-kind gene space plus one genome inside it.
fn arb_space_and_genome() -> impl Strategy<Value = (Ranges, Vec<i64>)> {
    proptest::collection::vec(
        (0..3u8, -40i64..40, 0i64..40).prop_flat_map(|(kind, lo, width)| {
            let kind = match kind {
                0 => GeneKind::Int,
                1 => GeneKind::Bool,
                _ => GeneKind::Cat,
            };
            // Bools live on {0, 1}; others use the drawn bounds.
            let (lo, hi) = if kind == GeneKind::Bool {
                (0, 1)
            } else {
                (lo, lo + width)
            };
            (Just(kind), Just((lo, hi)), lo..=hi)
        }),
        1..=12,
    )
    .prop_map(|genes| {
        let kinds: Vec<GeneKind> = genes.iter().map(|g| g.0).collect();
        let bounds: Vec<(i64, i64)> = genes.iter().map(|g| g.1).collect();
        let genome: Vec<i64> = genes.iter().map(|g| g.2).collect();
        (Ranges::with_kinds(bounds, kinds), genome)
    })
}

proptest! {
    /// Mutation never leaves the space, whatever the kinds, bounds,
    /// per-gene probability or seed.
    #[test]
    fn mutation_stays_in_bounds(
        (ranges, genome) in arb_space_and_genome(),
        prob in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..8 {
            let mut g = genome.clone();
            mutate(&mut g, &ranges, prob, &mut rng);
            prop_assert!(ranges.contains(&g), "{g:?} left {ranges:?}");
        }
    }

    /// Every crossover operator only recombines parental genes, so
    /// children of in-space parents stay in space — and each child gene
    /// literally equals one parent's gene at that locus (categoricals
    /// are never blended into values neither parent held).
    #[test]
    fn crossover_children_stay_in_bounds_and_never_blend(
        (ranges, a) in arb_space_and_genome(),
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let b = ranges.random(&mut rng);
        for op in [one_point_crossover, two_point_crossover, uniform_crossover] {
            let (c, d) = op(&a, &b, &mut rng);
            for child in [&c, &d] {
                prop_assert!(ranges.contains(child));
                for (i, &g) in child.iter().enumerate() {
                    prop_assert!(g == a[i] || g == b[i], "blended gene {i}: {g}");
                }
            }
        }
    }

    /// A mutated non-Int gene is a uniform *re-draw*: the outcome depends
    /// only on the RNG stream, not on the starting value. Starting the
    /// same seed from different categories lands on the same category —
    /// the definition of "never interpolates".
    #[test]
    fn categorical_mutation_is_independent_of_the_current_value(
        start_a in 0i64..=6,
        start_b in 0i64..=6,
        seed in any::<u64>(),
    ) {
        let ranges = Ranges::with_kinds(
            vec![(0, 6), (0, 1)],
            vec![GeneKind::Cat, GeneKind::Bool],
        );
        let mut rng_a = Rng::seed_from_u64(seed);
        let mut rng_b = Rng::seed_from_u64(seed);
        let mut a = vec![start_a, 0];
        let mut b = vec![start_b, 1];
        mutate(&mut a, &ranges, 1.0, &mut rng_a);
        mutate(&mut b, &ranges, 1.0, &mut rng_b);
        prop_assert_eq!(a, b);
    }

    /// The inlining problem's genome codec round-trips across the paper's
    /// Table 1 ranges.
    #[test]
    fn inline_params_round_trip_within_paper_ranges(
        callee in 1i64..=50,
        always in 1i64..=30,
        depth in 1i64..=15,
        caller in 1i64..=4000,
        hot in 1i64..=400,
    ) {
        let genes = vec![callee, always, depth, caller, hot];
        prop_assert!(ParamRanges::paper().contains(&genes));
        let params = InlineParams::from_genes(&genes);
        prop_assert_eq!(params.to_genes(), genes);
    }

    /// The dss problem scores every genome in its space to a finite,
    /// positive, deterministic fitness.
    #[test]
    fn dss_fitness_is_total_over_its_space(genes in proptest::collection::vec(0i64..=4, 8)) {
        static PROBLEM: OnceLock<problems::DssProblem> = OnceLock::new();
        let p = PROBLEM.get_or_init(|| {
            problems::DssProblem::new(
                tuner::TuningTask {
                    name: "Opt:Tot".into(),
                    scenario: jit::Scenario::Opt,
                    goal: tuner::Goal::Total,
                    arch: jit::ArchModel::pentium4(),
                },
                vec![workloads::benchmark_by_name("db").unwrap()],
            )
        });
        use problems::Problem;
        prop_assert!(p.space().contains(&genes));
        let f = p.fitness(&genes);
        prop_assert!(f.is_finite() && f > 0.0, "{f}");
        prop_assert_eq!(f.to_bits(), p.fitness(&genes).to_bits());
    }
}
