//! Data-structure selection: pick a container implementation per usage
//! class, in the style of Darwinian data-structure selection.
//!
//! The program under tuning is imagined to allocate containers at many
//! sites; sites are bucketed into [`N_CLASSES`] usage classes, and one
//! categorical gene per class picks the implementation for every
//! container in that class:
//!
//! | gene value | implementation | character |
//! |------------|----------------|-----------|
//! | 0 | `vec`       | cheap push/scan, linear lookup |
//! | 1 | `list`      | cheap build, slow traversal |
//! | 2 | `hashmap`   | near-constant lookup, heavy footprint |
//! | 3 | `treemap`   | ordered, logarithmic everything |
//! | 4 | `sortedvec` | slow insert, fast access, tight memory |
//!
//! The workload profile is *real*: [`ir::freq::analyze`] gives each
//! benchmark method's entry counts, memory-class op counts and dynamic
//! call frequencies, which become the per-class push / access / lookup
//! volumes. The cost model prices those volumes through the task's
//! [`jit::ArchModel`] (memory-op cycle cost, I-cache footprint penalty),
//! so the same genome scores differently on the Pentium 4 than on the
//! G4 — exactly the cross-architecture specialization story of the rest
//! of the repo. Fitness is normalized to the all-`vec` default, which
//! scores exactly 1.
//!
//! Like [`crate::flags`], the task's scenario is ignored; its goal and
//! arch apply as usual (`build` cycles play the role of compile time for
//! `Total` goals).

use ga::{GeneKind, Ranges};
use ir::freq::{analyze, class_index, N_COST_CLASSES};
use ir::CostClass;
use jit::{ArchModel, ExecBreakdown, Measurement};
use tuner::{geometric_mean, TuningTask};
use workloads::Benchmark;

use crate::Problem;

/// Number of container usage classes (= genes in the space).
pub const N_CLASSES: usize = 8;

/// A container implementation's cost coefficients, all in units of one
/// memory-class operation on the target architecture.
struct ContainerImpl {
    name: &'static str,
    /// Cycles per element pushed.
    push: f64,
    /// Cycles per element access (iteration, indexing).
    access: f64,
    /// Cycles per keyed lookup.
    lookup: f64,
    /// Cache-footprint multiplier (vec = 1).
    footprint: f64,
    /// One-time construction cost multiplier.
    build: f64,
}

/// The implementation menu, indexed by gene value.
const IMPLS: [ContainerImpl; 5] = [
    ContainerImpl {
        name: "vec",
        push: 1.0,
        access: 1.0,
        lookup: 8.0,
        footprint: 1.0,
        build: 4.0,
    },
    ContainerImpl {
        name: "list",
        push: 1.5,
        access: 4.0,
        lookup: 12.0,
        footprint: 2.0,
        build: 2.0,
    },
    ContainerImpl {
        name: "hashmap",
        push: 3.0,
        access: 1.5,
        lookup: 1.5,
        footprint: 3.0,
        build: 16.0,
    },
    ContainerImpl {
        name: "treemap",
        push: 4.0,
        access: 2.5,
        lookup: 2.5,
        footprint: 2.0,
        build: 12.0,
    },
    ContainerImpl {
        name: "sortedvec",
        push: 6.0,
        access: 1.0,
        lookup: 2.0,
        footprint: 1.0,
        build: 8.0,
    },
];

/// One benchmark's per-class workload volumes, extracted once from the
/// frequency analysis.
struct ClassProfile {
    pushes: [f64; N_CLASSES],
    accesses: [f64; N_CLASSES],
    lookups: [f64; N_CLASSES],
}

/// Buckets a benchmark's methods into usage classes and accumulates the
/// per-class push/access/lookup volumes from the real dynamic profile:
/// method entries become pushes, memory-class op units become accesses,
/// dynamic call executions become keyed lookups.
fn profile(b: &Benchmark) -> ClassProfile {
    let freq = analyze(&b.program, 1.0);
    let mem = class_index(CostClass::Mem);
    debug_assert!(mem < N_COST_CLASSES);
    let mut p = ClassProfile {
        pushes: [0.0; N_CLASSES],
        accesses: [0.0; N_CLASSES],
        lookups: [0.0; N_CLASSES],
    };
    for (mi, local) in freq.locals.iter().enumerate() {
        let class = mi % N_CLASSES;
        let entries = freq.entries[mi];
        p.pushes[class] += entries;
        p.accesses[class] += local.ops_per_entry[mem] * entries;
        p.lookups[class] += local.calls_per_entry * entries;
    }
    p
}

/// Prices one benchmark under a per-class implementation choice, in the
/// shape of `jit::measure` so [`tuner::Goal::metric`] applies directly:
/// steady-state container traffic is "running", one-time construction is
/// "compile", and the combined footprint feeds the arch's I-cache
/// penalty.
fn measure_dss(p: &ClassProfile, arch: &ArchModel, genes: &[i64]) -> Measurement {
    assert_eq!(
        genes.len(),
        N_CLASSES,
        "dss genome must have {N_CLASSES} genes"
    );
    let mem_cost = arch.class_cycles[class_index(CostClass::Mem)];
    let mut running = 0.0;
    let mut build = 0.0;
    let mut footprint = 0.0;
    for c in 0..N_CLASSES {
        let imp = &IMPLS[genes[c] as usize];
        running += mem_cost
            * (p.pushes[c] * imp.push + p.accesses[c] * imp.access + p.lookups[c] * imp.lookup);
        build += mem_cost * imp.build * (1.0 + p.pushes[c]).ln();
        footprint += imp.footprint * (1.0 + p.pushes[c]).ln() * 64.0;
    }
    let icache_factor = arch.icache_penalty(footprint);
    running *= icache_factor;
    Measurement {
        total_cycles: build + running,
        running_cycles: running,
        compile_cycles: build,
        baseline_compile_cycles: 0.0,
        opt_compile_cycles: build,
        first_iter_exec_cycles: running,
        steady: ExecBreakdown {
            total_cycles: running,
            op_cycles: running,
            call_cycles: 0.0,
            icache_factor,
            hot_footprint: footprint,
            dynamic_calls: 0.0,
        },
        code_size: 0,
        inline_stats: inliner::InlineStats::default(),
        n_opt_methods: 0,
        n_baseline_methods: 0,
    }
}

/// The data-structure selection problem.
pub struct DssProblem {
    task: TuningTask,
    space: Ranges,
    fingerprint: stored::Fingerprint,
    /// One profile per training benchmark, extracted once.
    profiles: Vec<ClassProfile>,
    /// Per-benchmark measurement under the all-`vec` default — the
    /// fitness normalization constants and balance factors.
    defaults: Vec<Measurement>,
}

impl DssProblem {
    /// Builds the selection problem over a task's goal/arch and a suite.
    ///
    /// # Panics
    /// Panics if the training suite is empty.
    #[must_use]
    pub fn new(task: TuningTask, training: Vec<Benchmark>) -> Self {
        assert!(!training.is_empty(), "training suite must not be empty");
        let fingerprint = crate::tagged_fingerprint("dss", &task, &training);
        let profiles: Vec<ClassProfile> = training.iter().map(profile).collect();
        let defaults = profiles
            .iter()
            .map(|p| measure_dss(p, &task.arch, &[0; N_CLASSES]))
            .collect();
        let space = Ranges::with_kinds(
            vec![(0, IMPLS.len() as i64 - 1); N_CLASSES],
            vec![GeneKind::Cat; N_CLASSES],
        );
        Self {
            task,
            space,
            fingerprint,
            profiles,
            defaults,
        }
    }
}

impl Problem for DssProblem {
    fn id(&self) -> &'static str {
        "dss"
    }

    fn space(&self) -> &Ranges {
        &self.space
    }

    fn fitness(&self, genes: &[i64]) -> f64 {
        let mut ratios = Vec::with_capacity(self.profiles.len());
        for (p, default) in self.profiles.iter().zip(&self.defaults) {
            let m = measure_dss(p, &self.task.arch, genes);
            let num = self.task.goal.metric(&m, default);
            let den = self.task.goal.metric(default, default);
            if den <= 0.0 {
                return f64::INFINITY;
            }
            ratios.push(num / den);
        }
        geometric_mean(&ratios)
    }

    fn fingerprint(&self) -> &stored::Fingerprint {
        &self.fingerprint
    }

    fn describe(&self, genes: &[i64]) -> String {
        let picks: Vec<String> = genes
            .iter()
            .enumerate()
            .map(|(c, &g)| format!("c{c}={}", IMPLS[g as usize].name))
            .collect();
        format!("[{}]", picks.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuner::Goal;
    use workloads::benchmark_by_name;

    fn problem() -> DssProblem {
        DssProblem::new(
            TuningTask {
                name: "Opt:Tot".into(),
                scenario: jit::Scenario::Opt,
                goal: Goal::Total,
                arch: jit::ArchModel::pentium4(),
            },
            vec![benchmark_by_name("db").unwrap()],
        )
    }

    #[test]
    fn all_vec_default_scores_exactly_one() {
        let p = problem();
        let f = p.fitness(&[0; N_CLASSES]);
        assert!((f - 1.0).abs() < 1e-12, "fitness {f}");
    }

    #[test]
    fn the_space_is_purely_categorical() {
        let p = problem();
        assert_eq!(p.space().len(), N_CLASSES);
        assert!(p.space().kinds().iter().all(|&k| k == GeneKind::Cat));
        assert!((0..N_CLASSES).all(|i| p.space().gene(i) == (0, 4)));
        // 5 implementations per class.
        assert_eq!(p.space().cardinality(), 5u128.pow(N_CLASSES as u32));
    }

    #[test]
    fn implementations_actually_move_the_metric() {
        let p = problem();
        let vecs = p.fitness(&[0; N_CLASSES]);
        let lists = p.fitness(&[1; N_CLASSES]);
        let hashes = p.fitness(&[2; N_CLASSES]);
        assert_ne!(vecs.to_bits(), lists.to_bits());
        assert_ne!(vecs.to_bits(), hashes.to_bits());
        for f in [vecs, lists, hashes] {
            assert!(f.is_finite() && f > 0.0);
        }
        // All-list traversal is strictly worse than all-vec on every
        // coefficient that matters here, so the ratio must exceed 1.
        assert!(lists > 1.0, "lists {lists}");
    }

    #[test]
    fn the_arch_changes_the_score() {
        // The same genome prices differently on the G4 (different memory
        // cost and I-cache), so per-arch specialization is real.
        let mk = |arch: jit::ArchModel| {
            DssProblem::new(
                TuningTask {
                    name: "t".into(),
                    scenario: jit::Scenario::Opt,
                    goal: Goal::Total,
                    arch,
                },
                vec![benchmark_by_name("db").unwrap()],
            )
        };
        let genes = [2, 0, 1, 4, 3, 0, 2, 1];
        let p4 = mk(jit::ArchModel::pentium4()).fitness(&genes);
        let g4 = mk(jit::ArchModel::powerpc_g4()).fitness(&genes);
        assert_ne!(p4.to_bits(), g4.to_bits());
    }

    #[test]
    fn fitness_is_deterministic() {
        let p = problem();
        let genes = [4, 3, 2, 1, 0, 1, 2, 3];
        assert_eq!(p.fitness(&genes).to_bits(), p.fitness(&genes).to_bits());
    }

    #[test]
    fn describe_names_every_class() {
        let p = problem();
        let d = p.describe(&[0, 1, 2, 3, 4, 0, 1, 2]);
        assert!(d.contains("c0=vec"), "{d}");
        assert!(d.contains("c2=hashmap"), "{d}");
        assert!(d.contains("c4=sortedvec"), "{d}");
    }
}
