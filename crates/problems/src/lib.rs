//! Problem-generic tuning: one trait between the search machinery and
//! *what* is being tuned.
//!
//! The original pipeline hard-wired the inlining heuristic end to end —
//! the GA tuned `InlineParams`, the daemon checkpointed `InlineParams`,
//! the store keyed records by inlining cells. This crate inserts the
//! missing seam: a [`Problem`] is a gene space (with per-gene
//! [`ga::GeneKind`]s), a fitness function over genomes, and a store
//! fingerprint, and everything above it — `ga`, `search`, `served`,
//! `evald`, `stored` — operates on genomes alone. One daemon can then
//! tune heterogeneous problems over one worker pool, and one fitness
//! store can hold them all without cross-contamination.
//!
//! Three domains ship:
//!
//! * [`inline`] — the paper's problem, wrapped. Bit-identical to the
//!   direct [`tuner::Tuner`] path (test-enforced): the wrapper adds no
//!   RNG draws, no reordering, no float churn.
//! * [`flags`] — compiler-flag selection: which optimizations to run
//!   and which compiler to use, a mixed categorical/boolean space in
//!   the style of compiler-flag phase-selection tuning.
//! * [`dss`] — data-structure selection: pick a container
//!   implementation per call-site class from profiled push/access/
//!   lookup frequencies, a purely categorical space in the style of
//!   Darwinian data-structure selection.
//!
//! Problem identity flows everywhere a genome goes: store fingerprints
//! carry the problem id (so warm starts never cross problems — see
//! `stored::Store::warm_seeds`), job specs and checkpoints name the
//! problem, and evaluation servers refuse genomes outside the problem's
//! space.

pub mod dss;
pub mod flags;
pub mod inline;

use std::sync::Arc;

use jit::AdaptConfig;
use tuner::TuningTask;
use workloads::Benchmark;

pub use dss::DssProblem;
pub use flags::FlagsProblem;
pub use inline::InlineProblem;

/// Every problem id [`build`] accepts, in stable order.
pub const KNOWN: &[&str] = &["inline", "flags", "dss"];

/// An optimization problem the generic tuning stack can search.
///
/// Implementations must be deterministic: `fitness` is a pure function
/// of the genes (the store replays it bit-exactly), and `space` /
/// `fingerprint` never change over the problem's lifetime.
pub trait Problem: Send + Sync {
    /// Stable identifier (`"inline"`, `"flags"`, `"dss"`). Part of job
    /// specs, checkpoints and store fingerprints — never rename.
    fn id(&self) -> &'static str;

    /// The gene space: bounds plus per-gene kinds. Mutation respects
    /// the kinds (categoricals re-draw, never interpolate).
    fn space(&self) -> &ga::Ranges;

    /// Fitness of a genome, lower is better; the problem's default
    /// configuration scores exactly 1. Callers must pass genomes inside
    /// [`Problem::space`].
    fn fitness(&self, genes: &[i64]) -> f64;

    /// The store fingerprint of this problem × task × suite cell. Its
    /// `problem` field equals [`Problem::id`], and non-inline problems
    /// fold the id into the cell digest so cells never collide across
    /// problems.
    fn fingerprint(&self) -> &stored::Fingerprint;

    /// Human-readable decode of a genome for reports and logs.
    fn describe(&self, genes: &[i64]) -> String;
}

/// Builds a problem by id over a task and training suite.
///
/// `adapt` is only consulted by the inlining problem (the others pick
/// their own compilation story).
///
/// # Errors
/// Unknown id, or an empty training suite.
pub fn build(
    id: &str,
    task: &TuningTask,
    training: &[Benchmark],
    adapt: AdaptConfig,
) -> Result<Arc<dyn Problem>, String> {
    if training.is_empty() {
        return Err(format!("problem '{id}' needs a non-empty training suite"));
    }
    match id {
        "inline" => Ok(Arc::new(InlineProblem::new(
            task.clone(),
            training.to_vec(),
            adapt,
        ))),
        "flags" => Ok(Arc::new(FlagsProblem::new(task.clone(), training.to_vec()))),
        "dss" => Ok(Arc::new(DssProblem::new(task.clone(), training.to_vec()))),
        other => Err(format!(
            "unknown problem '{other}' (known: {})",
            KNOWN.join(", ")
        )),
    }
}

/// Whether `id` names a buildable problem.
#[must_use]
pub fn is_known(id: &str) -> bool {
    KNOWN.contains(&id)
}

/// The store fingerprint [`build`] would hand back for this cell,
/// without paying to construct the problem's evaluator — for store
/// RPCs and warm-start lookups that only need cell addressing.
///
/// # Errors
/// Unknown id.
pub fn fingerprint(
    id: &str,
    task: &TuningTask,
    training: &[Benchmark],
) -> Result<stored::Fingerprint, String> {
    if !is_known(id) {
        return Err(format!(
            "unknown problem '{id}' (known: {})",
            KNOWN.join(", ")
        ));
    }
    Ok(tagged_fingerprint(id, task, training))
}

/// The tagged store fingerprint of a non-inline problem's cell.
///
/// Starts from the inlining cell fingerprint (same workload features,
/// so cross-*cell* warm transfer still ranks by workload shape within a
/// problem), then folds the problem id into the cell digest and tags
/// the `problem` field. The inlining problem keeps the legacy untagged
/// fingerprint so pre-problems store directories keep warm-starting it.
pub(crate) fn tagged_fingerprint(
    id: &str,
    task: &TuningTask,
    training: &[Benchmark],
) -> stored::Fingerprint {
    let mut fp = tuner::cell_fingerprint(task, training);
    if id != "inline" {
        fp.cell_digest = stored::digest_parts(&[id, &format!("{:016x}", fp.cell_digest)]);
        fp.problem = id.to_string();
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuner::Goal;
    use workloads::benchmark_by_name;

    fn task() -> TuningTask {
        TuningTask {
            name: "Opt:Tot".into(),
            scenario: jit::Scenario::Opt,
            goal: Goal::Total,
            arch: jit::ArchModel::pentium4(),
        }
    }

    fn training() -> Vec<Benchmark> {
        vec![benchmark_by_name("db").unwrap()]
    }

    #[test]
    fn every_known_problem_builds_and_scores_its_default_one() {
        for &id in KNOWN {
            let p = build(id, &task(), &training(), AdaptConfig::default()).unwrap();
            assert_eq!(p.id(), id);
            assert_eq!(p.fingerprint().problem, id);
            // The defaults genome must exist inside the space and score 1.
            let defaults: Vec<i64> = match id {
                "inline" => inliner::InlineParams::jikes_default().to_genes(),
                "flags" => flags::DEFAULT_GENES.to_vec(),
                "dss" => vec![0; dss::N_CLASSES],
                _ => unreachable!(),
            };
            assert!(p.space().contains(&defaults), "{id} defaults out of space");
            let f = p.fitness(&defaults);
            assert!((f - 1.0).abs() < 1e-9, "{id} default fitness {f}");
            assert!(!p.describe(&defaults).is_empty());
        }
    }

    #[test]
    fn unknown_problem_is_a_structured_error() {
        let err = build("gradient", &task(), &training(), AdaptConfig::default())
            .err()
            .expect("must reject");
        assert!(err.contains("unknown problem"), "{err}");
        assert!(err.contains("inline"), "{err}");
        assert!(!is_known("gradient"));
        assert!(KNOWN.iter().all(|id| is_known(id)));
    }

    #[test]
    fn problems_on_the_same_cell_never_share_a_cell_digest() {
        let digests: Vec<u64> = KNOWN
            .iter()
            .map(|id| {
                build(id, &task(), &training(), AdaptConfig::default())
                    .unwrap()
                    .fingerprint()
                    .cell_digest
            })
            .collect();
        let mut unique = digests.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), KNOWN.len(), "{digests:?}");
    }

    #[test]
    fn the_cheap_fingerprint_matches_the_built_problem() {
        for &id in KNOWN {
            let p = build(id, &task(), &training(), AdaptConfig::default()).unwrap();
            let cheap = fingerprint(id, &task(), &training()).unwrap();
            assert_eq!(&cheap, p.fingerprint(), "{id}");
        }
        assert!(fingerprint("gradient", &task(), &training()).is_err());
    }

    #[test]
    fn inline_keeps_the_legacy_untagged_fingerprint() {
        // Store back-compat: pre-problems records were written under the
        // plain tuner digest, and the inline problem must keep hitting
        // them.
        let p = build("inline", &task(), &training(), AdaptConfig::default()).unwrap();
        let legacy = tuner::cell_fingerprint(&task(), &training());
        assert_eq!(p.fingerprint(), &legacy);
        assert_eq!(p.fingerprint().problem, "inline");
    }

    #[test]
    fn empty_training_suite_is_rejected() {
        let err = build("flags", &task(), &[], AdaptConfig::default())
            .err()
            .expect("must reject");
        assert!(err.contains("non-empty"), "{err}");
    }
}
