//! The paper's inlining-heuristic problem behind the [`Problem`] seam.
//!
//! A thin wrapper over [`tuner::Tuner`]: the space is the task's Table 1
//! ranges (all-[`ga::GeneKind::Int`], exactly what `TuningTask::ranges`
//! returns), fitness decodes the genome into [`inliner::InlineParams`]
//! and delegates, and the fingerprint is the tuner's own legacy
//! fingerprint. The wrapper adds no RNG draws and no float operations,
//! so searching through it is bit-identical to the direct tuner path —
//! `inline_problem_is_bit_identical_to_the_tuner` enforces that.

use ga::Ranges;
use inliner::InlineParams;
use jit::AdaptConfig;
use tuner::{Tuner, TuningTask};
use workloads::Benchmark;

use crate::Problem;

/// The inlining-heuristic tuning problem (Cavazos & O'Boyle, SC 2005).
pub struct InlineProblem {
    tuner: Tuner,
    space: Ranges,
}

impl InlineProblem {
    /// Wraps a tuner over the task's Table 1 ranges.
    ///
    /// # Panics
    /// Panics if the training suite is empty (same as [`Tuner::new`]).
    #[must_use]
    pub fn new(task: TuningTask, training: Vec<Benchmark>, adapt: AdaptConfig) -> Self {
        let space = task.ranges();
        Self {
            tuner: Tuner::new(task, training, adapt),
            space,
        }
    }

    /// The wrapped tuner (for inlining-specific reporting paths).
    #[must_use]
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }
}

impl Problem for InlineProblem {
    fn id(&self) -> &'static str {
        "inline"
    }

    fn space(&self) -> &Ranges {
        &self.space
    }

    fn fitness(&self, genes: &[i64]) -> f64 {
        self.tuner.fitness(&InlineParams::from_genes(genes))
    }

    fn fingerprint(&self) -> &stored::Fingerprint {
        self.tuner.fingerprint()
    }

    fn describe(&self, genes: &[i64]) -> String {
        InlineParams::from_genes(genes).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::{GaConfig, GaState, GeneKind};
    use tuner::Goal;
    use workloads::benchmark_by_name;

    fn task() -> TuningTask {
        TuningTask {
            name: "Opt:Tot".into(),
            scenario: jit::Scenario::Opt,
            goal: Goal::Total,
            arch: jit::ArchModel::pentium4(),
        }
    }

    fn training() -> Vec<Benchmark> {
        vec![benchmark_by_name("db").unwrap()]
    }

    fn cfg() -> GaConfig {
        GaConfig {
            pop_size: 8,
            generations: 5,
            threads: 1,
            stagnation_limit: None,
            seed: 77,
            ..GaConfig::default()
        }
    }

    #[test]
    fn inline_problem_is_bit_identical_to_the_tuner() {
        // The acceptance bar of the problems refactor: porting inlining
        // onto the Problem trait must not change a single bit of a
        // tuning run — same best genome, same fitness bits, same
        // generation history.
        let t = Tuner::new(task(), training(), AdaptConfig::default());
        let plain = t.tune(cfg());

        let p = crate::build("inline", &task(), &training(), AdaptConfig::default()).unwrap();
        let mut state = GaState::new(p.space().clone(), cfg());
        while !state.step(|genes| p.fitness(genes)) {}
        let ga = state.result();

        assert_eq!(ga.best_genome, plain.params.to_genes());
        assert_eq!(ga.best_fitness.to_bits(), plain.fitness.to_bits());
        assert_eq!(ga.evaluations, plain.ga.evaluations);
        assert_eq!(ga.history, plain.ga.history);
    }

    #[test]
    fn space_matches_the_tasks_table1_ranges() {
        let p = InlineProblem::new(task(), training(), AdaptConfig::default());
        assert_eq!(p.space(), &task().ranges());
        // All thresholds: every gene is an ordered integer magnitude.
        assert!(p.space().kinds().iter().all(|&k| k == GeneKind::Int));
        // Opt pins the hot gene (no profile exists).
        assert_eq!(p.space().gene(4), (135, 135));
    }

    #[test]
    fn describe_decodes_the_genome() {
        let p = InlineProblem::new(task(), training(), AdaptConfig::default());
        let d = p.describe(&InlineParams::jikes_default().to_genes());
        assert!(d.contains("callee_max=23"), "{d}");
    }
}
