//! Compiler-flag selection: *which* optimizations to run, not just how
//! aggressively to inline.
//!
//! The search space is the classic flag-tuning shape (cf. compiler-flag
//! phase-selection work such as FOGA): one categorical gene picking an
//! inlining preset plus boolean toggles over the optimizer's pass
//! pipeline and the compiler choice itself:
//!
//! | gene | kind | meaning |
//! |------|------|---------|
//! | 0 | Cat 0..=3  | inlining preset: off / conservative / default / aggressive |
//! | 1 | Bool | constant propagation on |
//! | 2 | Bool | dead-code elimination on |
//! | 3 | Bool | iterate prop→DCE to a fixpoint (off = single round) |
//! | 4 | Bool | use the optimizing compiler (off = baseline only) |
//!
//! The evaluation reuses the real compilers: gene 4 off prices the
//! benchmark under `compile_all_baseline`; gene 4 on runs the inliner
//! with the preset's parameters and a *gated* pass pipeline per
//! reachable method. With every flag at its default (`[2,1,1,1,1]`) the
//! gated pipeline is instruction-for-instruction the standard
//! `optimize_method` fixpoint, so the default configuration reproduces
//! `jit::measure` under `Opt` exactly and scores fitness 1.
//!
//! The task's *goal* and *arch* apply as usual; the task's scenario is
//! ignored — gene 4 **is** the scenario here.

use std::collections::BTreeMap;

use ga::{GeneKind, Ranges};
use inliner::{inline_method, HotSites, InlineParams};
use ir::size::method_size;
use jit::compile::{compile_all_baseline, CompileLevel, CompiledMethod, VmState};
use jit::exec::exec_cycles;
use jit::passes::{const_prop, dce, PassStats};
use jit::Measurement;
use tuner::{geometric_mean, TuningTask};
use workloads::Benchmark;

use crate::Problem;

/// Number of genes in the flag space.
pub const N_GENES: usize = 5;

/// The default flag configuration: Jikes-default inlining, both passes
/// on, fixpoint iteration, optimizing compiler. Scores fitness 1.
pub const DEFAULT_GENES: [i64; N_GENES] = [2, 1, 1, 1, 1];

/// Names of the inlining presets gene 0 selects.
const PRESETS: [&str; 4] = ["off", "conservative", "default", "aggressive"];

fn preset_params(p: i64) -> InlineParams {
    match p {
        0 => InlineParams::disabled(),
        1 => InlineParams::from_genes(&[10, 5, 2, 1024, 135]),
        2 => InlineParams::jikes_default(),
        3 => InlineParams::from_genes(&[40, 25, 12, 4000, 135]),
        other => panic!("inline preset gene out of range: {other}"),
    }
}

/// A decoded flag genome.
#[derive(Debug, Clone, Copy)]
struct FlagConfig {
    preset: i64,
    prop: bool,
    dce: bool,
    fixpoint: bool,
    opt: bool,
}

impl FlagConfig {
    fn decode(genes: &[i64]) -> Self {
        assert_eq!(
            genes.len(),
            N_GENES,
            "flag genome must have {N_GENES} genes"
        );
        FlagConfig {
            preset: genes[0],
            prop: genes[1] != 0,
            dce: genes[2] != 0,
            fixpoint: genes[3] != 0,
            opt: genes[4] != 0,
        }
    }
}

/// The gated pass pipeline: `optimize_method` with each pass behind its
/// flag. All flags on reproduces `optimize_method` exactly (same 64
/// round backstop, same stop condition).
fn run_gated_passes(method: &mut ir::Method, cfg: FlagConfig) -> PassStats {
    let mut stats = PassStats::default();
    let max_rounds = if cfg.fixpoint { 64 } else { 1 };
    for round in 1..=max_rounds {
        stats.rounds = round;
        let folded = if cfg.prop { const_prop(method) } else { 0 };
        let removed = if cfg.dce { dce(method) } else { 0 };
        stats.folded += folded;
        stats.removed += removed;
        if folded == 0 && removed == 0 {
            break;
        }
    }
    stats
}

/// Measures one benchmark program under a flag configuration, in the
/// shape of `jit::measure` so [`tuner::Goal::metric`] applies directly.
fn measure_flags(program: &ir::Program, arch: &jit::ArchModel, cfg: FlagConfig) -> Measurement {
    let state = if cfg.opt {
        let params = preset_params(cfg.preset);
        let hot = HotSites::new();
        let mut state = VmState {
            program: program.clone(),
            compiled: BTreeMap::new(),
        };
        for id in program.reachable() {
            let (mut method, inline_stats) = inline_method(program, id, &params, &hot);
            let opt_stats = run_gated_passes(&mut method, cfg);
            let compile_cycles = arch.opt_compile_cycles(inline_stats.final_size);
            let code_size = method_size(&method);
            state.program.methods[id.index()] = method;
            state.compiled.insert(
                id,
                CompiledMethod {
                    level: CompileLevel::Opt,
                    code_size,
                    original_size: method_size(program.method(id)),
                    inline_stats,
                    opt_stats,
                    compile_cycles,
                },
            );
        }
        state
    } else {
        compile_all_baseline(program, arch)
    };

    let steady = exec_cycles(&state, arch);
    let compile = state.total_compile_cycles();
    let n_opt = state
        .compiled
        .values()
        .filter(|c| c.level == CompileLevel::Opt)
        .count();
    let n_base = state.compiled.len() - n_opt;
    Measurement {
        total_cycles: compile + steady.total_cycles,
        running_cycles: steady.total_cycles,
        compile_cycles: compile,
        baseline_compile_cycles: if cfg.opt { 0.0 } else { compile },
        opt_compile_cycles: if cfg.opt { compile } else { 0.0 },
        first_iter_exec_cycles: steady.total_cycles,
        steady,
        code_size: state.total_code_size(),
        inline_stats: state.aggregate_inline_stats(),
        n_opt_methods: n_opt,
        n_baseline_methods: n_base,
    }
}

/// The compiler-flag selection problem.
pub struct FlagsProblem {
    task: TuningTask,
    training: Vec<Benchmark>,
    space: Ranges,
    fingerprint: stored::Fingerprint,
    /// Per-benchmark measurement under [`DEFAULT_GENES`] — the fitness
    /// normalization constants and balance factors.
    defaults: Vec<Measurement>,
}

impl FlagsProblem {
    /// Builds the flag problem over a task's goal/arch and a suite.
    ///
    /// # Panics
    /// Panics if the training suite is empty.
    #[must_use]
    pub fn new(task: TuningTask, training: Vec<Benchmark>) -> Self {
        assert!(!training.is_empty(), "training suite must not be empty");
        let fingerprint = crate::tagged_fingerprint("flags", &task, &training);
        let default_cfg = FlagConfig::decode(&DEFAULT_GENES);
        let defaults = training
            .iter()
            .map(|b| measure_flags(&b.program, &task.arch, default_cfg))
            .collect();
        let space = Ranges::with_kinds(
            vec![(0, 3), (0, 1), (0, 1), (0, 1), (0, 1)],
            vec![
                GeneKind::Cat,
                GeneKind::Bool,
                GeneKind::Bool,
                GeneKind::Bool,
                GeneKind::Bool,
            ],
        );
        Self {
            task,
            training,
            space,
            fingerprint,
            defaults,
        }
    }
}

impl Problem for FlagsProblem {
    fn id(&self) -> &'static str {
        "flags"
    }

    fn space(&self) -> &Ranges {
        &self.space
    }

    fn fitness(&self, genes: &[i64]) -> f64 {
        let cfg = FlagConfig::decode(genes);
        let mut ratios = Vec::with_capacity(self.training.len());
        for (b, default) in self.training.iter().zip(&self.defaults) {
            let m = measure_flags(&b.program, &self.task.arch, cfg);
            let num = self.task.goal.metric(&m, default);
            let den = self.task.goal.metric(default, default);
            if den <= 0.0 {
                return f64::INFINITY;
            }
            ratios.push(num / den);
        }
        geometric_mean(&ratios)
    }

    fn fingerprint(&self) -> &stored::Fingerprint {
        &self.fingerprint
    }

    fn describe(&self, genes: &[i64]) -> String {
        let cfg = FlagConfig::decode(genes);
        let onoff = |b: bool| if b { "on" } else { "off" };
        format!(
            "[inline={}, const_prop={}, dce={}, fixpoint={}, compiler={}]",
            PRESETS[cfg.preset as usize],
            onoff(cfg.prop),
            onoff(cfg.dce),
            onoff(cfg.fixpoint),
            if cfg.opt { "opt" } else { "baseline" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit::AdaptConfig;
    use tuner::Goal;
    use workloads::benchmark_by_name;

    fn problem() -> FlagsProblem {
        FlagsProblem::new(
            TuningTask {
                name: "Opt:Tot".into(),
                scenario: jit::Scenario::Opt,
                goal: Goal::Total,
                arch: jit::ArchModel::pentium4(),
            },
            vec![benchmark_by_name("db").unwrap()],
        )
    }

    #[test]
    fn default_flags_score_exactly_one() {
        let p = problem();
        let f = p.fitness(&DEFAULT_GENES);
        assert!((f - 1.0).abs() < 1e-12, "fitness {f}");
    }

    #[test]
    fn default_flags_reproduce_jit_measure_opt_bit_exactly() {
        // The gated pipeline with every flag on must be the standard
        // pipeline, not an approximation of it.
        let b = benchmark_by_name("db").unwrap();
        let arch = jit::ArchModel::pentium4();
        let ours = measure_flags(&b.program, &arch, FlagConfig::decode(&DEFAULT_GENES));
        let real = jit::measure(
            &b.program,
            jit::Scenario::Opt,
            &arch,
            &InlineParams::jikes_default(),
            &AdaptConfig::default(),
        );
        assert_eq!(ours, real);
    }

    #[test]
    fn the_space_is_mixed_categorical_boolean() {
        let p = problem();
        assert_eq!(p.space().len(), N_GENES);
        assert_eq!(p.space().kind(0), GeneKind::Cat);
        assert!((1..N_GENES).all(|i| p.space().kind(i) == GeneKind::Bool));
        assert!(p.space().contains(&DEFAULT_GENES));
        // 4 presets × 2^4 toggles = 64 configurations.
        assert_eq!(p.space().cardinality(), 64);
    }

    #[test]
    fn flags_actually_move_the_metric() {
        let p = problem();
        let default = p.fitness(&DEFAULT_GENES);
        let baseline_only = p.fitness(&[2, 1, 1, 1, 0]);
        let no_inline = p.fitness(&[0, 1, 1, 1, 1]);
        assert_ne!(default.to_bits(), baseline_only.to_bits());
        assert_ne!(default.to_bits(), no_inline.to_bits());
        // The baseline compiler's code runs slower and the default here
        // includes compile time, so baseline-only total time differs
        // measurably (and every configuration stays finite).
        for genes in [[2, 1, 1, 1, 0], [0, 0, 0, 0, 1], [3, 1, 0, 1, 1]] {
            assert!(p.fitness(&genes).is_finite());
        }
    }

    #[test]
    fn fitness_is_deterministic() {
        let p = problem();
        let genes = [3, 1, 0, 0, 1];
        assert_eq!(p.fitness(&genes).to_bits(), p.fitness(&genes).to_bits());
    }

    #[test]
    fn describe_decodes_every_flag() {
        let p = problem();
        let d = p.describe(&[1, 1, 0, 1, 1]);
        assert!(d.contains("conservative"), "{d}");
        assert!(d.contains("dce=off"), "{d}");
        assert!(d.contains("compiler=opt"), "{d}");
        assert!(p.describe(&[0, 0, 0, 0, 0]).contains("baseline"));
    }
}
