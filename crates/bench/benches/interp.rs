//! Benchmarks the reference interpreter (used by the correctness tests,
//! not the cost model — but its speed bounds property-test throughput).

use criterion::{criterion_group, criterion_main, Criterion};
use ir::builder::demo_program;
use ir::interp::{run, InterpLimits};
use ir::testgen::{random_program, GenConfig};
use simrng::Rng;

fn bench_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp");
    let demo = demo_program();
    let limits = InterpLimits::default();
    group.bench_function("demo_program", |b| {
        b.iter(|| run(&demo, &[], &limits).unwrap());
    });
    let mut rng = Rng::seed_from_u64(3);
    let random = random_program(&mut rng, &GenConfig::default());
    group.bench_function("random_program", |b| {
        b.iter(|| run(&random, &[], &limits));
    });
    group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
