//! Benchmarks synthetic benchmark generation and the analytic frequency
//! analysis that every cost evaluation runs.

use criterion::{criterion_group, criterion_main, Criterion};
use itbench::{large_benchmark, medium_benchmark};
use workloads::{benchmark_by_name, generate};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);
    let jess_spec = benchmark_by_name("jess").unwrap().spec;
    group.bench_function("generate/jess", |b| {
        b.iter(|| generate(&jess_spec, 42));
    });
    let antlr_spec = benchmark_by_name("antlr").unwrap().spec;
    group.bench_function("generate/antlr", |b| {
        b.iter(|| generate(&antlr_spec, 42));
    });
    let jess = medium_benchmark().program;
    let antlr = large_benchmark().program;
    group.bench_function("freq_analysis/jess", |b| {
        b.iter(|| ir::freq::analyze(&jess, 1.0));
    });
    group.bench_function("freq_analysis/antlr", |b| {
        b.iter(|| ir::freq::analyze(&antlr, 1.0));
    });
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
