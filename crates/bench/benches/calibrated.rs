//! Criterion mirror of the `perfgate` calibrated gates: the same four
//! hot paths (genome evaluation, store put/get, dispatch ledger), plus
//! the calibration kernel itself so a criterion report can be read in
//! the same machine-relative units the gates use.
//!
//! `perfgate` (crates/sim) is the CI-facing side: best-of-N wall
//! timings against `obs::calib` thresholds, no external dependencies.
//! This bench is the developer-facing side: full criterion statistics
//! over the identical operations, for when a gate trips and the
//! question becomes *which part* regressed. Keep the operation bodies
//! in sync with `perfgate` — a drift between them makes the criterion
//! numbers useless for diagnosing a gate failure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use served::dispatch::BatchLedger;
use stored::{digest_parts, Fingerprint, Record, Store, FEATURES};
use tuner::paper_tasks;
use workloads::benchmark_by_name;

/// The same inlining problem `perfgate` evaluates: Opt:Tot over the
/// sim's one-benchmark suite.
fn problem() -> std::sync::Arc<dyn problems::Problem> {
    let task = paper_tasks()
        .into_iter()
        .find(|t| t.name == "Opt:Tot")
        .expect("Opt:Tot is a paper task");
    let suite = vec![benchmark_by_name("db").expect("db exists").clone()];
    problems::build("inline", &task, &suite, jit::AdaptConfig::default())
        .expect("inline problem builds")
}

fn synthetic_records(n: i64) -> Vec<Record> {
    let fp = Fingerprint {
        cell_digest: digest_parts(&["calibrated-bench"]),
        arch: "x86-p4".into(),
        features: (0..FEATURES).map(|f| f as f64).collect(),
        problem: "inline".into(),
    };
    (0..n)
        .map(|i| Record {
            fingerprint: fp.clone(),
            genome: vec![i, i * 7 % 97, i % 13, 1, 135],
            fitness: 1.0 - i as f64 / 1024.0,
        })
        .collect()
}

fn bench_calibrated(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibrated");

    // The reference unit: everything below is judged in multiples of
    // this kernel's median by the gates.
    group.bench_function("kernel/600k_rounds", |b| {
        b.iter(|| obs::calib::kernel(black_box(600_000)));
    });

    let p = problem();
    let mut rng = simrng::child_rng(1, "perfgate/genomes");
    let genomes: Vec<Vec<i64>> = (0..16).map(|_| p.space().random(&mut rng)).collect();
    group.bench_function("genome_eval/16", |b| {
        b.iter(|| {
            for g in &genomes {
                black_box(p.fitness(g));
            }
        });
    });

    let records = synthetic_records(256);
    let scratch = std::env::temp_dir().join(format!("calibrated-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut round = 0u64;
    group.bench_function("store_put/256_durable", |b| {
        b.iter(|| {
            let dir = scratch.join(format!("put-{round}"));
            round += 1;
            let store = Store::open(&dir).expect("scratch store opens");
            for rec in &records {
                store.append(rec).expect("bench append");
            }
        });
    });
    let store = Store::open(scratch.join("get")).expect("scratch store opens");
    for rec in &records {
        store.append(rec).expect("seed append");
    }
    group.bench_function("store_get/256", |b| {
        b.iter(|| {
            for rec in &records {
                black_box(store.get(rec.fingerprint.cell_digest, &rec.genome));
            }
        });
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&scratch);

    group.bench_function("dispatch_ledger/4096_claim_resolve", |b| {
        b.iter(|| {
            let ledger = BatchLedger::new(4096, 0);
            loop {
                let claimed = ledger.claim(64);
                if claimed.is_empty() {
                    break;
                }
                for idx in claimed {
                    assert!(ledger.resolve(idx, 1.0));
                }
            }
            ledger.remaining()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_calibrated);
criterion_main!(benches);
