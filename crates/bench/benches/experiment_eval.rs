//! Benchmarks one full GA fitness evaluation — the paper's unit of
//! off-line tuning work (20 individuals × 500 generations of these).

use criterion::{criterion_group, criterion_main, Criterion};
use itbench::default_params;
use jit::{AdaptConfig, ArchModel, Scenario};
use tuner::{Goal, Tuner, TuningTask};
use workloads::specjvm98;

fn bench_fitness(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_eval");
    group.sample_size(10);
    let training = specjvm98();
    for (name, scenario, goal) in [
        ("opt_total", Scenario::Opt, Goal::Total),
        ("adapt_balance", Scenario::Adapt, Goal::Balance),
    ] {
        let tuner = Tuner::new(
            TuningTask {
                name: name.into(),
                scenario,
                goal,
                arch: ArchModel::pentium4(),
            },
            training.clone(),
            AdaptConfig::default(),
        );
        group.bench_function(format!("specjvm98_fitness/{name}"), |b| {
            b.iter(|| tuner.fitness(&default_params()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fitness);
criterion_main!(benches);
