//! Benchmarks one full §5 measurement (compile + cost model), the unit
//! the GA pays per benchmark per genome.

use criterion::{criterion_group, criterion_main, Criterion};
use itbench::{default_params, large_benchmark, medium_benchmark, small_benchmark};
use jit::{measure, AdaptConfig, ArchModel, Scenario};

fn bench_measure(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    let arch = ArchModel::pentium4();
    let cfg = AdaptConfig::default();
    for (label, bench) in [
        ("db", small_benchmark()),
        ("jess", medium_benchmark()),
        ("antlr", large_benchmark()),
    ] {
        let p = bench.program;
        group.bench_function(format!("opt/{label}"), |b| {
            b.iter(|| measure(&p, Scenario::Opt, &arch, &default_params(), &cfg));
        });
        group.bench_function(format!("adapt/{label}"), |b| {
            b.iter(|| measure(&p, Scenario::Adapt, &arch, &default_params(), &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_measure);
criterion_main!(benches);
