//! Benchmarks the GA machinery: operators in isolation and whole runs on
//! a cheap landscape (so engine overhead dominates, not the fitness).

use criterion::{criterion_group, criterion_main, Criterion};
use ga::{GaConfig, GeneticAlgorithm, Ranges};
use simrng::Rng;

fn ranges() -> Ranges {
    Ranges::new(vec![(1, 50), (1, 30), (1, 15), (1, 4000), (1, 400)])
}

fn bench_ga(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga");
    group.bench_function("operators/breed_1000", |b| {
        let r = ranges();
        let mut rng = Rng::seed_from_u64(1);
        let pop: Vec<Vec<i64>> = (0..20).map(|_| r.random(&mut rng)).collect();
        let fitness: Vec<f64> = (0..20).map(|i| i as f64).collect();
        b.iter(|| {
            let mut acc = 0i64;
            for _ in 0..1000 {
                let pa = ga::ops::tournament(&fitness, 2, &mut rng);
                let pb = ga::ops::tournament(&fitness, 2, &mut rng);
                let (mut x, y) = ga::ops::one_point_crossover(&pop[pa], &pop[pb], &mut rng);
                ga::ops::mutate(&mut x, &r, 0.25, &mut rng);
                acc = acc.wrapping_add(x[0]).wrapping_add(y[4]);
            }
            acc
        });
    });
    group.bench_function("engine/sphere_20x50", |b| {
        b.iter(|| {
            GeneticAlgorithm::new(
                ranges(),
                GaConfig {
                    pop_size: 20,
                    generations: 50,
                    stagnation_limit: None,
                    threads: 1,
                    seed: 5,
                    ..GaConfig::default()
                },
            )
            .run(|g| g.iter().map(|&v| (v - 7) as f64 * (v - 7) as f64).sum())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ga);
criterion_main!(benches);
