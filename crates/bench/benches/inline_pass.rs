//! Benchmarks the inlining transformation itself: per-method and
//! whole-program passes, default vs maximally aggressive parameters.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use inliner::{inline_method, inline_program, HotSites};
use itbench::{
    aggressive_params, default_params, large_benchmark, medium_benchmark, small_benchmark,
};

fn bench_inline(c: &mut Criterion) {
    let mut group = c.benchmark_group("inline_pass");
    group.sample_size(10);
    for (label, bench) in [
        ("db", small_benchmark()),
        ("jess", medium_benchmark()),
        ("antlr", large_benchmark()),
    ] {
        let program = bench.program;
        let ids: Vec<_> = program.methods.iter().map(|m| m.id).collect();
        let hot = HotSites::new();
        group.bench_function(format!("program_default/{label}"), |b| {
            b.iter_batched(
                || (),
                |()| inline_program(&program, &default_params(), &hot, &ids),
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("program_aggressive/{label}"), |b| {
            b.iter_batched(
                || (),
                |()| inline_program(&program, &aggressive_params(), &hot, &ids),
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("single_method_entry/{label}"), |b| {
            b.iter(|| inline_method(&program, program.entry, &default_params(), &hot));
        });
    }
    group.finish();
}

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_passes");
    group.sample_size(10);
    for (label, bench) in [("db", small_benchmark()), ("jess", medium_benchmark())] {
        let program = bench.program;
        let ids: Vec<_> = program.methods.iter().map(|m| m.id).collect();
        let hot = HotSites::new();
        let (inlined, _) = inline_program(&program, &default_params(), &hot, &ids);
        group.bench_function(format!("optimize_program/{label}"), |b| {
            b.iter_batched(
                || inlined.clone(),
                |mut p| {
                    let ids: Vec<_> = p.methods.iter().map(|m| m.id).collect();
                    for id in ids {
                        jit::passes::optimize_method(p.method_mut(id));
                    }
                    p
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inline, bench_passes);
criterion_main!(benches);
