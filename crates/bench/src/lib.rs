//! Shared fixtures for the `inlinetune` Criterion benchmarks.
//!
//! The benches measure the *reproduction system itself* (how fast is an
//! inlining pass, a cost-model evaluation, a GA generation), because the
//! wall-clock of one fitness evaluation × 20 individuals × hundreds of
//! generations is what determines whether the paper's off-line tuning
//! loop is practical.

use inliner::InlineParams;
use workloads::{benchmark_by_name, Benchmark};

/// A small training benchmark (84 methods).
#[must_use]
pub fn small_benchmark() -> Benchmark {
    benchmark_by_name("db").expect("db exists")
}

/// A mid-size training benchmark (≈350 methods).
#[must_use]
pub fn medium_benchmark() -> Benchmark {
    benchmark_by_name("jess").expect("jess exists")
}

/// A large test benchmark (≈1500 methods).
#[must_use]
pub fn large_benchmark() -> Benchmark {
    benchmark_by_name("antlr").expect("antlr exists")
}

/// The Jikes default parameter vector.
#[must_use]
pub fn default_params() -> InlineParams {
    InlineParams::jikes_default()
}

/// An aggressive vector (maximum growth) — the worst case for the
/// inliner's and the cost model's wall-clock.
#[must_use]
pub fn aggressive_params() -> InlineParams {
    InlineParams {
        callee_max_size: 50,
        always_inline_size: 30,
        max_inline_depth: 15,
        caller_max_size: 4000,
        hot_callee_max_size: 400,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_resolve() {
        assert!(
            small_benchmark().program.method_count() < medium_benchmark().program.method_count()
        );
        assert!(
            medium_benchmark().program.method_count() < large_benchmark().program.method_count()
        );
        assert_eq!(default_params().callee_max_size, 23);
    }
}
