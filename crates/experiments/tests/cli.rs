//! End-to-end tests of the `experiments` binary: commands run, print the
//! right artifacts, and write the promised CSVs.

use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tmp_out(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("inlinetune-cli-{tag}-{}", std::process::id()))
}

#[test]
fn table1_prints_all_parameters() {
    let dir = tmp_out("t1");
    let (stdout, _, ok) = run(&["table1", "--out", dir.to_str().unwrap()]);
    assert!(ok);
    for name in inliner::PARAM_NAMES {
        assert!(stdout.contains(name), "missing {name}");
    }
    assert!(dir.join("table1.csv").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig1_writes_both_subfigures() {
    let dir = tmp_out("f1");
    let (stdout, _, ok) = run(&["fig1", "--out", dir.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("Figure 1(a)"));
    assert!(stdout.contains("Figure 1(b)"));
    assert!(stdout.contains("average"));
    assert!(dir.join("fig1a.csv").exists());
    assert!(dir.join("fig1b.csv").exists());
    let csv = std::fs::read_to_string(dir.join("fig1a.csv")).unwrap();
    assert!(csv.starts_with("benchmark,running,total"));
    assert_eq!(csv.lines().count(), 1 + 7 + 1, "7 benchmarks + average");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn missing_command_fails_with_usage() {
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let (_, stderr, ok) = run(&["table1", "--gens", "not-a-number"]);
    assert!(!ok);
    assert!(stderr.contains("--gens"));
}

#[test]
fn fig6_with_tiny_budget_tunes_and_persists() {
    let dir = tmp_out("f6");
    let (stdout, _, ok) = run(&[
        "fig6",
        "--out",
        dir.to_str().unwrap(),
        "--gens",
        "2",
        "--pop",
        "6",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Figure 6(a)"));
    assert!(stdout.contains("Figure 6(b)"));
    assert!(dir.join("tuned_params.csv").exists(), "params persisted");
    // A second invocation reuses the persisted params (fast path).
    let (stdout2, _, ok2) = run(&["fig6", "--out", dir.to_str().unwrap()]);
    assert!(ok2);
    assert!(stdout2.contains("tuned params"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inspect_lists_every_benchmark() {
    let dir = tmp_out("ins");
    let (stdout, _, ok) = run(&["inspect", "--out", dir.to_str().unwrap()]);
    assert!(ok);
    for name in [
        "compress",
        "jess",
        "db",
        "javac",
        "mpegaudio",
        "raytrace",
        "jack",
        "antlr",
        "fop",
        "jython",
        "pmd",
        "ps",
        "ipsixql",
        "pseudojbb",
    ] {
        assert!(stdout.contains(name), "missing {name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dump_serializes_a_benchmark_round_trip_verified() {
    let dir = tmp_out("dump");
    let (stdout, _, ok) = run(&["dump", "db", "--out", dir.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("round-trip verified"));
    let path = dir.join("ir/db.ir");
    let text = std::fs::read_to_string(&path).unwrap();
    let p = ir::parse::parse_program(&text).unwrap();
    assert_eq!(p.name, "db");
    assert!(ir::validate::validate(&p).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dump_without_operand_reports_usage() {
    let (_, stderr, ok) = run(&["dump"]);
    assert!(ok, "graceful");
    assert!(stderr.contains("usage"));
}
