//! Table 1: the tuned parameters, their descriptions and search ranges.
//!
//! Static content — rendered so `experiments all` reproduces every table,
//! and cross-checked against the machine-readable ranges the GA actually
//! searches.

use inliner::{ParamRanges, PARAM_NAMES};

use crate::table::Table;

/// Human descriptions, in genome order (paper Table 1 wording).
pub const DESCRIPTIONS: [&str; 5] = [
    "Maximum callee size allowable to inline",
    "Callee methods less than this size are always inlined",
    "Maximum inlining depth at a particular call site",
    "Maximum caller size to inline into",
    "Maximum hot callee to inline",
];

/// Renders Table 1.
#[must_use]
pub fn run() -> Table {
    let ranges = ParamRanges::paper();
    let mut t = Table::new(&["Inlining Parameter", "Description", "Range"]);
    for ((name, desc), (lo, hi)) in PARAM_NAMES.iter().zip(DESCRIPTIONS).zip(ranges.bounds) {
        t.row(vec![
            (*name).to_string(),
            desc.to_string(),
            format!("{lo}-{hi}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_parameters_with_paper_ranges() {
        let t = run();
        assert_eq!(t.len(), 5);
        let rendered = t.render();
        assert!(rendered.contains("CALLEE_MAX_SIZE"));
        assert!(rendered.contains("1-50"));
        assert!(rendered.contains("1-4000"));
        assert!(rendered.contains("1-400"));
    }
}
