//! Per-parameter sensitivity sweeps — the generalization of the paper's
//! Figure 2 (which sweeps only `MAX_INLINE_DEPTH`) to all five
//! parameters.
//!
//! For each parameter, every other parameter is held at the Jikes default
//! while the swept one walks a log-ish grid over its Table 1 range; the
//! output is total (and running) time per benchmark. This is the
//! "parameter sensitivity" evidence of §2, produced for every knob.

use inliner::{InlineParams, ParamRanges, PARAM_NAMES};
use jit::{measure, ArchModel, Scenario};

use crate::table::{ratio, Table};
use crate::Context;

/// Grid points for one parameter: range endpoints plus a geometric ladder.
#[must_use]
pub fn grid(lo: i64, hi: i64, points: usize) -> Vec<i64> {
    assert!(lo >= 0 && hi >= lo && points >= 2);
    let mut out = vec![lo];
    let (flo, fhi) = (lo.max(1) as f64, hi as f64);
    for k in 1..points - 1 {
        let t = k as f64 / (points - 1) as f64;
        let v = (flo * (fhi / flo).powf(t)).round() as i64;
        out.push(v.clamp(lo, hi));
    }
    out.push(hi);
    out.dedup();
    out
}

/// One parameter's sweep on one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Parameter index (into [`PARAM_NAMES`]).
    pub param: usize,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// `(value, running_ratio, total_ratio)` relative to the default
    /// vector.
    pub points: Vec<(i64, f64, f64)>,
}

impl Sweep {
    /// The swept value minimizing total time.
    #[must_use]
    pub fn best_total(&self) -> i64 {
        self.points
            .iter()
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .map_or(0, |p| p.0)
    }
}

/// Sweeps one parameter over a benchmark under a scenario.
#[must_use]
pub fn sweep_param(
    ctx: &Context,
    benchmark: &str,
    param: usize,
    scenario: Scenario,
    points: usize,
) -> Option<Sweep> {
    let b = ctx
        .training
        .iter()
        .chain(&ctx.test)
        .find(|b| b.name() == benchmark)?;
    let arch = ArchModel::pentium4();
    let default = measure(
        &b.program,
        scenario,
        &arch,
        &InlineParams::jikes_default(),
        &ctx.adapt_cfg,
    );
    let (lo, hi) = ParamRanges::paper().bounds[param];
    let pts = grid(lo, hi, points)
        .into_iter()
        .map(|v| {
            let mut genes = InlineParams::jikes_default().to_genes();
            genes[param] = v;
            let m = measure(
                &b.program,
                scenario,
                &arch,
                &InlineParams::from_genes(&genes),
                &ctx.adapt_cfg,
            );
            (
                v,
                m.running_cycles / default.running_cycles,
                m.total_cycles / default.total_cycles,
            )
        })
        .collect();
    Some(Sweep {
        param,
        benchmark: b.name(),
        points: pts,
    })
}

/// Renders a set of sweeps of the same parameter (one row per value, one
/// column pair per benchmark).
#[must_use]
pub fn to_table(sweeps: &[Sweep]) -> Table {
    assert!(!sweeps.is_empty());
    let mut header = vec![PARAM_NAMES[sweeps[0].param].to_string()];
    for s in sweeps {
        header.push(format!("{} run", s.benchmark));
        header.push(format!("{} tot", s.benchmark));
    }
    let refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&refs);
    for i in 0..sweeps[0].points.len() {
        let mut row = vec![sweeps[0].points[i].0.to_string()];
        for s in sweeps {
            row.push(ratio(s.points[i].1));
            row.push(ratio(s.points[i].2));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_endpoints_geometrically() {
        let g = grid(1, 4000, 8);
        assert_eq!(*g.first().unwrap(), 1);
        assert_eq!(*g.last().unwrap(), 4000);
        assert!(g.windows(2).all(|w| w[0] < w[1]), "{g:?}");
        // Geometric: early gaps small, late gaps big.
        assert!(g[1] - g[0] < g[g.len() - 1] - g[g.len() - 2]);
    }

    #[test]
    fn sweep_produces_ratios_relative_to_default() {
        let ctx = Context::new(
            std::env::temp_dir().join("sweep-test"),
            Context::default_ga(),
        );
        let s = sweep_param(&ctx, "db", 0, Scenario::Opt, 6).unwrap();
        assert_eq!(s.param, 0);
        assert!(s.points.len() >= 5);
        // The default value (23) is inside the range, so the best total
        // can't be much worse than 1.
        let best = s.points.iter().map(|p| p.2).fold(f64::INFINITY, f64::min);
        assert!(best <= 1.01, "best total ratio {best}");
        assert!(to_table(&[s]).render().contains("CALLEE_MAX_SIZE"));
    }

    #[test]
    fn unknown_benchmark_returns_none() {
        let ctx = Context::new(
            std::env::temp_dir().join("sweep-test2"),
            Context::default_ga(),
        );
        assert!(sweep_param(&ctx, "nope", 0, Scenario::Opt, 4).is_none());
    }
}
