//! `experiments inspect` — structural and dynamic statistics of the
//! synthetic benchmark suites, for checking suite calibration against the
//! bands DESIGN.md promises (accessor mass below `ALWAYS_INLINE_SIZE`,
//! DaCapo method populations 5–20× SPEC's, etc.).

use ir::stats::program_stats;

use crate::table::{ratio, Table};
use crate::Context;

/// Renders one row per benchmark (both suites).
#[must_use]
pub fn run(ctx: &Context) -> Table {
    let mut t = Table::new(&[
        "benchmark",
        "suite",
        "methods",
        "sites",
        "size p50",
        "size p90",
        "size max",
        "tiny%",
        "<=23%",
        "total size",
        "dyn calls",
    ]);
    for b in ctx.training.iter().chain(&ctx.test) {
        let s = program_stats(&b.program);
        t.row(vec![
            b.name().to_string(),
            b.spec.suite.to_string(),
            s.n_methods.to_string(),
            s.n_call_sites.to_string(),
            format!("{:.0}", s.sizes.p50),
            format!("{:.0}", s.sizes.p90),
            format!("{:.0}", s.sizes.max),
            ratio(s.tiny_fraction),
            ratio(s.inlinable_fraction),
            s.total_size.to_string(),
            format!("{:.0}", s.dynamic_calls),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inspect_covers_all_fourteen_benchmarks() {
        let ctx = Context::new(
            std::env::temp_dir().join("inspect-test"),
            Context::default_ga(),
        );
        let t = run(&ctx);
        assert_eq!(t.len(), 14);
        let r = t.render();
        assert!(r.contains("compress"));
        assert!(r.contains("pseudojbb"));
    }
}
