//! Shared experiment context: suites, GA budget, output directory, and
//! persistence of tuned parameters across harness invocations.

use std::fs;
use std::path::PathBuf;

use ga::GaConfig;
use inliner::InlineParams;
use jit::AdaptConfig;
use workloads::{dacapo_jbb, specjvm98, Benchmark};

/// Everything an experiment needs.
pub struct Context {
    /// The SPECjvm98 training suite.
    pub training: Vec<Benchmark>,
    /// The DaCapo+JBB test suite.
    pub test: Vec<Benchmark>,
    /// Adaptive-system configuration (fixed VM model, not tuned).
    pub adapt_cfg: AdaptConfig,
    /// GA budget used for tuning runs.
    pub ga: GaConfig,
    /// Output directory for CSV results.
    pub out_dir: PathBuf,
}

impl Context {
    /// Standard context: both suites generated, results into `results/`,
    /// and a GA budget that converges in seconds per task (pass
    /// `--full` to the binary for the paper's 20×500 configuration).
    #[must_use]
    pub fn new(out_dir: PathBuf, ga: GaConfig) -> Self {
        Self {
            training: specjvm98(),
            test: dacapo_jbb(),
            adapt_cfg: AdaptConfig::default(),
            ga,
            out_dir,
        }
    }

    /// The default GA budget: the paper's population of 20 with early
    /// stopping — converges in well under a minute per tuning task on one
    /// core while exploring ~1k genomes.
    #[must_use]
    pub fn default_ga() -> GaConfig {
        GaConfig {
            pop_size: 20,
            generations: 80,
            stagnation_limit: Some(25),
            seed: 2005,
            ..GaConfig::default()
        }
    }

    /// The paper's full §3.1 budget (population 20, 500 generations, no
    /// early stop).
    #[must_use]
    pub fn paper_ga() -> GaConfig {
        GaConfig {
            seed: 2005,
            ..GaConfig::paper()
        }
    }

    /// Persists a task's tuned parameters to
    /// `results/tuned_params.csv` (append/overwrite by task name).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_params(&self, task_name: &str, params: &InlineParams) -> std::io::Result<()> {
        let path = self.out_dir.join("tuned_params.csv");
        fs::create_dir_all(&self.out_dir)?;
        let mut entries = self.load_all_params().unwrap_or_default();
        entries.retain(|(name, _)| name != task_name);
        entries.push((task_name.to_string(), *params));
        let mut out =
            String::from("task,callee_max,always_inline,max_depth,caller_max,hot_callee_max\n");
        for (name, p) in &entries {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                name,
                p.callee_max_size,
                p.always_inline_size,
                p.max_inline_depth,
                p.caller_max_size,
                p.hot_callee_max_size
            ));
        }
        fs::write(path, out)
    }

    /// Loads a task's persisted parameters, if any.
    #[must_use]
    pub fn load_params(&self, task_name: &str) -> Option<InlineParams> {
        self.load_all_params()
            .ok()?
            .into_iter()
            .find(|(name, _)| name == task_name)
            .map(|(_, p)| p)
    }

    fn load_all_params(&self) -> std::io::Result<Vec<(String, InlineParams)>> {
        let path = self.out_dir.join("tuned_params.csv");
        let text = fs::read_to_string(path)?;
        let mut out = Vec::new();
        for line in text.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != 6 {
                continue;
            }
            let parse = |s: &str| s.trim().parse::<u32>().ok();
            if let (Some(a), Some(b), Some(c), Some(d), Some(e)) = (
                parse(cells[1]),
                parse(cells[2]),
                parse(cells[3]),
                parse(cells[4]),
                parse(cells[5]),
            ) {
                out.push((
                    cells[0].to_string(),
                    InlineParams {
                        callee_max_size: a,
                        always_inline_size: b,
                        max_inline_depth: c,
                        caller_max_size: d,
                        hot_callee_max_size: e,
                    },
                ));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_roundtrip_through_csv() {
        let dir = std::env::temp_dir().join(format!("inlinetune-ctx-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let ctx = Context {
            training: Vec::new(),
            test: Vec::new(),
            adapt_cfg: AdaptConfig::default(),
            ga: Context::default_ga(),
            out_dir: dir.clone(),
        };
        let p1 = InlineParams::from_genes(&[49, 15, 10, 60, 138]);
        let p2 = InlineParams::from_genes(&[10, 16, 8, 402, 135]);
        ctx.save_params("Adapt", &p1).unwrap();
        ctx.save_params("Opt:Bal", &p2).unwrap();
        // Overwrite by task name.
        ctx.save_params("Adapt", &p2).unwrap();
        assert_eq!(ctx.load_params("Adapt"), Some(p2));
        assert_eq!(ctx.load_params("Opt:Bal"), Some(p2));
        assert_eq!(ctx.load_params("missing"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ga_presets_differ() {
        assert!(Context::paper_ga().generations > Context::default_ga().generations);
        assert_eq!(Context::paper_ga().pop_size, 20);
    }
}
