//! Table 4: the inlining parameter values the genetic algorithm finds for
//! each compilation scenario and architecture.
//!
//! Runs the five paper tuning tasks (§6: `Adapt`, `Opt:Bal`, `Opt:Tot` on
//! x86; `Adapt`, `Opt:Bal` on PPC), each tuned over the SPECjvm98 training
//! suite, and renders the parameter matrix with the Jikes default as the
//! first column. The tuned vectors are persisted so Figures 5–9 and
//! Table 5 reuse them.

use inliner::{InlineParams, PARAM_NAMES};
use tuner::{paper_tasks, TuneOutcome, Tuner};

use crate::table::Table;
use crate::Context;

/// All five tuning outcomes, in paper column order.
pub struct Table4 {
    /// One outcome per task.
    pub outcomes: Vec<TuneOutcome>,
}

impl Table4 {
    /// Renders the parameter matrix (paper Table 4 layout: parameters as
    /// rows, scenarios as columns).
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut header = vec!["Parameter".to_string(), "Default".to_string()];
        for o in &self.outcomes {
            header.push(o.task.name.clone());
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        let default = InlineParams::jikes_default().to_genes();
        for (i, name) in PARAM_NAMES.iter().enumerate() {
            let mut row = vec![(*name).to_string(), default[i].to_string()];
            for o in &self.outcomes {
                let genes = o.params.to_genes();
                // The hot gene is inert under Opt (paper prints "NA").
                let cell = if i == 4 && o.task.scenario == jit::Scenario::Opt {
                    "NA".to_string()
                } else {
                    genes[i].to_string()
                };
                row.push(cell);
            }
            t.row(row);
        }
        t
    }

    /// Renders the per-task GA search summary (fitness, evaluations,
    /// generations) — useful alongside the parameter matrix.
    #[must_use]
    pub fn search_table(&self) -> Table {
        let mut t = Table::new(&[
            "task",
            "fitness",
            "evaluations",
            "cache_hits",
            "generations",
        ]);
        for o in &self.outcomes {
            t.row(vec![
                o.task.name.clone(),
                format!("{:.4}", o.fitness),
                o.ga.evaluations.to_string(),
                o.ga.cache_hits.to_string(),
                o.ga.history.len().to_string(),
            ]);
        }
        t
    }

    /// Per-generation best-fitness history for every task (convergence
    /// curves; not a paper figure but standard GA reporting).
    #[must_use]
    pub fn convergence_table(&self) -> Table {
        let mut header = vec!["generation".to_string()];
        for o in &self.outcomes {
            header.push(o.task.name.clone());
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        let max_gens = self
            .outcomes
            .iter()
            .map(|o| o.ga.history.len())
            .max()
            .unwrap_or(0);
        for g in 0..max_gens {
            let mut row = vec![g.to_string()];
            for o in &self.outcomes {
                let h = &o.ga.history;
                let v = h
                    .get(g)
                    .unwrap_or_else(|| h.last().expect("non-empty history"));
                row.push(format!("{:.5}", v.best_fitness));
            }
            t.row(row);
        }
        t
    }
}

/// Runs all five tuning tasks and persists the tuned parameters.
#[must_use]
pub fn run(ctx: &Context) -> Table4 {
    let outcomes = paper_tasks()
        .into_iter()
        .map(|task| {
            let tuner = Tuner::new(task, ctx.training.clone(), ctx.adapt_cfg);
            let outcome = tuner.tune(ctx.ga.clone());
            let _ = ctx.save_params(&outcome.task.name, &outcome.params);
            outcome
        })
        .collect();
    Table4 { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::GaConfig;

    #[test]
    fn tiny_budget_produces_full_table() {
        let mut ctx = Context::new(
            std::env::temp_dir().join(format!("table4-test-{}", std::process::id())),
            GaConfig {
                pop_size: 6,
                generations: 2,
                threads: 1,
                stagnation_limit: None,
                ..GaConfig::default()
            },
        );
        ctx.training.truncate(1);
        let t4 = run(&ctx);
        assert_eq!(t4.outcomes.len(), 5);
        let table = t4.to_table();
        assert_eq!(table.len(), 5); // five parameter rows
        let rendered = table.render();
        assert!(rendered.contains("Default"));
        assert!(
            rendered.contains("NA"),
            "Opt columns print NA for the hot gene"
        );
        // Params persisted and reloadable.
        assert!(ctx.load_params("Opt:Tot").is_some());
        assert!(!t4.search_table().is_empty());
        assert!(!t4.convergence_table().is_empty());
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
