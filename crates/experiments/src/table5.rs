//! Table 5: the summary — average running/total reductions per
//! compilation scenario for both suites.
//!
//! Assembled from the same evaluations as Figures 5–9 (reusing persisted
//! tuned parameters), rendered in the paper's percent-reduction
//! convention (positive = improvement, negative = degradation).

use crate::figs::{run as run_fig, ScenarioFigure, FIGURE_NUMBERS};
use crate::table::Table;
use crate::Context;

/// The five scenario rows.
pub struct Table5 {
    /// One evaluated figure per scenario row.
    pub figures: Vec<ScenarioFigure>,
}

impl Table5 {
    /// Renders the summary matrix.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(&[
            "Compilation Scenario",
            "SPECjvm98 Running",
            "SPECjvm98 Total",
            "DaCapo+JBB Running",
            "DaCapo+JBB Total",
        ]);
        for f in &self.figures {
            t.row(vec![
                f.task.name.clone(),
                format!("{:.0}%", f.train.running_reduction_pct()),
                format!("{:.0}%", f.train.total_reduction_pct()),
                format!("{:.0}%", f.test.running_reduction_pct()),
                format!("{:.0}%", f.test.total_reduction_pct()),
            ]);
        }
        t
    }
}

/// Evaluates all five scenarios (tuning first where no persisted
/// parameters exist).
#[must_use]
pub fn run(ctx: &Context) -> Table5 {
    let figures = FIGURE_NUMBERS
        .iter()
        .filter_map(|&n| run_fig(ctx, n))
        .collect();
    Table5 { figures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inliner::InlineParams;

    #[test]
    fn summary_has_five_rows_with_paper_layout() {
        let mut ctx = Context::new(
            std::env::temp_dir().join(format!("table5-test-{}", std::process::id())),
            Context::default_ga(),
        );
        ctx.training.truncate(1);
        ctx.test.truncate(1);
        // Seed persisted params for every task so no tuning runs.
        for name in [
            "Adapt",
            "Opt:Bal",
            "Opt:Tot",
            "Adapt (PPC)",
            "Opt:Bal (PPC)",
        ] {
            ctx.save_params(name, &InlineParams::jikes_default())
                .unwrap();
        }
        let t5 = run(&ctx);
        assert_eq!(t5.figures.len(), 5);
        let rendered = t5.to_table().render();
        assert!(rendered.contains("Opt:Tot"));
        assert!(rendered.contains("DaCapo+JBB Total"));
        // Default-vs-default rows are all 0%.
        assert!(rendered.contains("0%"));
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
