//! Figure 10: running-time reduction when tuning the heuristic for each
//! program in turn (§6.5), under the `Opt` scenario on x86.

use jit::ArchModel;
use tuner::{tune_per_program, PerProgramOutcome};

use crate::table::{ratio, Table};
use crate::Context;

/// The per-program tuning results for both suites.
pub struct Fig10 {
    /// SPECjvm98 results (sub-figure a).
    pub train: Vec<PerProgramOutcome>,
    /// DaCapo+JBB results (sub-figure b).
    pub test: Vec<PerProgramOutcome>,
}

impl Fig10 {
    /// Mean running ratio over all programs (the paper quotes a 15%
    /// average reduction).
    #[must_use]
    pub fn mean_running_ratio(&self) -> f64 {
        let all: Vec<f64> = self
            .train
            .iter()
            .chain(&self.test)
            .map(|o| o.running_ratio)
            .collect();
        all.iter().sum::<f64>() / all.len() as f64
    }

    /// Renders one suite's rows (with the specialized parameter vector —
    /// not in the paper's plot, but the actual deliverable).
    #[must_use]
    pub fn to_table(outcomes: &[PerProgramOutcome]) -> Table {
        let mut t = Table::new(&["benchmark", "running", "params", "evaluations"]);
        for o in outcomes {
            t.row(vec![
                o.name.to_string(),
                ratio(o.running_ratio),
                o.params.to_string(),
                o.evaluations.to_string(),
            ]);
        }
        t
    }
}

/// Runs per-program tuning on both suites.
#[must_use]
pub fn run(ctx: &Context) -> Fig10 {
    let arch = ArchModel::pentium4();
    Fig10 {
        train: tune_per_program(&ctx.training, &arch, &ctx.ga, ctx.ga.seed),
        test: tune_per_program(&ctx.test, &arch, &ctx.ga, ctx.ga.seed ^ 0xf16),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::GaConfig;

    #[test]
    fn per_program_results_cover_suites() {
        let mut ctx = Context::new(
            std::env::temp_dir().join("fig10-test"),
            GaConfig {
                pop_size: 6,
                generations: 3,
                threads: 1,
                stagnation_limit: None,
                ..GaConfig::default()
            },
        );
        ctx.training.truncate(1);
        ctx.test.truncate(1);
        let f = run(&ctx);
        assert_eq!(f.train.len(), 1);
        assert_eq!(f.test.len(), 1);
        // Specializing per program can only help (or tie) vs default,
        // modulo tiny search budgets; allow slack.
        assert!(f.mean_running_ratio() < 1.05, "{}", f.mean_running_ratio());
        assert!(Fig10::to_table(&f.train).render().contains("callee_max"));
    }
}
