//! GA-budget study: how much search does the tuning problem actually
//! need?
//!
//! The paper fixes population 20 × 500 generations (§3.1) without
//! justification. This extension sweeps population sizes and generation
//! budgets (and the recombination operator) on one tuning task and
//! reports the fitness reached and the distinct simulator evaluations
//! spent — the evidence behind EXPERIMENTS.md's claim that the landscape
//! plateaus long before the paper's budget.

use ga::{CrossoverKind, GaConfig};
use tuner::{Tuner, TuningTask};

use crate::table::Table;
use crate::Context;

/// One budget cell's outcome.
#[derive(Debug, Clone)]
pub struct BudgetCell {
    /// Population size.
    pub pop: usize,
    /// Generation cap.
    pub gens: usize,
    /// Recombination operator.
    pub kind: CrossoverKind,
    /// Best fitness reached (1.0 = the default heuristic).
    pub fitness: f64,
    /// Distinct simulator evaluations spent.
    pub evaluations: usize,
}

/// The grid swept by [`run`].
#[must_use]
pub fn grid() -> Vec<(usize, usize, CrossoverKind)> {
    vec![
        (8, 20, CrossoverKind::Mixed),
        (20, 20, CrossoverKind::Mixed),
        (20, 80, CrossoverKind::Mixed),
        (20, 80, CrossoverKind::OnePoint),
        (20, 80, CrossoverKind::TwoPoint),
        (20, 80, CrossoverKind::Uniform),
        (40, 80, CrossoverKind::Mixed),
    ]
}

/// Runs the study on the given task (figures use `Opt:Tot` on x86, the
/// paper's headline cell).
#[must_use]
pub fn run(ctx: &Context, task: TuningTask) -> Vec<BudgetCell> {
    let tuner = Tuner::new(task, ctx.training.clone(), ctx.adapt_cfg);
    grid()
        .into_iter()
        .map(|(pop, gens, kind)| {
            let outcome = tuner.tune(GaConfig {
                pop_size: pop,
                generations: gens,
                crossover_kind: kind,
                stagnation_limit: None,
                seed: ctx.ga.seed,
                threads: ctx.ga.threads,
                ..GaConfig::default()
            });
            BudgetCell {
                pop,
                gens,
                kind,
                fitness: outcome.fitness,
                evaluations: outcome.ga.evaluations,
            }
        })
        .collect()
}

/// Renders the study.
#[must_use]
pub fn to_table(cells: &[BudgetCell]) -> Table {
    let mut t = Table::new(&[
        "population",
        "generations",
        "crossover",
        "fitness",
        "evaluations",
    ]);
    for c in cells {
        t.row(vec![
            c.pop.to_string(),
            c.gens.to_string(),
            format!("{:?}", c.kind),
            format!("{:.4}", c.fitness),
            c.evaluations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit::{ArchModel, Scenario};
    use tuner::Goal;

    #[test]
    fn tiny_budget_study_runs_and_orders_sanely() {
        let mut ctx = Context::new(
            std::env::temp_dir().join("budget-test"),
            Context::default_ga(),
        );
        ctx.training.truncate(1);
        let task = TuningTask {
            name: "Opt:Tot".into(),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: ArchModel::pentium4(),
        };
        // Shrink the grid via a local run with two cells' worth of work by
        // reusing run() but trimming afterwards would still compute all
        // cells; instead just check the table machinery with run() on the
        // single-benchmark suite and a couple of cells.
        let tuner = Tuner::new(task, ctx.training.clone(), ctx.adapt_cfg);
        let mut cells = Vec::new();
        for (pop, gens, kind) in [
            (4usize, 2usize, CrossoverKind::Mixed),
            (6, 3, CrossoverKind::TwoPoint),
        ] {
            let outcome = tuner.tune(ga::GaConfig {
                pop_size: pop,
                generations: gens,
                crossover_kind: kind,
                stagnation_limit: None,
                threads: 1,
                seed: 3,
                ..ga::GaConfig::default()
            });
            cells.push(BudgetCell {
                pop,
                gens,
                kind,
                fitness: outcome.fitness,
                evaluations: outcome.ga.evaluations,
            });
        }
        assert!(cells.iter().all(|c| c.fitness.is_finite()));
        assert!(cells[1].evaluations >= cells[0].evaluations);
        let t = to_table(&cells);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("TwoPoint"));
    }

    #[test]
    fn grid_is_nontrivial() {
        assert!(grid().len() >= 5);
    }
}
