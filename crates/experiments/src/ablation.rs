//! Cost-model ablation: which mechanism drives which paper shape?
//!
//! DESIGN.md commits the simulator to five mechanisms: call overhead,
//! inlining synergy, the superlinear compile term, the I-cache footprint
//! penalty and the register-spill penalty. This experiment switches each
//! off in turn and reports the Fig. 1-style inlining-on/off ratios plus
//! the compile-cost ratio, so a reader can verify the causal story:
//!
//! * no call overhead / no synergy → inlining stops paying at run time;
//! * no superlinear term → the compile-cost knee flattens and
//!   `CALLER_MAX_SIZE` loses its meaning;
//! * no I-cache/spill penalty → over-inlining stops costing run time and
//!   the depth sweeps become monotone.

use inliner::InlineParams;
use jit::{measure, ArchModel, Scenario};

use crate::table::{ratio, Table};
use crate::Context;

/// One model variant's aggregate effects.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant name (`full model`, `no call overhead`, …).
    pub variant: &'static str,
    /// SPECjvm98 mean running ratio, default inlining vs none, under Opt.
    pub spec_running: f64,
    /// SPECjvm98 mean total ratio.
    pub spec_total: f64,
    /// DaCapo+JBB mean total ratio.
    pub dacapo_total: f64,
    /// DaCapo+JBB mean compile-cycle ratio (default inlining vs none).
    pub dacapo_compile: f64,
}

/// The model variants: the full model plus one-knob-off versions.
#[must_use]
pub fn variants() -> Vec<(&'static str, ArchModel)> {
    let base = ArchModel::pentium4();
    let mut out = vec![("full model", base.clone())];
    let mut v = base.clone();
    v.call_overhead = 0.0;
    v.call_arg_overhead = 0.0;
    out.push(("no call overhead", v));
    let mut v = base.clone();
    v.inline_synergy = 0.0;
    out.push(("no inline synergy", v));
    let mut v = base.clone();
    v.opt_compile_super_coeff = 0.0;
    out.push(("no superlinear compile", v));
    let mut v = base.clone();
    v.icache_miss_penalty = 0.0;
    out.push(("no icache penalty", v));
    let mut v = base.clone();
    v.spill_penalty = 0.0;
    out.push(("no spill penalty", v));
    out
}

/// Runs the ablation (all variants × both suites).
#[must_use]
pub fn run(ctx: &Context) -> Vec<AblationRow> {
    let on = InlineParams::jikes_default();
    let off = InlineParams::disabled();
    variants()
        .into_iter()
        .map(|(variant, arch)| {
            let mut spec_running = 0.0;
            let mut spec_total = 0.0;
            for b in &ctx.training {
                let w = measure(&b.program, Scenario::Opt, &arch, &on, &ctx.adapt_cfg);
                let wo = measure(&b.program, Scenario::Opt, &arch, &off, &ctx.adapt_cfg);
                spec_running += w.running_cycles / wo.running_cycles;
                spec_total += w.total_cycles / wo.total_cycles;
            }
            spec_running /= ctx.training.len() as f64;
            spec_total /= ctx.training.len() as f64;

            let mut dacapo_total = 0.0;
            let mut dacapo_compile = 0.0;
            for b in &ctx.test {
                let w = measure(&b.program, Scenario::Opt, &arch, &on, &ctx.adapt_cfg);
                let wo = measure(&b.program, Scenario::Opt, &arch, &off, &ctx.adapt_cfg);
                dacapo_total += w.total_cycles / wo.total_cycles;
                dacapo_compile += w.compile_cycles / wo.compile_cycles;
            }
            dacapo_total /= ctx.test.len() as f64;
            dacapo_compile /= ctx.test.len() as f64;

            AblationRow {
                variant,
                spec_running,
                spec_total,
                dacapo_total,
                dacapo_compile,
            }
        })
        .collect()
}

/// Renders the ablation matrix.
#[must_use]
pub fn to_table(rows: &[AblationRow]) -> Table {
    let mut t = Table::new(&[
        "model variant",
        "SPEC run (on/off)",
        "SPEC total",
        "DaCapo total",
        "DaCapo compile",
    ]);
    for r in rows {
        t.row(vec![
            r.variant.to_string(),
            ratio(r.spec_running),
            ratio(r.spec_total),
            ratio(r.dacapo_total),
            ratio(r.dacapo_compile),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> Context {
        let mut ctx = Context::new(
            std::env::temp_dir().join("ablation-test"),
            Context::default_ga(),
        );
        ctx.training.truncate(2);
        ctx.test.truncate(1);
        ctx
    }

    #[test]
    fn variants_cover_every_mechanism() {
        let v = variants();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0].0, "full model");
    }

    #[test]
    fn removing_call_overhead_weakens_inlining_gains() {
        let rows = run(&tiny_ctx());
        let full = &rows[0];
        let no_calls = rows
            .iter()
            .find(|r| r.variant == "no call overhead")
            .unwrap();
        assert!(
            no_calls.spec_running > full.spec_running,
            "without call overhead inlining must help less: {} vs {}",
            no_calls.spec_running,
            full.spec_running
        );
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = run(&tiny_ctx());
        assert_eq!(to_table(&rows).len(), rows.len());
    }
}
