//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section (§2 motivation and §6 results).
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — tuned parameters and their search ranges |
//! | [`fig1`] | Fig. 1 — relative time reduction with inlining on/off |
//! | [`fig2`] | Fig. 2 — execution time vs `MAX_INLINE_DEPTH` (compress, jess) |
//! | [`table4`] | Table 4 — GA-tuned parameter values per scenario/arch |
//! | [`figs`] | Figs. 5–9 — tuned vs default per benchmark, both suites |
//! | [`fig10`] | Fig. 10 — per-program tuning for running time |
//! | [`table5`] | Table 5 — average reductions summary |
//!
//! Everything funnels through [`context::Context`] (suites, architectures,
//! GA budget, output directory) and renders through [`table`] (aligned
//! console tables + CSV files under `results/`).
//!
//! Beyond the paper's artifacts, seven extension commands:
//! [`ablation`] (cost-model mechanism knock-outs), [`sweep`]
//! (per-parameter sensitivity, generalizing Fig. 2 to all five knobs),
//! [`inspect`] (suite calibration statistics), [`budget`] (GA search
//! budget / operator study), [`strategies`] (search-strategy
//! comparison: every pluggable optimizer plus the racing portfolio on
//! all five tuning cells) and [`warmstart`] (cold vs store-seeded
//! transfer tuning: leave-one-out over the five cells, counting
//! evaluations-to-target) and [`online`] (the drift study:
//! adaptive re-tuning vs a frozen incumbent vs a per-epoch oracle
//! under three seeded drift schedules).
//!
//! Tuned parameters are persisted to `results/tuned_params.csv` so that
//! `experiments fig5` can reuse the `table4` tuning run instead of
//! repeating it; `experiments all` runs everything in dependency order.

pub mod ablation;
pub mod budget;
pub mod context;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod figs;
pub mod inspect;
pub mod online;
pub mod problems;
pub mod strategies;
pub mod sweep;
pub mod table;
pub mod table1;
pub mod table4;
pub mod table5;
pub mod warmstart;

pub use context::Context;
