//! Figure 2: execution time versus `MAX_INLINE_DEPTH` for `compress` and
//! `jess` under both compilation scenarios (paper §2, "Parameter
//! Sensitivity").
//!
//! The paper's point — reproduced here — is that the best depth is
//! program- *and* scenario-dependent, and the Jikes default (5) is not the
//! optimum for either program.

use inliner::InlineParams;
use jit::{measure, ArchModel, Scenario};

use crate::table::{secs, Table};
use crate::Context;

/// Depth range swept (the paper varies 0..=10).
pub const DEPTHS: std::ops::RangeInclusive<u32> = 0..=10;

/// One benchmark's sweep.
pub struct Fig2 {
    /// `compress` or `jess`.
    pub benchmark: &'static str,
    /// `(scenario, per-depth total seconds)` series.
    pub series: Vec<(Scenario, Vec<f64>)>,
}

impl Fig2 {
    /// The depth with minimum total time for a scenario.
    #[must_use]
    pub fn best_depth(&self, scenario: Scenario) -> Option<u32> {
        let (_, ys) = self.series.iter().find(|(s, _)| *s == scenario)?;
        let (i, _) = ys.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1))?;
        Some(i as u32)
    }

    /// Renders the sweep as a table: one row per depth.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut header = vec!["depth".to_string()];
        for (s, _) in &self.series {
            header.push(format!("{s} total(s)"));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        for d in DEPTHS {
            let mut row = vec![d.to_string()];
            for (_, ys) in &self.series {
                row.push(secs(ys[d as usize]));
            }
            t.row(row);
        }
        t
    }
}

/// Runs the sweep for the paper's two benchmarks on x86.
#[must_use]
pub fn run(ctx: &Context) -> Vec<Fig2> {
    run_for(ctx, &["compress", "jess"])
}

/// Runs the sweep for arbitrary benchmarks (used by the ablation bench).
#[must_use]
pub fn run_for(ctx: &Context, names: &[&str]) -> Vec<Fig2> {
    let arch = ArchModel::pentium4();
    names
        .iter()
        .filter_map(|name| {
            let b = ctx
                .training
                .iter()
                .chain(&ctx.test)
                .find(|b| b.name() == *name)?;
            let series = [Scenario::Opt, Scenario::Adapt]
                .into_iter()
                .map(|scenario| {
                    let ys = DEPTHS
                        .map(|depth| {
                            let params = InlineParams {
                                max_inline_depth: depth,
                                ..InlineParams::jikes_default()
                            };
                            measure(&b.program, scenario, &arch, &params, &ctx.adapt_cfg)
                                .total_seconds(&arch)
                        })
                        .collect();
                    (scenario, ys)
                })
                .collect();
            Some(Fig2 {
                benchmark: b.name(),
                series,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_both_scenarios_and_all_depths() {
        let ctx = Context::new(
            std::env::temp_dir().join("fig2-test"),
            Context::default_ga(),
        );
        let figs = run_for(&ctx, &["jess"]);
        assert_eq!(figs.len(), 1);
        let f = &figs[0];
        assert_eq!(f.series.len(), 2);
        for (_, ys) in &f.series {
            assert_eq!(ys.len(), 11);
            assert!(ys.iter().all(|&y| y > 0.0));
        }
        assert!(f.best_depth(Scenario::Opt).is_some());
        let t = f.to_table();
        assert_eq!(t.len(), 11);
    }

    #[test]
    fn depth_matters_for_jess_under_opt() {
        // The motivating claim: the sweep is not flat.
        let ctx = Context::new(
            std::env::temp_dir().join("fig2-test2"),
            Context::default_ga(),
        );
        let figs = run_for(&ctx, &["jess"]);
        let (_, ys) = &figs[0].series[0];
        let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ys.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.02, "sweep too flat: {min}..{max}");
    }

    #[test]
    fn unknown_benchmark_is_skipped() {
        let ctx = Context::new(
            std::env::temp_dir().join("fig2-test3"),
            Context::default_ga(),
        );
        assert!(run_for(&ctx, &["nope"]).is_empty());
    }
}
