//! Strategy study: how do the pluggable search strategies compare under
//! the paper's budget?
//!
//! The paper commits to a GA (§3) without comparing it against simpler
//! optimizers. This extension runs every [`search`] strategy — plus the
//! default racing portfolio — over the paper's five scenario/metric
//! cells with the same proposal budget, and reports the best fitness
//! reached against the distinct simulator evaluations actually spent.
//! Random search and the GA burn the whole budget; hill climbing and
//! the race's shared memo spend far fewer evaluations for comparable
//! fitness — the evidence behind EXPERIMENTS.md's strategy notes.

use tuner::{paper_tasks, Tuner, TuningTask};

use crate::table::Table;
use crate::Context;

/// The strategy specs compared by [`run`]: every single strategy plus
/// the default racing portfolio.
pub const SPECS: &[&str] = &["ga", "random", "hillclimb", "anneal", "grid", "race"];

/// One (task, strategy) cell's outcome.
#[derive(Debug, Clone)]
pub struct StrategyCell {
    /// Tuning task name, e.g. `"Opt:Tot"`.
    pub task: String,
    /// Strategy spec, e.g. `"hillclimb"` or `"race"`.
    pub strategy: String,
    /// Best fitness reached (1.0 = the default heuristic).
    pub fitness: f64,
    /// Distinct simulator evaluations spent.
    pub evaluations: usize,
    /// Proposals answered from the memo instead of the simulator.
    pub cache_hits: usize,
    /// Search rounds (GA generations, climber steps, race rounds).
    pub rounds: usize,
}

/// Runs every strategy in [`SPECS`] on one task under `ctx`'s GA budget.
///
/// # Panics
/// Panics if a spec in [`SPECS`] fails to validate — that would be a bug
/// in this module, not an input error.
#[must_use]
pub fn run_task(ctx: &Context, task: &TuningTask) -> Vec<StrategyCell> {
    let tuner = Tuner::new(task.clone(), ctx.training.clone(), ctx.adapt_cfg);
    SPECS
        .iter()
        .map(|spec| {
            let mut s = tuner
                .start_strategy(spec, ctx.ga.clone())
                .expect("SPECS are all valid");
            while !tuner.step_strategy(s.as_mut()) {}
            let (_, fitness) = s.best().expect("a finished strategy has a best");
            StrategyCell {
                task: task.name.clone(),
                strategy: (*spec).to_string(),
                fitness,
                evaluations: s.evaluations(),
                cache_hits: s.cache_hits(),
                rounds: s.rounds(),
            }
        })
        .collect()
}

/// Runs the full study: all of [`SPECS`] on each of the paper's five
/// tuning tasks.
#[must_use]
pub fn run(ctx: &Context) -> Vec<StrategyCell> {
    paper_tasks()
        .iter()
        .flat_map(|task| run_task(ctx, task))
        .collect()
}

/// Renders the study.
#[must_use]
pub fn to_table(cells: &[StrategyCell]) -> Table {
    let mut t = Table::new(&[
        "task",
        "strategy",
        "fitness",
        "evaluations",
        "cache_hits",
        "rounds",
    ]);
    for c in cells {
        t.row(vec![
            c.task.clone(),
            c.strategy.clone(),
            format!("{:.4}", c.fitness),
            c.evaluations.to_string(),
            c.cache_hits.to_string(),
            c.rounds.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::GaConfig;
    use jit::{ArchModel, Scenario};
    use tuner::Goal;

    fn tiny_ctx() -> Context {
        let mut ctx = Context::new(
            std::env::temp_dir().join("strategies-test"),
            GaConfig {
                pop_size: 6,
                generations: 4,
                seed: 7,
                threads: 1,
                stagnation_limit: None,
                ..GaConfig::default()
            },
        );
        ctx.training.truncate(1);
        ctx
    }

    fn task() -> TuningTask {
        TuningTask {
            name: "Opt:Tot".into(),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: ArchModel::pentium4(),
        }
    }

    #[test]
    fn every_strategy_produces_a_finite_cell() {
        let cells = run_task(&tiny_ctx(), &task());
        assert_eq!(cells.len(), SPECS.len());
        for c in &cells {
            assert!(
                c.fitness.is_finite(),
                "{}: fitness {}",
                c.strategy,
                c.fitness
            );
            assert!(c.evaluations > 0, "{} never evaluated", c.strategy);
            assert!(c.rounds > 0, "{} never stepped", c.strategy);
        }
        // The strategies genuinely differ: they must not all spend the
        // same number of evaluations (hillclimb stops early, the race's
        // shared memo dedups).
        let evals: Vec<usize> = cells.iter().map(|c| c.evaluations).collect();
        assert!(
            evals.iter().any(|e| *e != evals[0]),
            "all strategies spent identical budgets: {evals:?}"
        );
    }

    #[test]
    fn table_has_one_row_per_cell() {
        let cells = run_task(&tiny_ctx(), &task());
        let t = to_table(&cells);
        assert_eq!(t.len(), cells.len());
        let rendered = t.render();
        for spec in SPECS {
            assert!(rendered.contains(spec), "missing {spec} row");
        }
    }
}
