//! `experiments` — regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <command> [options]
//!
//! Commands:
//!   table1            Table 1: parameters and search ranges
//!   fig1              Fig. 1: inlining on/off, Opt & Adapt, SPECjvm98
//!   fig2              Fig. 2: time vs inline depth (compress, jess)
//!   table4            Table 4: GA-tuned parameters (runs all 5 tunings)
//!   fig5..fig9        Figs. 5-9: tuned vs default per benchmark
//!   fig10             Fig. 10: per-program tuning for running time
//!   table5            Table 5: summary of average reductions
//!   all               Everything above, in dependency order
//!   ablation          extension: cost-model mechanism knock-outs
//!   sweep             extension: per-parameter sensitivity (all 5 knobs)
//!   inspect           extension: benchmark-suite calibration statistics
//!   dump NAME         extension: serialize a benchmark's IR to results/ir/
//!   budget            extension: GA search-budget / operator study
//!   strategies        extension: search-strategy comparison (all 5 cells)
//!   problems          extension: new tuning domains (flags, dss) x strategies
//!   warmstart         extension: cold vs store-seeded tuning (all 5 cells)
//!   online            extension: drift study (online vs frozen vs oracle)
//!
//! Options:
//!   --out DIR         results directory              (default: results)
//!   --gens N          GA generations                 (default: 80)
//!   --pop N           GA population size             (default: 20)
//!   --seed N          GA seed                        (default: 2005)
//!   --full            paper budget: 20 x 500, no early stop
//! ```
//!
//! Every command prints its table(s) and writes a CSV under `--out`.

use std::path::PathBuf;
use std::process::ExitCode;

use experiments::table::Table;
use experiments::{
    ablation, budget, fig1, fig10, fig2, figs, inspect, online, problems, strategies, sweep,
    table1, table4, table5, warmstart, Context,
};

struct Args {
    command: String,
    operand: Option<String>,
    out: PathBuf,
    gens: Option<usize>,
    pop: Option<usize>,
    seed: Option<u64>,
    full: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    let mut out = PathBuf::from("results");
    let (mut operand, mut gens, mut pop, mut seed, mut full) = (None, None, None, None, false);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--gens" => {
                gens = Some(
                    args.next()
                        .ok_or("--gens needs a value")?
                        .parse()
                        .map_err(|e| format!("--gens: {e}"))?,
                );
            }
            "--pop" => {
                pop = Some(
                    args.next()
                        .ok_or("--pop needs a value")?
                        .parse()
                        .map_err(|e| format!("--pop: {e}"))?,
                );
            }
            "--seed" => {
                seed = Some(
                    args.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--full" => full = true,
            other if !other.starts_with('-') && operand.is_none() => {
                operand = Some(other.to_string());
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Args {
        command,
        operand,
        out,
        gens,
        pop,
        seed,
        full,
    })
}

fn context(args: &Args) -> Context {
    let mut ga = if args.full {
        Context::paper_ga()
    } else {
        Context::default_ga()
    };
    if let Some(g) = args.gens {
        ga.generations = g;
    }
    if let Some(p) = args.pop {
        ga.pop_size = p;
    }
    if let Some(s) = args.seed {
        ga.seed = s;
    }
    Context::new(args.out.clone(), ga)
}

fn emit(ctx: &Context, title: &str, csv_name: &str, table: &Table) {
    println!("== {title} ==");
    println!("{}", table.render());
    if let Err(e) = table.write_csv(&ctx.out_dir, csv_name) {
        eprintln!("warning: could not write {csv_name}: {e}");
    }
}

fn run_table1(ctx: &Context) {
    emit(
        ctx,
        "Table 1: tuned parameters and ranges",
        "table1.csv",
        &table1::run(),
    );
}

fn run_fig1(ctx: &Context) {
    for f in fig1::run(ctx) {
        let (title, csv) = match f.scenario {
            jit::Scenario::Opt => ("Figure 1(a): inlining vs none, Opt, SPECjvm98", "fig1a.csv"),
            jit::Scenario::Adapt => (
                "Figure 1(b): inlining vs none, Adapt, SPECjvm98",
                "fig1b.csv",
            ),
        };
        emit(ctx, title, csv, &f.to_table());
    }
}

fn run_fig2(ctx: &Context) {
    for (f, csv) in fig2::run(ctx).iter().zip(["fig2a.csv", "fig2b.csv"]) {
        emit(
            ctx,
            &format!(
                "Figure 2: total seconds vs MAX_INLINE_DEPTH, {}",
                f.benchmark
            ),
            csv,
            &f.to_table(),
        );
        for (scenario, _) in &f.series {
            if let Some(d) = f.best_depth(*scenario) {
                println!("  best depth for {} under {scenario}: {d}", f.benchmark);
            }
        }
        println!();
    }
}

fn run_table4(ctx: &Context) {
    let t4 = table4::run(ctx);
    emit(
        ctx,
        "Table 4: GA-tuned inlining parameter values",
        "table4.csv",
        &t4.to_table(),
    );
    emit(
        ctx,
        "Table 4 (search summary)",
        "table4_search.csv",
        &t4.search_table(),
    );
    if let Err(e) = t4
        .convergence_table()
        .write_csv(&ctx.out_dir, "table4_convergence.csv")
    {
        eprintln!("warning: could not write convergence: {e}");
    }
}

fn run_scenario_fig(ctx: &Context, number: u32) {
    let Some(f) = figs::run(ctx, number) else {
        eprintln!("unknown figure {number}");
        return;
    };
    println!("(task {} tuned params: {})", f.task.name, f.params);
    emit(
        ctx,
        &format!("Figure {number}(a): {} — SPECjvm98 (training)", f.task.name),
        &format!("fig{number}a.csv"),
        &f.to_table(&f.train),
    );
    emit(
        ctx,
        &format!("Figure {number}(b): {} — DaCapo+JBB (test)", f.task.name),
        &format!("fig{number}b.csv"),
        &f.to_table(&f.test),
    );
}

fn run_fig10(ctx: &Context) {
    let f = fig10::run(ctx);
    emit(
        ctx,
        "Figure 10(a): per-program tuning for running time — SPECjvm98",
        "fig10a.csv",
        &fig10::Fig10::to_table(&f.train),
    );
    emit(
        ctx,
        "Figure 10(b): per-program tuning for running time — DaCapo+JBB",
        "fig10b.csv",
        &fig10::Fig10::to_table(&f.test),
    );
    println!(
        "average running-time ratio across all programs: {:.3} ({:.0}% reduction)",
        f.mean_running_ratio(),
        100.0 * (1.0 - f.mean_running_ratio())
    );
}

fn run_ablation(ctx: &Context) {
    let rows = ablation::run(ctx);
    emit(
        ctx,
        "Ablation: cost-model mechanisms vs paper shapes (Opt, x86; inlining on/off ratios)",
        "ablation.csv",
        &ablation::to_table(&rows),
    );
}

fn run_sweep(ctx: &Context) {
    for param in 0..5 {
        let sweeps: Vec<_> = ["compress", "jess", "antlr"]
            .iter()
            .filter_map(|b| sweep::sweep_param(ctx, b, param, jit::Scenario::Opt, 10))
            .collect();
        if sweeps.is_empty() {
            continue;
        }
        emit(
            ctx,
            &format!(
                "Sensitivity sweep: {} (Opt, x86, ratios vs default)",
                inliner::PARAM_NAMES[param]
            ),
            &format!("sweep_{}.csv", inliner::PARAM_NAMES[param].to_lowercase()),
            &sweep::to_table(&sweeps),
        );
    }
}

fn run_budget(ctx: &Context) {
    let task = figs::task_for_figure(7).expect("Opt:Tot task exists");
    let cells = budget::run(ctx, task);
    emit(
        ctx,
        "GA budget study: fitness vs population/generations/operator (Opt:Tot, x86)",
        "budget.csv",
        &budget::to_table(&cells),
    );
}

fn run_strategies(ctx: &Context) {
    let cells = strategies::run(ctx);
    emit(
        ctx,
        "Strategy study: best fitness vs evaluations per search strategy (all 5 cells)",
        "strategies.csv",
        &strategies::to_table(&cells),
    );
}

fn run_problems(ctx: &Context) {
    let cells = problems::run(ctx);
    emit(
        ctx,
        "Problems study: new tuning domains (flags, dss) under every strategy (Opt:Tot, x86)",
        "problems.csv",
        &problems::to_table(&cells),
    );
}

fn run_warmstart(ctx: &Context) {
    let cells = warmstart::run(ctx);
    emit(
        ctx,
        "Warm-start study: evaluations to the cold target, cold vs store-seeded (leave-one-out)",
        "warmstart.csv",
        &warmstart::to_table(&cells),
    );
    println!(
        "warm start won {} of {} cells (strictly fewer evaluations to the cold target)",
        warmstart::wins(&cells),
        cells.len()
    );
}

fn run_online(ctx: &Context) {
    let cells = online::run(ctx);
    emit(
        ctx,
        "Online drift study: adaptive re-tuning vs frozen incumbent vs per-epoch oracle",
        "online_summary.csv",
        &online::to_table(&cells),
    );
    if let Err(e) = online::to_rows_table(&cells).write_csv(&ctx.out_dir, "online.csv") {
        eprintln!("warning: could not write online.csv: {e}");
    }
    println!(
        "online beat the frozen incumbent on {} of {} drift schedules",
        online::wins(&cells),
        cells.len()
    );
}

fn run_dump(ctx: &Context, name: Option<&str>) {
    let Some(name) = name else {
        eprintln!("usage: experiments dump <benchmark-name>");
        return;
    };
    let Some(b) = workloads::benchmark_by_name(name) else {
        eprintln!("unknown benchmark {name}");
        return;
    };
    let text = ir::pretty::program_to_string(&b.program);
    // Round-trip check before writing: the dump must reload to the exact
    // same program.
    let reparsed = ir::parse::parse_program(&text).expect("printer output parses");
    assert_eq!(reparsed, b.program, "round-trip mismatch");
    let dir = ctx.out_dir.join("ir");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.ir"));
    match std::fs::write(&path, &text) {
        Ok(()) => println!(
            "wrote {} ({} methods, {} lines, round-trip verified)",
            path.display(),
            b.program.method_count(),
            text.lines().count()
        ),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

fn run_inspect(ctx: &Context) {
    emit(
        ctx,
        "Benchmark suite statistics",
        "inspect.csv",
        &inspect::run(ctx),
    );
}

fn run_table5(ctx: &Context) {
    let t5 = table5::run(ctx);
    emit(
        ctx,
        "Table 5: average performance of the genetically tuned heuristic",
        "table5.csv",
        &t5.to_table(),
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\nusage: experiments <table1|fig1|fig2|table4|fig5..fig9|fig10|table5|ablation|sweep|inspect|dump|budget|strategies|problems|warmstart|online|all> [--out DIR] [--gens N] [--pop N] [--seed N] [--full]");
            return ExitCode::FAILURE;
        }
    };
    let ctx = context(&args);
    let started = std::time::Instant::now();
    match args.command.as_str() {
        "table1" => run_table1(&ctx),
        "fig1" => run_fig1(&ctx),
        "fig2" => run_fig2(&ctx),
        "table4" => run_table4(&ctx),
        "fig5" => run_scenario_fig(&ctx, 5),
        "fig6" => run_scenario_fig(&ctx, 6),
        "fig7" => run_scenario_fig(&ctx, 7),
        "fig8" => run_scenario_fig(&ctx, 8),
        "fig9" => run_scenario_fig(&ctx, 9),
        "fig10" => run_fig10(&ctx),
        "table5" => run_table5(&ctx),
        "ablation" => run_ablation(&ctx),
        "sweep" => run_sweep(&ctx),
        "inspect" => run_inspect(&ctx),
        "dump" => run_dump(&ctx, args.operand.as_deref()),
        "budget" => run_budget(&ctx),
        "strategies" => run_strategies(&ctx),
        "problems" => run_problems(&ctx),
        "warmstart" => run_warmstart(&ctx),
        "online" => run_online(&ctx),
        "all" => {
            run_table1(&ctx);
            run_fig1(&ctx);
            run_fig2(&ctx);
            run_table4(&ctx); // persists tuned params
            for n in 5..=9 {
                run_scenario_fig(&ctx, n); // reuses persisted params
            }
            run_fig10(&ctx);
            run_table5(&ctx);
            run_ablation(&ctx);
            run_sweep(&ctx);
            run_inspect(&ctx);
        }
        other => {
            eprintln!("unknown command {other}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "done in {:.1}s; CSVs in {}",
        started.elapsed().as_secs_f64(),
        ctx.out_dir.display()
    );
    ExitCode::SUCCESS
}
