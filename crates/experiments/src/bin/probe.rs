//! Calibration probe: prints the compile/run balance of every benchmark
//! under both scenarios and architectures, with inlining on (Jikes
//! defaults) and off. Development tool for checking that the paper's
//! qualitative shapes hold before running the full experiment suite.

use inliner::InlineParams;
use jit::{measure, AdaptConfig, ArchModel, Scenario};
use workloads::all_benchmarks;

fn diagnostics() {
    let arch = ArchModel::pentium4();
    let cfg = AdaptConfig::default();
    for name in ["jess", "antlr", "compress", "raytrace"] {
        let b = workloads::benchmark_by_name(name).unwrap();
        let p = &b.program;
        // size histogram
        let mut sizes: Vec<u32> = p.methods.iter().map(ir::size::method_size).collect();
        sizes.sort_unstable();
        let pct = |q: f64| sizes[(q * (sizes.len() - 1) as f64) as usize];
        let def = InlineParams::jikes_default();
        let off = InlineParams::disabled();
        let m_def = measure(p, Scenario::Opt, &arch, &def, &cfg);
        let m_off = measure(p, Scenario::Opt, &arch, &off, &cfg);
        let st = &m_def.inline_stats;
        println!(
            "{name}: sizes p10={} p50={} p90={} p99={} max={} | considered={} inlined={} always={} rej[size={} depth={} caller={} rec={}] | code {} -> {} ({:.2}x)",
            pct(0.1), pct(0.5), pct(0.9), pct(0.99), sizes.last().unwrap(),
            st.considered, st.inlined, st.always_inlined,
            st.rej_callee_size, st.rej_depth, st.rej_caller_size, st.rej_recursive,
            m_off.code_size, m_def.code_size,
            m_def.code_size as f64 / m_off.code_size as f64,
        );
    }
}

fn depth_sweep() {
    let arch = ArchModel::pentium4();
    let cfg = AdaptConfig::default();
    for name in ["compress", "jess"] {
        let b = workloads::benchmark_by_name(name).unwrap();
        println!("--- {name}: total(run) seconds vs MAX_INLINE_DEPTH ---");
        for scenario in [Scenario::Opt, Scenario::Adapt] {
            print!("{scenario:>6}: ");
            for depth in 0..=10 {
                let params = InlineParams {
                    max_inline_depth: depth,
                    ..InlineParams::jikes_default()
                };
                let m = measure(&b.program, scenario, &arch, &params, &cfg);
                print!(
                    "{:.3}({:.3}) ",
                    m.total_seconds(&arch),
                    m.running_seconds(&arch)
                );
            }
            println!();
        }
    }
}

fn tune_probe() {
    use tuner::{evaluate_suite, paper_tasks, Tuner};
    let cfg = AdaptConfig::default();
    let training = workloads::specjvm98();
    let test = workloads::dacapo_jbb();
    for task in paper_tasks() {
        let start = std::time::Instant::now();
        let t = Tuner::new(task.clone(), training.clone(), cfg);
        let outcome = t.tune(ga::GaConfig {
            pop_size: 20,
            generations: 60,
            stagnation_limit: Some(20),
            threads: 1,
            seed: 2005,
            ..ga::GaConfig::default()
        });
        let train_eval =
            evaluate_suite(&training, task.scenario, &task.arch, &outcome.params, &cfg);
        let test_eval = evaluate_suite(&test, task.scenario, &task.arch, &outcome.params, &cfg);
        println!(
            "{:<14} fitness={:.4} params={} | SPEC run -{:.0}% tot -{:.0}% | DaCapo run -{:.0}% tot -{:.0}% | {} evals, {} gens, {:.1}s",
            task.name,
            outcome.fitness,
            outcome.params,
            train_eval.running_reduction_pct(),
            train_eval.total_reduction_pct(),
            test_eval.running_reduction_pct(),
            test_eval.total_reduction_pct(),
            outcome.ga.evaluations,
            outcome.ga.history.len(),
            start.elapsed().as_secs_f64(),
        );
    }
}

fn adapt_diag() {
    let arch = ArchModel::pentium4();
    let cfg = AdaptConfig::default();
    let tuned = InlineParams::from_genes(
        &(std::env::args()
            .skip(2)
            .map(|a| a.parse().unwrap())
            .collect::<Vec<i64>>()),
    );
    for name in ["antlr", "jython", "pmd", "pseudojbb", "jess", "javac"] {
        let b = workloads::benchmark_by_name(name).unwrap();
        let d = measure(
            &b.program,
            Scenario::Adapt,
            &arch,
            &InlineParams::jikes_default(),
            &cfg,
        );
        let t = measure(&b.program, Scenario::Adapt, &arch, &tuned, &cfg);
        println!(
            "{name:<10} def: tot={:.1}ms run={:.1}ms optc={:.1}ms ic={:.2} code={} | tuned: tot={:.1}ms run={:.1}ms optc={:.1}ms ic={:.2} code={} | hot methods {}",
            arch.cycles_to_seconds(d.total_cycles)*1e3,
            arch.cycles_to_seconds(d.running_cycles)*1e3,
            arch.cycles_to_seconds(d.opt_compile_cycles)*1e3,
            d.steady.icache_factor, d.code_size,
            arch.cycles_to_seconds(t.total_cycles)*1e3,
            arch.cycles_to_seconds(t.running_cycles)*1e3,
            arch.cycles_to_seconds(t.opt_compile_cycles)*1e3,
            t.steady.icache_factor, t.code_size,
            d.n_opt_methods,
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--adapt-diag") {
        adapt_diag();
        return;
    }
    if std::env::args().any(|a| a == "--tune") {
        tune_probe();
        return;
    }
    if std::env::args().any(|a| a == "--depth") {
        depth_sweep();
        return;
    }
    if std::env::args().any(|a| a == "--diag") {
        diagnostics();
        return;
    }
    let arches = [ArchModel::pentium4(), ArchModel::powerpc_g4()];
    let cfg = AdaptConfig::default();
    for arch in &arches {
        println!("=== {} ===", arch.name);
        println!(
            "{:<10} {:>5} | {:>9} {:>9} {:>6} | {:>9} {:>9} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>5} {:>5} {:>5}",
            "bench", "mthds",
            "opt:run", "opt:comp", "c/t%",
            "ad:run", "ad:comp", "c/t%",
            "oR rel", "oT rel", "aR rel", "aT rel", "call%", "cmpR", "ic$"
        );
        println!("(extra cols: call-cycle share of no-inline running | compile def/off | icache factor def)");
        for b in all_benchmarks() {
            let p = &b.program;
            let def = InlineParams::jikes_default();
            let off = InlineParams::disabled();
            let o_def = measure(p, Scenario::Opt, arch, &def, &cfg);
            let o_off = measure(p, Scenario::Opt, arch, &off, &cfg);
            let a_def = measure(p, Scenario::Adapt, arch, &def, &cfg);
            let a_off = measure(p, Scenario::Adapt, arch, &off, &cfg);
            let ms = |c: f64| arch.cycles_to_seconds(c) * 1e3;
            let call_share = 100.0 * o_off.steady.call_cycles
                / (o_off.steady.call_cycles + o_off.steady.op_cycles);
            println!(
                "{:<10} {:>5} | {:>8.1}ms {:>8.1}ms {:>5.1}% | {:>8.1}ms {:>8.1}ms {:>5.1}% | {:>6.3} {:>6.3} | {:>6.3} {:>6.3} | {:>5.1}% {:>5.2} {:>5.2}",
                b.name(),
                p.method_count(),
                ms(o_def.running_cycles),
                ms(o_def.compile_cycles),
                100.0 * o_def.compile_cycles / o_def.total_cycles,
                ms(a_def.running_cycles),
                ms(a_def.compile_cycles),
                100.0 * a_def.compile_cycles / a_def.total_cycles,
                o_def.running_cycles / o_off.running_cycles,
                o_def.total_cycles / o_off.total_cycles,
                a_def.running_cycles / a_off.running_cycles,
                a_def.total_cycles / a_off.total_cycles,
                call_share,
                o_def.compile_cycles / o_off.compile_cycles,
                o_def.steady.icache_factor,
            );
        }
    }
}

// (Inline diagnostics appended during calibration.)
#[allow(dead_code)]
fn unused() {}
