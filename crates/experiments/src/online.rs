//! Online drift study: is adaptive re-tuning worth it once the
//! workload moves under the tuner?
//!
//! The paper tunes once against a fixed training suite. The `online`
//! crate claims that when the workload drifts, a drift detector plus
//! warm re-tuning holds delivered fitness near what a per-phase
//! offline tune would achieve. This study measures the claim on three
//! seeded drift schedules (step, ramp, cyclic), running each under
//! three budget-matched modes:
//!
//! * **online** — [`OnlineJob::run`]: probe every epoch, re-tune when
//!   the detector fires (warm-started from the incumbent);
//! * **frozen** — [`OnlineJob::run_frozen`]: tune once at epoch 0 and
//!   hold the incumbent forever (the paper's offline posture);
//! * **oracle** — [`OnlineJob::oracle`]: an offline tune against every
//!   distinct workload position, the unreachable lower envelope that
//!   regret is measured against.
//!
//! The acceptance bar (ROADMAP): online's mean delivered (probe)
//! fitness beats frozen on at least two of the three schedules, with
//! regret vs the oracle bounded after detection. Per-epoch rows land
//! in `results/online.csv` (read back by `perfgate` for the calibrated
//! gate) and the summary table in `results/online_summary.csv`.

use ga::GaConfig;
use online::{DetectorConfig, OnlineConfig, OnlineJob, OnlineReport};
use tuner::paper_tasks;
use workloads::{benchmark_by_name, DriftKind, DriftSchedule};

use crate::table::Table;
use crate::Context;

/// Epoch horizon of every run: long enough for each schedule to cross
/// several phase boundaries, short enough that the whole study stays
/// in seconds.
const EPOCHS: u64 = 10;

/// One schedule's three-mode outcome.
#[derive(Debug, Clone)]
pub struct OnlineCell {
    /// Schedule kind name (`"step"`, `"ramp"`, `"cyclic"`).
    pub schedule: &'static str,
    /// The adaptive run.
    pub online: OnlineReport,
    /// The tune-once control.
    pub frozen: OnlineReport,
    /// Per-epoch oracle fitness (budget-matched offline tunes).
    pub oracle: Vec<f64>,
}

impl OnlineCell {
    /// Whether online beat the frozen incumbent on delivered fitness.
    #[must_use]
    pub fn online_won(&self) -> bool {
        self.online.mean_probe() < self.frozen.mean_probe()
    }
}

/// The three drift schedules under study. Periods differ so the bar
/// is not one rhythm in three costumes: step flips mid-horizon, ramp
/// blends continuously, cyclic revisits its phases twice.
fn schedules() -> [DriftSchedule; 3] {
    [
        DriftSchedule {
            kind: DriftKind::Step,
            period: 3,
            phases: 2,
            seed: 11,
        },
        DriftSchedule {
            kind: DriftKind::Ramp,
            period: 3,
            phases: 3,
            seed: 11,
        },
        DriftSchedule {
            kind: DriftKind::Cyclic,
            period: 2,
            phases: 2,
            seed: 11,
        },
    ]
}

/// Runs the study: three schedules × (online, frozen, oracle), all
/// budget-matched and bit-reproducible from the context's GA seed.
///
/// # Panics
/// Panics if a reference benchmark is missing or a run fails — the
/// study is an acceptance gate, so failure must be loud.
#[must_use]
pub fn run(ctx: &Context) -> Vec<OnlineCell> {
    // A two-benchmark base suite keeps every probe cheap while still
    // giving the drift morphs two programs to reshape; Opt:Tot is the
    // cell the other extension studies use.
    let base: Vec<_> = ["db", "jess"]
        .iter()
        .map(|n| benchmark_by_name(n).expect("known benchmark").clone())
        .collect();
    let task = paper_tasks()
        .into_iter()
        .find(|t| t.name == "Opt:Tot")
        .expect("Opt:Tot is a paper task");
    // Budget-matched across modes; single-threaded so every trajectory
    // is a pure function of the seed.
    let ga = GaConfig {
        pop_size: ctx.ga.pop_size.min(8),
        generations: ctx.ga.generations.min(4),
        threads: 1,
        seed: ctx.ga.seed,
        stagnation_limit: None,
        ..ctx.ga.clone()
    };

    schedules()
        .into_iter()
        .map(|schedule| {
            let job = OnlineJob {
                problem: "inline".into(),
                task: task.clone(),
                base: base.clone(),
                adapt: ctx.adapt_cfg.clone(),
                ga: ga.clone(),
                strategy: "ga".into(),
                online: OnlineConfig {
                    epochs: EPOCHS,
                    schedule,
                    // The knobs the sim sweep proves out: a one-probe
                    // window and a 2% bar detect every morph the
                    // seeded schedules produce.
                    detector: DetectorConfig {
                        window: 1,
                        threshold_pct: 2.0,
                    },
                },
            };
            let cell = OnlineCell {
                schedule: schedule.kind.name(),
                online: job.run(None).expect("online run"),
                frozen: job.run_frozen().expect("frozen run"),
                oracle: job.oracle().expect("oracle run"),
            };
            let violations = cell.online.violations(&job.online);
            assert!(
                violations.is_empty(),
                "schedule {}: bounded-regret invariants violated: {violations:?}",
                cell.schedule
            );
            cell
        })
        .collect()
}

/// Schedules where online beat the frozen incumbent.
#[must_use]
pub fn wins(cells: &[OnlineCell]) -> usize {
    cells.iter().filter(|c| c.online_won()).count()
}

/// The per-epoch CSV consumed by `perfgate`: one row per
/// schedule × mode × epoch.
#[must_use]
pub fn to_rows_table(cells: &[OnlineCell]) -> Table {
    let mut t = Table::new(&[
        "schedule", "mode", "epoch", "phase", "probe", "fitness", "retuned",
    ]);
    for cell in cells {
        for (mode, report) in [("online", &cell.online), ("frozen", &cell.frozen)] {
            for row in &report.rows {
                t.row(vec![
                    cell.schedule.to_string(),
                    mode.to_string(),
                    row.epoch.to_string(),
                    format!("{}+{}/{}", row.pos.phase, row.pos.num, row.pos.den),
                    format!("{:.6}", row.probe),
                    format!("{:.6}", row.fitness),
                    row.retuned.to_string(),
                ]);
            }
        }
        // The oracle has no trajectory of its own: its "probe" at epoch
        // `e` is the offline-tuned fitness for that epoch's workload.
        for (epoch, (best, row)) in cell.oracle.iter().zip(&cell.online.rows).enumerate() {
            t.row(vec![
                cell.schedule.to_string(),
                "oracle".to_string(),
                epoch.to_string(),
                format!("{}+{}/{}", row.pos.phase, row.pos.num, row.pos.den),
                format!("{best:.6}"),
                format!("{best:.6}"),
                "false".to_string(),
            ]);
        }
    }
    t
}

/// The summary table: one row per schedule.
#[must_use]
pub fn to_table(cells: &[OnlineCell]) -> Table {
    let mut t = Table::new(&[
        "schedule",
        "online_mean",
        "frozen_mean",
        "oracle_mean",
        "online_regret_pct",
        "frozen_regret_pct",
        "retunes",
        "mean_latency",
        "online_wins",
    ]);
    for cell in cells {
        let oracle_mean = cell.oracle.iter().sum::<f64>() / cell.oracle.len().max(1) as f64;
        let lat = &cell.online.detect_latencies;
        let mean_latency = if lat.is_empty() {
            "-".to_string()
        } else {
            format!("{:.2}", lat.iter().sum::<u64>() as f64 / lat.len() as f64)
        };
        t.row(vec![
            cell.schedule.to_string(),
            format!("{:.6}", cell.online.mean_probe()),
            format!("{:.6}", cell.frozen.mean_probe()),
            format!("{oracle_mean:.6}"),
            format!("{:.2}", cell.online.mean_regret_pct(&cell.oracle)),
            format!("{:.2}", cell.frozen.mean_regret_pct(&cell.oracle)),
            cell.online.retunes.to_string(),
            mean_latency,
            cell.online_won().to_string(),
        ]);
    }
    t
}
