//! Problems study: the problem-generic tuning stack on the two new
//! optimization domains.
//!
//! The paper tunes one thing — the inliner's five thresholds. The
//! `problems` crate generalizes the stack to any [`problems::Problem`],
//! and this study is the evidence that the generalization earns its
//! keep: the same strategies, budget and evaluator drive compiler-flag
//! selection (`flags`, a mixed categorical/boolean space) and
//! data-structure selection (`dss`, a purely categorical space) with no
//! domain-specific search code at all. Fitness is normalized so 1.0 is
//! each domain's default configuration; anything below 1.0 is
//! improvement the search found.

use std::sync::Arc;

use crate::table::Table;
use crate::{figs, Context};

/// The new domains the study tunes (inlining already has the whole rest
/// of the harness; see `strategies` for its strategy comparison).
pub const DOMAINS: &[&str] = &["flags", "dss"];

/// The strategy specs compared per domain.
pub const SPECS: &[&str] = &["ga", "hillclimb", "anneal", "race"];

/// One (problem, strategy) cell's outcome.
#[derive(Debug, Clone)]
pub struct ProblemCell {
    /// Problem id, e.g. `"flags"`.
    pub problem: String,
    /// Strategy spec, e.g. `"anneal"`.
    pub strategy: String,
    /// Best fitness reached (1.0 = the domain's default configuration).
    pub fitness: f64,
    /// Distinct evaluations spent.
    pub evaluations: usize,
    /// Proposals answered from the memo instead of evaluation.
    pub cache_hits: usize,
    /// Search rounds.
    pub rounds: usize,
    /// The winning configuration, decoded by the problem itself.
    pub best: String,
}

/// Runs every strategy in [`SPECS`] over one problem domain.
///
/// # Panics
/// Panics if `domain` or a spec in [`SPECS`] fails to validate — both
/// are compiled-in constants, so that would be a bug here, not an input
/// error.
#[must_use]
pub fn run_domain(ctx: &Context, domain: &str) -> Vec<ProblemCell> {
    let task = figs::task_for_figure(7).expect("Opt:Tot task exists");
    let problem: Arc<dyn problems::Problem> =
        problems::build(domain, &task, &ctx.training, ctx.adapt_cfg)
            .expect("DOMAINS are all known problems");
    let backend = ga::LocalEvaluator::new(
        |genes: &[i64]| problem.fitness(genes),
        ctx.ga.threads.max(1),
    );
    SPECS
        .iter()
        .map(|spec| {
            let mut s = search::build(spec, problem.space().clone(), ctx.ga.clone())
                .expect("SPECS are all valid");
            while !search::step_with(s.as_mut(), &backend) {}
            let (genes, fitness) = s.best().expect("a finished strategy has a best");
            ProblemCell {
                problem: domain.to_string(),
                strategy: (*spec).to_string(),
                fitness,
                evaluations: s.evaluations(),
                cache_hits: s.cache_hits(),
                rounds: s.rounds(),
                best: problem.describe(&genes),
            }
        })
        .collect()
}

/// Runs the full study: all of [`SPECS`] on each of [`DOMAINS`].
#[must_use]
pub fn run(ctx: &Context) -> Vec<ProblemCell> {
    DOMAINS
        .iter()
        .flat_map(|domain| run_domain(ctx, domain))
        .collect()
}

/// Renders the study. The `best` column is the problem's own
/// [`problems::Problem::describe`] output (commas stripped so the CSV
/// stays one cell per column).
#[must_use]
pub fn to_table(cells: &[ProblemCell]) -> Table {
    let mut t = Table::new(&[
        "problem",
        "strategy",
        "fitness",
        "evaluations",
        "cache_hits",
        "rounds",
        "best",
    ]);
    for c in cells {
        t.row(vec![
            c.problem.clone(),
            c.strategy.clone(),
            format!("{:.4}", c.fitness),
            c.evaluations.to_string(),
            c.cache_hits.to_string(),
            c.rounds.to_string(),
            c.best.replace(',', ";"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::GaConfig;

    fn tiny_ctx() -> Context {
        let mut ctx = Context::new(
            std::env::temp_dir().join("problems-study-test"),
            GaConfig {
                pop_size: 6,
                generations: 4,
                seed: 7,
                threads: 1,
                stagnation_limit: None,
                ..GaConfig::default()
            },
        );
        ctx.training.truncate(1);
        ctx
    }

    #[test]
    fn both_domains_tune_under_every_strategy() {
        let cells = run(&tiny_ctx());
        assert_eq!(cells.len(), DOMAINS.len() * SPECS.len());
        for c in &cells {
            assert!(
                c.fitness.is_finite() && c.fitness > 0.0,
                "{}/{}: fitness {}",
                c.problem,
                c.strategy,
                c.fitness
            );
            assert!(
                c.evaluations > 0,
                "{}/{} never evaluated",
                c.problem,
                c.strategy
            );
            assert!(
                !c.best.is_empty(),
                "{}/{} has no decode",
                c.problem,
                c.strategy
            );
        }
        // Search must actually find improvement somewhere: the flags
        // default is deliberately not optimal for every suite, and dss
        // has genuine wins over all-vec on hash-heavy profiles.
        assert!(
            cells.iter().any(|c| c.fitness < 1.0),
            "no strategy beat any domain's default configuration: {cells:?}"
        );
    }

    #[test]
    fn table_has_one_row_per_cell_and_sane_csv() {
        let cells = run_domain(&tiny_ctx(), "dss");
        let t = to_table(&cells);
        assert_eq!(t.len(), cells.len());
        let rendered = t.render();
        for spec in SPECS {
            assert!(rendered.contains(spec), "missing {spec} row");
        }
    }
}
