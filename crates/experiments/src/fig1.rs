//! Figure 1: relative time reduction with inlining (paper §2).
//!
//! Runs every SPECjvm98 benchmark under `Opt` (Fig. 1a) and `Adapt`
//! (Fig. 1b) on the x86 model, with the Jikes default heuristic versus
//! inlining disabled. Values are *normalized to no inlining*: bars below 1
//! mean inlining helps.

use inliner::InlineParams;
use jit::{measure, ArchModel, Scenario};

use crate::table::{ratio, Table};
use crate::Context;

/// One sub-figure's data.
pub struct Fig1 {
    /// `"Opt"` or `"Adapt"`.
    pub scenario: Scenario,
    /// Per-benchmark `(name, running_ratio, total_ratio)`.
    pub rows: Vec<(&'static str, f64, f64)>,
}

impl Fig1 {
    /// Mean running ratio across benchmarks.
    #[must_use]
    pub fn mean_running(&self) -> f64 {
        self.rows.iter().map(|r| r.1).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean total ratio across benchmarks.
    #[must_use]
    pub fn mean_total(&self) -> f64 {
        self.rows.iter().map(|r| r.2).sum::<f64>() / self.rows.len() as f64
    }

    /// Renders the sub-figure as a table (with the average row the paper
    /// plots as the rightmost bar group).
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(&["benchmark", "running", "total"]);
        for (name, r, tt) in &self.rows {
            t.row(vec![(*name).to_string(), ratio(*r), ratio(*tt)]);
        }
        t.row(vec![
            "average".into(),
            ratio(self.mean_running()),
            ratio(self.mean_total()),
        ]);
        t
    }
}

/// Computes both sub-figures.
#[must_use]
pub fn run(ctx: &Context) -> Vec<Fig1> {
    let arch = ArchModel::pentium4();
    let on = InlineParams::jikes_default();
    let off = InlineParams::disabled();
    [Scenario::Opt, Scenario::Adapt]
        .into_iter()
        .map(|scenario| {
            let rows = ctx
                .training
                .iter()
                .map(|b| {
                    let with = measure(&b.program, scenario, &arch, &on, &ctx.adapt_cfg);
                    let without = measure(&b.program, scenario, &arch, &off, &ctx.adapt_cfg);
                    (
                        b.name(),
                        with.running_cycles / without.running_cycles,
                        with.total_cycles / without.total_cycles,
                    )
                })
                .collect();
            Fig1 { scenario, rows }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> Context {
        let mut ctx = Context::new(
            std::env::temp_dir().join("fig1-test"),
            Context::default_ga(),
        );
        ctx.training.truncate(2);
        ctx
    }

    #[test]
    fn inlining_improves_opt_running_time_on_training_suite() {
        let figs = run(&tiny_ctx());
        assert_eq!(figs.len(), 2);
        let opt = &figs[0];
        assert_eq!(opt.scenario, Scenario::Opt);
        assert!(
            opt.mean_running() < 1.0,
            "inlining must reduce Opt running time: {}",
            opt.mean_running()
        );
    }

    #[test]
    fn tables_have_average_row() {
        let figs = run(&tiny_ctx());
        for f in &figs {
            let t = f.to_table();
            assert_eq!(t.len(), f.rows.len() + 1);
            assert!(t.render().contains("average"));
        }
    }
}
