//! Minimal table rendering: aligned console output and CSV files.
//!
//! Hand-rolled on purpose — the only format consumers are humans and the
//! CSV readers in `EXPERIMENTS.md` tooling, and a serde dependency would
//! buy nothing here (see DESIGN.md §7).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple table: a header row plus data rows of equal arity.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table (first column left-aligned, the rest
    /// right-aligned).
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "{cell:>w$}");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas, quotes or
    /// newlines).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let write_row = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Writes the CSV form to `dir/name` (creating `dir` if needed).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(name), self.to_csv())
    }
}

/// Formats a ratio as the paper's "relative time" (3 decimal places).
#[must_use]
pub fn ratio(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage reduction (paper style: positive = improvement).
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats seconds with millisecond resolution.
#[must_use]
pub fn secs(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["name", "x"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "22.5".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
        // Right-aligned numeric column: both rows end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("inlinetune-table-test");
        let mut t = Table::new(&["k", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        t.write_csv(&dir, "t.csv").unwrap();
        let read = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(read, "k,v\na,1\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(0.51234), "0.512");
        assert_eq!(pct(17.04), "17.0%");
        assert_eq!(secs(1.23456), "1.2346");
    }
}
