//! Figures 5–9: the tuned heuristic versus the Jikes default, per
//! benchmark, on both the training suite (sub-figure a) and the unseen
//! test suite (sub-figure b).
//!
//! | Figure | Task (Table 4 column) |
//! |---|---|
//! | 5 | `Adapt` (x86, tuned for balance) |
//! | 6 | `Opt:Bal` (x86) |
//! | 7 | `Opt:Tot` (x86) |
//! | 8 | `Adapt (PPC)` |
//! | 9 | `Opt:Bal (PPC)` |
//!
//! Bars below 1 are improvements over the default heuristic, exactly as
//! in the paper's plots.

use inliner::InlineParams;
use tuner::{evaluate_suite, paper_tasks, SuiteEval, Tuner, TuningTask};

use crate::table::{ratio, Table};
use crate::Context;

/// One figure's data: the task, the parameters used, and both suites'
/// evaluations.
pub struct ScenarioFigure {
    /// Figure number in the paper (5..=9).
    pub number: u32,
    /// The tuning task evaluated.
    pub task: TuningTask,
    /// Parameters used (tuned, from `table4` or a fresh run).
    pub params: InlineParams,
    /// Sub-figure (a): the SPECjvm98 training suite.
    pub train: SuiteEval,
    /// Sub-figure (b): the DaCapo+JBB test suite.
    pub test: SuiteEval,
}

impl ScenarioFigure {
    /// Renders one sub-figure as a table with the average row.
    #[must_use]
    pub fn to_table(&self, eval: &SuiteEval) -> Table {
        let mut t = Table::new(&["benchmark", "running", "total"]);
        for b in &eval.benches {
            t.row(vec![
                b.name.to_string(),
                ratio(b.running_ratio),
                ratio(b.total_ratio),
            ]);
        }
        t.row(vec![
            "average".into(),
            ratio(eval.mean_running_ratio()),
            ratio(eval.mean_total_ratio()),
        ]);
        t
    }
}

/// The paper figure number for each Table 4 task, in task order.
pub const FIGURE_NUMBERS: [u32; 5] = [5, 6, 7, 8, 9];

/// Resolves the task for a figure number.
#[must_use]
pub fn task_for_figure(number: u32) -> Option<TuningTask> {
    let idx = FIGURE_NUMBERS.iter().position(|&n| n == number)?;
    paper_tasks().into_iter().nth(idx)
}

/// Produces one scenario figure: reuses persisted tuned parameters when
/// available, otherwise tunes first.
#[must_use]
pub fn run(ctx: &Context, number: u32) -> Option<ScenarioFigure> {
    let task = task_for_figure(number)?;
    let params = match ctx.load_params(&task.name) {
        Some(p) => p,
        None => {
            let tuner = Tuner::new(task.clone(), ctx.training.clone(), ctx.adapt_cfg);
            let outcome = tuner.tune(ctx.ga.clone());
            let _ = ctx.save_params(&task.name, &outcome.params);
            outcome.params
        }
    };
    let train = evaluate_suite(
        &ctx.training,
        task.scenario,
        &task.arch,
        &params,
        &ctx.adapt_cfg,
    );
    let test = evaluate_suite(
        &ctx.test,
        task.scenario,
        &task.arch,
        &params,
        &ctx.adapt_cfg,
    );
    Some(ScenarioFigure {
        number,
        task,
        params,
        train,
        test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_task_mapping_matches_paper() {
        assert_eq!(task_for_figure(5).unwrap().name, "Adapt");
        assert_eq!(task_for_figure(6).unwrap().name, "Opt:Bal");
        assert_eq!(task_for_figure(7).unwrap().name, "Opt:Tot");
        assert_eq!(task_for_figure(8).unwrap().name, "Adapt (PPC)");
        assert_eq!(task_for_figure(9).unwrap().name, "Opt:Bal (PPC)");
        assert!(task_for_figure(4).is_none());
    }

    #[test]
    fn run_reuses_persisted_params() {
        let mut ctx = Context::new(
            std::env::temp_dir().join(format!("figs-test-{}", std::process::id())),
            Context::default_ga(),
        );
        ctx.training.truncate(1);
        ctx.test.truncate(1);
        // Persist known params so no tuning happens.
        let p = InlineParams::from_genes(&[10, 16, 8, 402, 135]);
        ctx.save_params("Opt:Bal", &p).unwrap();
        let fig = run(&ctx, 6).unwrap();
        assert_eq!(fig.params, p);
        assert_eq!(fig.train.benches.len(), 1);
        assert_eq!(fig.test.benches.len(), 1);
        let t = fig.to_table(&fig.train);
        assert!(t.render().contains("average"));
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
