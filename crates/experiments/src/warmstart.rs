//! Warm-start transfer study: does remembering other cells' evaluations
//! make tuning a new cell cheaper?
//!
//! The paper tunes each of its five scenario/metric cells from scratch
//! (§3.1: hundreds of benchmark runs per cell). The `stored` +
//! `warmstart` stack claims those runs transfer: a new cell seeds its
//! initial population with the best genomes of fingerprint-nearest
//! prior cells. This experiment measures the claim with
//! budget-matched, leave-one-out runs on the paper's five cells:
//!
//! 1. **Cold**: plain GA per cell, logging every distinct simulator
//!    evaluation; record the best fitness reached (the *target*) and
//!    how many evaluations it took to first reach it.
//! 2. **Store**: for each cell, build a fitness store from the *other
//!    four* cells' complete evaluation logs — the target cell
//!    contributes nothing.
//! 3. **Warm**: the `warmstart` strategy over the same budget and GA
//!    seed, seeded from the store; count evaluations until the cold
//!    target is matched or beaten.
//!
//! A cell is a *win* when warm start needs strictly fewer evaluations
//! than cold start. The acceptance bar (ROADMAP): at least 4 of 5.

use inliner::InlineParams;
use search::Strategy;
use stored::{Record, Store};
use tuner::{cell_fingerprint, paper_tasks, Tuner};

use crate::table::Table;
use crate::Context;

/// One cell's cold-vs-warm outcome.
#[derive(Debug, Clone)]
pub struct WarmstartCell {
    /// Tuning task name, e.g. `"Opt:Tot"`.
    pub task: String,
    /// Cold start's best fitness — the bar warm start must reach.
    pub target: f64,
    /// Evaluations the cold run spent to first reach `target`.
    pub cold_evals: usize,
    /// Evaluations the cold run spent in total.
    pub cold_total: usize,
    /// Warm seeds planted from the store (0 = nothing transferred).
    pub seeds: usize,
    /// Evaluations the warm run spent to reach `target`, or `None` if
    /// it never did within the budget.
    pub warm_evals: Option<usize>,
}

impl WarmstartCell {
    /// Whether warm start reached the cold target in strictly fewer
    /// evaluations.
    #[must_use]
    pub fn warm_won(&self) -> bool {
        self.warm_evals.is_some_and(|w| w < self.cold_evals)
    }
}

/// A completed search, with every simulator evaluation logged.
struct LoggedRun {
    /// Every `(genome, fitness)` the backend actually evaluated.
    log: Vec<(Vec<i64>, f64)>,
    /// Best fitness reached.
    best: f64,
    /// Evaluations spent when `best` was first reached.
    evals_to_best: usize,
    /// Evaluations spent in total.
    total_evals: usize,
}

/// Drives a strategy with a logging backend. `stop_at` ends the run
/// early once the best fitness reaches the bar (warm runs); `None`
/// runs the budget out (cold runs).
fn drive(tuner: &Tuner, strategy: &mut dyn Strategy, stop_at: Option<f64>) -> LoggedRun {
    let mut log = Vec::new();
    let mut best = f64::INFINITY;
    let mut evals_to_best = 0;
    loop {
        let batch = strategy.ask();
        let scores: Vec<f64> = batch
            .iter()
            .map(|g| tuner.fitness(&InlineParams::from_genes(g)))
            .collect();
        for (g, f) in batch.iter().zip(&scores) {
            log.push((g.clone(), *f));
        }
        strategy.tell(&batch, &scores);
        if let Some((_, f)) = strategy.best() {
            if f < best {
                best = f;
                evals_to_best = strategy.evaluations();
            }
        }
        if stop_at.is_some_and(|bar| best <= bar) || strategy.is_done() {
            return LoggedRun {
                log,
                best,
                evals_to_best,
                total_evals: strategy.evaluations(),
            };
        }
    }
}

/// Runs the full leave-one-out study over the paper's five cells.
///
/// # Panics
/// Panics on scratch-store I/O failures — this is a harness, not a
/// service.
#[must_use]
pub fn run(ctx: &Context) -> Vec<WarmstartCell> {
    let tasks = paper_tasks();
    let tuners: Vec<Tuner> = tasks
        .iter()
        .map(|t| Tuner::new(t.clone(), ctx.training.clone(), ctx.adapt_cfg))
        .collect();

    // Phase 1: cold runs, one per cell, full logs kept.
    let colds: Vec<LoggedRun> = tuners
        .iter()
        .map(|tuner| {
            let mut s = tuner
                .start_strategy("ga", ctx.ga.clone())
                .expect("ga is a known strategy");
            drive(tuner, s.as_mut(), None)
        })
        .collect();

    // Phases 2+3 per cell: store from the other cells, then warm run.
    let scratch = std::env::temp_dir().join(format!("warmstart-exp-{}", std::process::id()));
    let cells = tasks
        .iter()
        .zip(&tuners)
        .zip(&colds)
        .enumerate()
        .map(|(i, ((task, tuner), cold))| {
            let dir = scratch.join(i.to_string());
            let _ = std::fs::remove_dir_all(&dir);
            let store = Store::open(&dir).expect("scratch store opens");
            for (j, other) in colds.iter().enumerate() {
                if j == i {
                    continue; // leave-one-out: the target cell knows nothing
                }
                let fp = cell_fingerprint(&tasks[j], &ctx.training);
                for (genome, fitness) in &other.log {
                    store
                        .append(&Record {
                            fingerprint: fp.clone(),
                            genome: genome.clone(),
                            fitness: *fitness,
                        })
                        .expect("scratch store append");
                }
            }

            let mut warm = tuner
                .start_strategy("warmstart", ctx.ga.clone())
                .expect("warmstart is a known strategy");
            let seeds = warm.seed_population(
                &store.warm_seeds(&cell_fingerprint(task, &ctx.training), ctx.ga.pop_size),
            );
            let run = drive(tuner, warm.as_mut(), Some(cold.best));
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);

            WarmstartCell {
                task: task.name.clone(),
                target: cold.best,
                cold_evals: cold.evals_to_best,
                cold_total: cold.total_evals,
                seeds,
                warm_evals: (run.best <= cold.best).then_some(run.evals_to_best),
            }
        })
        .collect();
    let _ = std::fs::remove_dir_all(&scratch);
    cells
}

/// How many cells warm start won.
#[must_use]
pub fn wins(cells: &[WarmstartCell]) -> usize {
    cells.iter().filter(|c| c.warm_won()).count()
}

/// Renders the study.
#[must_use]
pub fn to_table(cells: &[WarmstartCell]) -> Table {
    let mut t = Table::new(&[
        "task",
        "target",
        "cold_evals",
        "cold_total",
        "seeds",
        "warm_evals",
        "warm_won",
    ]);
    for c in cells {
        t.row(vec![
            c.task.clone(),
            format!("{:.4}", c.target),
            c.cold_evals.to_string(),
            c.cold_total.to_string(),
            c.seeds.to_string(),
            c.warm_evals.map_or_else(|| "-".into(), |w| w.to_string()),
            if c.warm_won() { "1" } else { "0" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga::GaConfig;

    fn tiny_ctx() -> Context {
        let mut ctx = Context::new(
            std::env::temp_dir().join("warmstart-test"),
            GaConfig {
                pop_size: 6,
                generations: 4,
                seed: 7,
                threads: 1,
                stagnation_limit: None,
                ..GaConfig::default()
            },
        );
        ctx.training.truncate(1);
        ctx
    }

    #[test]
    fn study_produces_one_cell_per_task_with_transferred_seeds() {
        let cells = run(&tiny_ctx());
        assert_eq!(cells.len(), paper_tasks().len());
        for c in &cells {
            assert!(c.target.is_finite(), "{}: target {}", c.task, c.target);
            assert!(c.cold_evals > 0, "{}: cold run never improved", c.task);
            assert!(c.cold_evals <= c.cold_total);
            assert!(
                c.seeds > 0,
                "{}: nothing transferred from four sibling cells",
                c.task
            );
            if let Some(w) = c.warm_evals {
                assert!(w > 0);
            }
        }
    }

    #[test]
    fn table_has_one_row_per_cell_and_counts_wins() {
        let cells = run(&tiny_ctx());
        assert_eq!(to_table(&cells).len(), cells.len());
        assert!(wins(&cells) <= cells.len());
    }
}
