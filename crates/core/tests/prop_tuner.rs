// Gated: needs the crates.io `proptest` crate (see the `proptest`
// feature note in this crate's Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests of the tuning pipeline's fitness function.

use proptest::prelude::*;

use inliner::InlineParams;
use jit::{AdaptConfig, ArchModel, Scenario};
use tuner::{Goal, Tuner, TuningTask};
use workloads::benchmark_by_name;

fn tuner_for(scenario: Scenario, goal: Goal, ppc: bool) -> Tuner {
    let arch = if ppc {
        ArchModel::powerpc_g4()
    } else {
        ArchModel::pentium4()
    };
    Tuner::new(
        TuningTask {
            name: format!("{scenario}:{goal}"),
            scenario,
            goal,
            arch,
        },
        vec![
            benchmark_by_name("db").unwrap(),
            benchmark_by_name("compress").unwrap(),
        ],
        AdaptConfig::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The default heuristic scores exactly 1 under every scenario, goal
    /// and architecture (the fitness is normalized to it).
    #[test]
    fn default_params_score_exactly_one(scen in 0usize..2, goal in 0usize..3, ppc in any::<bool>()) {
        let scenario = [Scenario::Opt, Scenario::Adapt][scen];
        let goal = [Goal::Running, Goal::Total, Goal::Balance][goal];
        let t = tuner_for(scenario, goal, ppc);
        let f = t.fitness(&InlineParams::jikes_default());
        prop_assert!((f - 1.0).abs() < 1e-12, "fitness {f}");
    }

    /// Fitness is finite and positive for arbitrary in-domain genomes —
    /// the GA never sees NaN/∞ from a legitimate vector.
    #[test]
    fn fitness_is_finite_positive_across_the_search_space(
        callee in 0i64..=60,
        always in 0i64..=35,
        depth in 0i64..=16,
        caller in 0i64..=4200,
        hot in 0i64..=420,
        scen in 0usize..2,
        goal in 0usize..3,
    ) {
        let scenario = [Scenario::Opt, Scenario::Adapt][scen];
        let goal = [Goal::Running, Goal::Total, Goal::Balance][goal];
        let t = tuner_for(scenario, goal, false);
        let f = t.fitness(&InlineParams::from_genes(&[callee, always, depth, caller, hot]));
        prop_assert!(f.is_finite() && f > 0.0, "fitness {f}");
        // No legitimate heuristic should be catastrophically far from the
        // default in this simulator (sanity bound, not a theorem).
        prop_assert!(f < 10.0, "fitness {f} suspiciously bad");
    }

    /// Fitness is a pure function of the genome.
    #[test]
    fn fitness_is_pure(callee in 1i64..=50, caller in 1i64..=4000) {
        let t = tuner_for(Scenario::Opt, Goal::Total, false);
        let p = InlineParams::from_genes(&[callee, 11, 5, caller, 135]);
        prop_assert_eq!(t.fitness(&p).to_bits(), t.fitness(&p).to_bits());
    }
}
