//! Process-wide memoized measurements of the **default** heuristic.
//!
//! Every corner of the pipeline needs the Jikes-default measurement of a
//! benchmark: the tuner uses it as the fitness normalization constant and
//! balance factor, [`crate::eval::evaluate_suite`] as the denominator of
//! every reported ratio, and the daemon measures the same training suites
//! for many concurrent jobs. The measurement is deterministic, so
//! re-running it is pure waste — this module computes each
//! (benchmark, scenario, architecture, adaptive-config) cell once per
//! process and hands out shared references.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

use inliner::InlineParams;
use jit::{measure, AdaptConfig, ArchModel, Measurement, Scenario};
use workloads::Benchmark;

/// The memo table. Keys are structural fingerprints (see [`fingerprint`]);
/// values are shared so callers never copy a [`Measurement`].
fn cache() -> &'static Mutex<HashMap<u64, Arc<Measurement>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<Measurement>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A structural fingerprint of one measurement cell.
///
/// The benchmark is identified by its generator spec *plus* the program's
/// shape (method count, statement count, call sites) so a hand-built
/// `Benchmark` whose `program` doesn't match its `spec` still gets its own
/// cache line. The architecture and adaptive config are hashed field by
/// field through their `Debug` form (both are small all-scalar structs).
fn fingerprint(bench: &Benchmark, scenario: Scenario, arch: &ArchModel, cfg: &AdaptConfig) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{:?}", bench.spec).hash(&mut h);
    bench.program.method_count().hash(&mut h);
    bench.program.total_stmts().hash(&mut h);
    bench.program.call_site_count().hash(&mut h);
    scenario.hash(&mut h);
    format!("{arch:?}").hash(&mut h);
    format!("{cfg:?}").hash(&mut h);
    h.finish()
}

/// The default-heuristic measurement of one benchmark, memoized for the
/// life of the process.
#[must_use]
pub fn default_measurement(
    bench: &Benchmark,
    scenario: Scenario,
    arch: &ArchModel,
    cfg: &AdaptConfig,
) -> Arc<Measurement> {
    let key = fingerprint(bench, scenario, arch, cfg);
    if let Some(m) = cache().lock().expect("defaults cache poisoned").get(&key) {
        return Arc::clone(m);
    }
    // Measure outside the lock: a measurement can take a while and other
    // threads may want unrelated cells. A racing thread measuring the same
    // cell computes the identical value (the pipeline is deterministic),
    // so last-write-wins is harmless.
    let m = Arc::new(measure(
        &bench.program,
        scenario,
        arch,
        &InlineParams::jikes_default(),
        cfg,
    ));
    cache()
        .lock()
        .expect("defaults cache poisoned")
        .insert(key, Arc::clone(&m));
    m
}

/// Default-heuristic measurements for a whole suite, memoized per
/// benchmark.
#[must_use]
pub fn default_measurements(
    suite: &[Benchmark],
    scenario: Scenario,
    arch: &ArchModel,
    cfg: &AdaptConfig,
) -> Vec<Arc<Measurement>> {
    suite
        .iter()
        .map(|b| default_measurement(b, scenario, arch, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::benchmark_by_name;

    #[test]
    fn memoizes_identical_cells() {
        let b = benchmark_by_name("db").unwrap();
        let arch = ArchModel::pentium4();
        let cfg = AdaptConfig::default();
        let a = default_measurement(&b, Scenario::Opt, &arch, &cfg);
        let c = default_measurement(&b, Scenario::Opt, &arch, &cfg);
        // Same allocation, not just equal values.
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn distinguishes_scenario_arch_and_config() {
        let b = benchmark_by_name("db").unwrap();
        let arch = ArchModel::pentium4();
        let cfg = AdaptConfig::default();
        let opt = default_measurement(&b, Scenario::Opt, &arch, &cfg);
        let adapt = default_measurement(&b, Scenario::Adapt, &arch, &cfg);
        assert!(!Arc::ptr_eq(&opt, &adapt));
        let ppc = default_measurement(&b, Scenario::Opt, &ArchModel::powerpc_g4(), &cfg);
        assert!(!Arc::ptr_eq(&opt, &ppc));
        let warm = AdaptConfig {
            warmup_fraction: 0.2,
            ..cfg
        };
        let warmed = default_measurement(&b, Scenario::Adapt, &arch, &warm);
        assert!(!Arc::ptr_eq(&adapt, &warmed));
    }

    #[test]
    fn matches_direct_measurement() {
        let b = benchmark_by_name("jess").unwrap();
        let arch = ArchModel::pentium4();
        let cfg = AdaptConfig::default();
        let cached = default_measurement(&b, Scenario::Opt, &arch, &cfg);
        let direct = measure(
            &b.program,
            Scenario::Opt,
            &arch,
            &InlineParams::jikes_default(),
            &cfg,
        );
        assert_eq!(*cached, direct);
    }
}
