//! The off-line tuning driver.
//!
//! A [`TuningTask`] names a (scenario, goal, architecture) cell of the
//! paper's Table 4; a [`Tuner`] binds it to a training suite and exposes
//! the GA fitness function; [`Tuner::tune`] runs the genetic algorithm and
//! returns the tuned [`InlineParams`].

use std::sync::Arc;

use ga::{GaConfig, GaResult, GaState, Ranges};
use inliner::{InlineParams, ParamRanges};
use jit::{measure, AdaptConfig, ArchModel, Measurement, Scenario};
use workloads::Benchmark;

use crate::defaults::default_measurements;
use crate::fitness::geometric_mean;
use crate::goal::Goal;

/// One tuning configuration — a column of the paper's Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningTask {
    /// Display name, e.g. `"Opt:Bal"` or `"Adapt (PPC)"`.
    pub name: String,
    /// Compilation scenario.
    pub scenario: Scenario,
    /// Optimization goal.
    pub goal: Goal,
    /// Target machine.
    pub arch: ArchModel,
}

impl TuningTask {
    /// Genome ranges for this task: the full Table 1 ranges under `Adapt`;
    /// under `Opt` the `HOT_CALLEE_MAX_SIZE` gene is pinned (the paper
    /// reports "NA" for it — no profile exists, so the gene is inert).
    #[must_use]
    pub fn ranges(&self) -> Ranges {
        let pr = match self.scenario {
            Scenario::Adapt => ParamRanges::paper(),
            Scenario::Opt => ParamRanges::paper_opt_only(),
        };
        Ranges::new(pr.bounds.to_vec())
    }
}

/// The five tuning tasks of the paper's Table 4 (excluding the Default
/// column).
#[must_use]
pub fn paper_tasks() -> Vec<TuningTask> {
    vec![
        TuningTask {
            name: "Adapt".into(),
            scenario: Scenario::Adapt,
            goal: Goal::Balance,
            arch: ArchModel::pentium4(),
        },
        TuningTask {
            name: "Opt:Bal".into(),
            scenario: Scenario::Opt,
            goal: Goal::Balance,
            arch: ArchModel::pentium4(),
        },
        TuningTask {
            name: "Opt:Tot".into(),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: ArchModel::pentium4(),
        },
        TuningTask {
            name: "Adapt (PPC)".into(),
            scenario: Scenario::Adapt,
            goal: Goal::Balance,
            arch: ArchModel::powerpc_g4(),
        },
        TuningTask {
            name: "Opt:Bal (PPC)".into(),
            scenario: Scenario::Opt,
            goal: Goal::Balance,
            arch: ArchModel::powerpc_g4(),
        },
    ]
}

/// The tuning result: the parameters plus the GA's search record.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The task that was tuned.
    pub task: TuningTask,
    /// The tuned parameter vector (the deliverable baked into the
    /// "shipped" compiler).
    pub params: InlineParams,
    /// Fitness of the tuned parameters (relative cost vs. the default
    /// heuristic; < 1 means the GA beat the default on the training
    /// suite).
    pub fitness: f64,
    /// The GA's full result (history, evaluation counts).
    pub ga: GaResult,
}

/// Binds a task to a training suite and evaluates/tunes parameter
/// vectors.
pub struct Tuner {
    task: TuningTask,
    adapt_cfg: AdaptConfig,
    training: Vec<Benchmark>,
    /// Per-benchmark measurement under the Jikes default heuristic — the
    /// normalization constants of the fitness function and the balance
    /// factors. Shared with every other consumer of the same cell through
    /// the process-wide [`crate::defaults`] cache.
    defaults: Vec<Arc<Measurement>>,
    /// The cell's store fingerprint, computed on first use (only store
    /// traffic needs it).
    fingerprint: std::sync::OnceLock<stored::Fingerprint>,
}

impl Tuner {
    /// Creates a tuner over a training suite (the paper trains on
    /// SPECjvm98: pass [`workloads::specjvm98()`]).
    ///
    /// The default-heuristic measurements are fetched through the
    /// process-wide [`crate::defaults`] cache, so constructing many tuners
    /// over the same suite (or evaluating the suite afterwards) measures
    /// the defaults only once.
    ///
    /// # Panics
    /// Panics if the suite is empty.
    #[must_use]
    pub fn new(task: TuningTask, training: Vec<Benchmark>, adapt_cfg: AdaptConfig) -> Self {
        assert!(!training.is_empty(), "training suite must not be empty");
        let defaults = default_measurements(&training, task.scenario, &task.arch, &adapt_cfg);
        Self {
            task,
            adapt_cfg,
            training,
            defaults,
            fingerprint: std::sync::OnceLock::new(),
        }
    }

    /// The cell's fingerprint for the fitness store: exact identity
    /// plus the workload-shape features warm-start transfer ranks by.
    /// Computed once per tuner, on first use.
    #[must_use]
    pub fn fingerprint(&self) -> &stored::Fingerprint {
        self.fingerprint
            .get_or_init(|| crate::fingerprint::cell_fingerprint(&self.task, &self.training))
    }

    /// The task being tuned.
    #[must_use]
    pub fn task(&self) -> &TuningTask {
        &self.task
    }

    /// The default-heuristic measurements of the training suite (parallel
    /// to the suite order).
    #[must_use]
    pub fn defaults(&self) -> &[Arc<Measurement>] {
        &self.defaults
    }

    /// Fitness of a parameter vector: geometric mean over the training
    /// suite of `goal_metric(params) / goal_metric(default)` (§3.1,
    /// normalized). Lower is better; the default heuristic scores exactly
    /// 1.
    #[must_use]
    pub fn fitness(&self, params: &InlineParams) -> f64 {
        let mut ratios = Vec::with_capacity(self.training.len());
        for (b, default) in self.training.iter().zip(&self.defaults) {
            let m = measure(
                &b.program,
                self.task.scenario,
                &self.task.arch,
                params,
                &self.adapt_cfg,
            );
            let num = self.task.goal.metric(&m, default);
            let den = self.task.goal.metric(default, default);
            if den <= 0.0 {
                return f64::INFINITY;
            }
            ratios.push(num / den);
        }
        geometric_mean(&ratios)
    }

    /// Seeds a resumable tuning run: a [`GaState`] over this task's Table 1
    /// ranges. Drive it with [`Tuner::step`]; snapshot it between steps
    /// for checkpointing (see `ga::GaSnapshot`).
    #[must_use]
    pub fn start(&self, ga_config: GaConfig) -> GaState {
        GaState::new(self.task.ranges(), ga_config)
    }

    /// Advances a tuning run by exactly one generation. Returns `true`
    /// once the search is complete (see `ga::GaState::step`).
    pub fn step(&self, state: &mut GaState) -> bool {
        state.step(|genes| self.fitness(&InlineParams::from_genes(genes)))
    }

    /// Packages a (finished or in-flight) run's best-so-far into a
    /// [`TuneOutcome`].
    ///
    /// # Panics
    /// Panics if no generation has completed yet (there is no best genome
    /// to report).
    #[must_use]
    pub fn outcome(&self, state: &GaState) -> TuneOutcome {
        assert!(
            state.generation() > 0,
            "no generations completed: nothing to report"
        );
        let ga = state.result();
        let params = InlineParams::from_genes(&ga.best_genome);
        TuneOutcome {
            task: self.task.clone(),
            params,
            fitness: ga.best_fitness,
            ga,
        }
    }

    /// Runs the genetic algorithm (§3.1) and returns the tuned heuristic.
    /// A blocking loop over [`Tuner::start`] / [`Tuner::step`] — the
    /// daemon's resumable path and this call share every instruction.
    #[must_use]
    pub fn tune(&self, ga_config: GaConfig) -> TuneOutcome {
        let mut state = self.start(ga_config);
        while !self.step(&mut state) {}
        self.outcome(&state)
    }

    /// Seeds a resumable search under any named strategy spec (`"ga"`,
    /// `"random"`, `"hillclimb"`, `"anneal"`, `"grid"`, `"race"`,
    /// `"race:a+b+..."` — see `search::build`) over this task's Table 1
    /// ranges. `"ga"` behind this seam is bit-identical to
    /// [`Tuner::start`] with the same config.
    pub fn start_strategy(
        &self,
        strategy: &str,
        ga_config: GaConfig,
    ) -> Result<Box<dyn search::Strategy>, String> {
        search::build(strategy, self.task.ranges(), ga_config)
    }

    /// Advances a pluggable-strategy search by one ask/evaluate/tell
    /// round, evaluating the batch locally on the strategy's configured
    /// thread count. Returns `true` once the search is complete.
    pub fn step_strategy(&self, strategy: &mut dyn search::Strategy) -> bool {
        let threads = strategy.config().threads;
        let backend = ga::LocalEvaluator::new(
            |genes: &[i64]| self.fitness(&InlineParams::from_genes(genes)),
            threads,
        );
        search::step_with(strategy, &backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::benchmark_by_name;

    fn small_training() -> Vec<Benchmark> {
        vec![
            benchmark_by_name("db").unwrap(),
            benchmark_by_name("jess").unwrap(),
        ]
    }

    fn task() -> TuningTask {
        TuningTask {
            name: "Opt:Tot".into(),
            scenario: Scenario::Opt,
            goal: Goal::Total,
            arch: ArchModel::pentium4(),
        }
    }

    #[test]
    fn default_params_score_one() {
        let t = Tuner::new(task(), small_training(), AdaptConfig::default());
        let f = t.fitness(&InlineParams::jikes_default());
        assert!((f - 1.0).abs() < 1e-9, "fitness {f}");
    }

    #[test]
    fn paper_tasks_cover_table4() {
        let tasks = paper_tasks();
        assert_eq!(tasks.len(), 5);
        assert_eq!(tasks[0].name, "Adapt");
        assert_eq!(tasks[2].goal, Goal::Total);
        assert_eq!(tasks[3].arch.name, "ppc-g4");
    }

    #[test]
    fn opt_tasks_pin_hot_gene() {
        let t = task();
        let r = t.ranges();
        assert_eq!(r.gene(4), (135, 135));
    }

    #[test]
    fn short_tune_beats_or_matches_default() {
        let t = Tuner::new(task(), small_training(), AdaptConfig::default());
        let outcome = t.tune(GaConfig {
            pop_size: 10,
            generations: 8,
            threads: 1,
            stagnation_limit: None,
            seed: 42,
            ..GaConfig::default()
        });
        // The default genome may not be in the random population, but with
        // 80 evaluations the GA should find something at least as good.
        assert!(outcome.fitness <= 1.05, "fitness {}", outcome.fitness);
        assert!(t.task().ranges().contains(&outcome.params.to_genes()));
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_tune() {
        let t = Tuner::new(task(), small_training(), AdaptConfig::default());
        let cfg = GaConfig {
            pop_size: 8,
            generations: 8,
            threads: 1,
            stagnation_limit: None,
            seed: 1234,
            ..GaConfig::default()
        };
        let uninterrupted = t.tune(cfg.clone());

        // Run three generations, snapshot (as the daemon checkpoints),
        // "restart" from the snapshot and run to completion.
        let mut state = t.start(cfg);
        for _ in 0..3 {
            assert!(!t.step(&mut state));
        }
        let mut resumed = GaState::restore(state.snapshot()).expect("valid snapshot");
        while !t.step(&mut resumed) {}
        let outcome = t.outcome(&resumed);
        assert_eq!(outcome.params, uninterrupted.params);
        assert_eq!(outcome.fitness.to_bits(), uninterrupted.fitness.to_bits());
        assert_eq!(outcome.ga.evaluations, uninterrupted.ga.evaluations);
        assert_eq!(outcome.ga.history, uninterrupted.ga.history);
    }

    #[test]
    fn fitness_distinguishes_heuristics() {
        let t = Tuner::new(task(), small_training(), AdaptConfig::default());
        let disabled = t.fitness(&InlineParams::disabled());
        let default = t.fitness(&InlineParams::jikes_default());
        assert_ne!(disabled, default);
    }

    #[test]
    fn ga_strategy_matches_plain_tune_bit_for_bit() {
        let t = Tuner::new(
            task(),
            vec![benchmark_by_name("db").unwrap()],
            AdaptConfig::default(),
        );
        let cfg = GaConfig {
            pop_size: 8,
            generations: 5,
            threads: 1,
            stagnation_limit: None,
            seed: 77,
            ..GaConfig::default()
        };
        let plain = t.tune(cfg.clone());
        let mut strategy = t.start_strategy("ga", cfg).expect("known strategy");
        while !t.step_strategy(strategy.as_mut()) {}
        let (genome, fitness) = strategy.best().expect("searched");
        assert_eq!(genome, plain.params.to_genes());
        assert_eq!(fitness.to_bits(), plain.fitness.to_bits());
    }

    #[test]
    fn race_strategy_runs_on_the_real_fitness() {
        let t = Tuner::new(
            task(),
            vec![benchmark_by_name("db").unwrap()],
            AdaptConfig::default(),
        );
        let cfg = GaConfig {
            pop_size: 6,
            generations: 4,
            threads: 1,
            stagnation_limit: None,
            seed: 5,
            ..GaConfig::default()
        };
        let mut strategy = t
            .start_strategy("race:random+grid", cfg)
            .expect("known strategy");
        while !t.step_strategy(strategy.as_mut()) {}
        let (genome, fitness) = strategy.best().expect("searched");
        assert!(t.task().ranges().contains(&genome));
        assert!(fitness.is_finite());
        let standings = strategy.standings();
        assert_eq!(standings.len(), 2);
        assert!(standings.iter().all(|s| s.best_fitness.is_some()));
    }

    #[test]
    fn unknown_strategy_is_a_structured_error() {
        let t = Tuner::new(task(), small_training(), AdaptConfig::default());
        let err = t
            .start_strategy("gradient", GaConfig::default())
            .err()
            .expect("must reject");
        assert!(err.contains("unknown strategy"), "{err}");
    }
}
