//! The paper's contribution: **off-line genetic-algorithm tuning of a
//! dynamic compiler's inlining heuristic**, specialized per compilation
//! scenario, optimization goal and target architecture.
//!
//! This crate ties the substrates together:
//!
//! * [`goal`] — the three optimization goals of §3.3 (*running time*,
//!   *total time*, and *balance* — `factor × Running(s) + Total(s)` with
//!   `factor = Total(s_def)/Running(s_def)`);
//! * [`fitness`] — the §3.1 fitness function: the geometric mean of the
//!   goal metric over the training suite, normalized to the default
//!   heuristic (normalization leaves the argmin unchanged and makes
//!   fitness a dimensionless "relative cost");
//! * [`tuner`] — the off-line tuning driver: wraps a training suite, a
//!   [`jit::Scenario`]/[`jit::ArchModel`] pair and a goal into a GA
//!   fitness function and runs `inlinetune-ga` over the paper's Table 1
//!   parameter ranges. Includes the five paper tuning tasks of Table 4;
//! * [`eval`] — the §5 evaluation methodology: measure a parameter vector
//!   on a (train or unseen test) suite and report per-benchmark and
//!   average running/total ratios versus the Jikes default heuristic —
//!   the numbers behind Figures 5–9 and Table 5;
//! * [`per_program`] — §6.5: tuning the heuristic for the *running time of
//!   each benchmark individually* (Figure 10).
//!
//! Like the paper, all tuning happens off-line: the output is a plain
//! [`inliner::InlineParams`] you bake into the "shipped" compiler; there
//! is no runtime overhead.

pub mod defaults;
pub mod eval;
pub mod fingerprint;
pub mod fitness;
pub mod goal;
pub mod multi_seed;
pub mod per_program;
pub mod tuner;

pub use defaults::{default_measurement, default_measurements};
pub use eval::{evaluate_suite, evaluate_suite_with_defaults, BenchEval, SuiteEval};
pub use fingerprint::cell_fingerprint;
pub use fitness::geometric_mean;
pub use goal::Goal;
pub use multi_seed::tune_multi_seed;
pub use per_program::{tune_per_program, PerProgramOutcome};
pub use tuner::{paper_tasks, TuneOutcome, Tuner, TuningTask};
