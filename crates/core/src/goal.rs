//! Optimization goals (§3.3 of the paper).

use jit::Measurement;

/// What the tuner minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Goal {
    /// Steady-state running time (no compilation) — §6.5's per-program
    /// goal for long-running codes.
    Running,
    /// Total execution time: first iteration including all dynamic
    /// compilation.
    Total,
    /// `factor × Running(s) + Total(s)` with
    /// `factor = Total(s_def) / Running(s_def)`: reduces total time without
    /// letting running time blow up (the paper calls this "probably the
    /// most useful case").
    Balance,
}

impl Goal {
    /// Short label matching the paper's column naming (`Bal`, `Tot`,
    /// `Run`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Goal::Running => "Run",
            Goal::Total => "Tot",
            Goal::Balance => "Bal",
        }
    }

    /// The goal metric in cycles, given this benchmark's *default-params*
    /// measurement (needed for the balance factor).
    #[must_use]
    pub fn metric(self, m: &Measurement, default: &Measurement) -> f64 {
        match self {
            Goal::Running => m.running_cycles,
            Goal::Total => m.total_cycles,
            Goal::Balance => {
                let factor = if default.running_cycles > 0.0 {
                    default.total_cycles / default.running_cycles
                } else {
                    1.0
                };
                factor * m.running_cycles + m.total_cycles
            }
        }
    }
}

impl std::fmt::Display for Goal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit::ExecBreakdown;

    fn meas(running: f64, total: f64) -> Measurement {
        Measurement {
            total_cycles: total,
            running_cycles: running,
            compile_cycles: total - running,
            baseline_compile_cycles: 0.0,
            opt_compile_cycles: total - running,
            first_iter_exec_cycles: running,
            steady: ExecBreakdown {
                total_cycles: running,
                op_cycles: running,
                call_cycles: 0.0,
                icache_factor: 1.0,
                hot_footprint: 0.0,
                dynamic_calls: 0.0,
            },
            code_size: 0,
            inline_stats: inliner::InlineStats::default(),
            n_opt_methods: 0,
            n_baseline_methods: 0,
        }
    }

    #[test]
    fn running_and_total_pick_their_fields() {
        let d = meas(100.0, 150.0);
        let m = meas(80.0, 160.0);
        assert_eq!(Goal::Running.metric(&m, &d), 80.0);
        assert_eq!(Goal::Total.metric(&m, &d), 160.0);
    }

    #[test]
    fn balance_weights_by_default_ratio() {
        let d = meas(100.0, 150.0); // factor = 1.5
        let m = meas(80.0, 160.0);
        assert!((Goal::Balance.metric(&m, &d) - (1.5 * 80.0 + 160.0)).abs() < 1e-9);
    }

    #[test]
    fn balance_on_default_is_twice_total() {
        // Perf(s_def) = factor*R_def + T_def = T_def + T_def = 2 T_def.
        let d = meas(100.0, 150.0);
        assert!((Goal::Balance.metric(&d, &d) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Goal::Balance.to_string(), "Bal");
        assert_eq!(Goal::Total.to_string(), "Tot");
        assert_eq!(Goal::Running.to_string(), "Run");
    }
}
