//! §6.5: tuning the heuristic for each program individually, targeting
//! pure running time (Figure 10).
//!
//! For occasionally long-running programs where compilation is
//! insignificant, the paper tunes a *separate* heuristic per benchmark
//! with fitness = that benchmark's running time. This module reproduces
//! that experiment: one GA run per program.

use ga::{GaConfig, GeneticAlgorithm};
use inliner::InlineParams;
use jit::{measure, AdaptConfig, ArchModel, Scenario};
use workloads::Benchmark;

use crate::tuner::TuningTask;
use crate::Goal;

/// The per-program tuning result for one benchmark.
#[derive(Debug, Clone)]
pub struct PerProgramOutcome {
    /// Benchmark name.
    pub name: &'static str,
    /// The program-specialized parameters.
    pub params: InlineParams,
    /// Running time relative to the default heuristic (< 1 = faster).
    pub running_ratio: f64,
    /// Distinct simulator evaluations spent.
    pub evaluations: usize,
}

/// Tunes the heuristic for the running time of each benchmark in turn
/// (the paper does this under the `Opt` scenario on x86).
///
/// `seed_base` varies the GA seed per benchmark so runs are independent.
#[must_use]
pub fn tune_per_program(
    suite: &[Benchmark],
    arch: &ArchModel,
    ga_config: &GaConfig,
    seed_base: u64,
) -> Vec<PerProgramOutcome> {
    let adapt_cfg = AdaptConfig::default();
    let scenario = Scenario::Opt;
    suite
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let default = measure(
                &b.program,
                scenario,
                arch,
                &InlineParams::jikes_default(),
                &adapt_cfg,
            );
            let task = TuningTask {
                name: format!("PerProgram({})", b.name()),
                scenario,
                goal: Goal::Running,
                arch: arch.clone(),
            };
            let engine = GeneticAlgorithm::new(
                task.ranges(),
                GaConfig {
                    seed: simrng::child_seed(seed_base, b.name()) ^ i as u64,
                    ..ga_config.clone()
                },
            );
            let ga = engine.run(|genes| {
                let params = InlineParams::from_genes(genes);
                let m = measure(&b.program, scenario, arch, &params, &adapt_cfg);
                m.running_cycles / default.running_cycles
            });
            let params = InlineParams::from_genes(&ga.best_genome);
            PerProgramOutcome {
                name: b.name(),
                params,
                running_ratio: ga.best_fitness,
                evaluations: ga.evaluations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::benchmark_by_name;

    #[test]
    fn per_program_tuning_never_loses_to_default() {
        let suite = vec![benchmark_by_name("db").unwrap()];
        let out = tune_per_program(
            &suite,
            &ArchModel::pentium4(),
            &GaConfig {
                pop_size: 10,
                generations: 6,
                threads: 1,
                stagnation_limit: None,
                ..GaConfig::default()
            },
            7,
        );
        assert_eq!(out.len(), 1);
        // Running-ratio fitness: anything the GA returns is the best seen;
        // with a handful of generations it should at least approach 1.0.
        assert!(out[0].running_ratio <= 1.02, "{}", out[0].running_ratio);
        assert!(out[0].evaluations > 0);
    }
}
