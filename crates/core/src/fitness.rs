//! The fitness function of §3.1: the geometric mean of a performance
//! metric over the training suite.

/// Geometric mean of strictly positive values:
/// `Perf(S) = (∏ Perf(s))^(1/|S|)`.
///
/// Computed in log space for numerical robustness. Returns `+inf` if the
/// slice is empty or any value is non-positive/non-finite (a degenerate
/// simulation outcome must rank worst, never best).
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::INFINITY;
    }
    let mut log_sum = 0.0;
    for &v in values {
        if v <= 0.0 || v.is_nan() || !v.is_finite() {
            return f64::INFINITY;
        }
        log_sum += v.ln();
    }
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hand_computation() {
        let g = geometric_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        let g3 = geometric_mean(&[2.0, 4.0, 8.0]);
        assert!((g3 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn invariant_under_permutation() {
        let a = geometric_mean(&[3.0, 7.0, 11.0]);
        let b = geometric_mean(&[11.0, 3.0, 7.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn below_arithmetic_mean() {
        let vals = [1.0, 2.0, 3.0, 10.0];
        let am: f64 = vals.iter().sum::<f64>() / 4.0;
        assert!(geometric_mean(&vals) < am);
    }

    #[test]
    fn degenerate_inputs_rank_worst() {
        assert_eq!(geometric_mean(&[]), f64::INFINITY);
        assert_eq!(geometric_mean(&[1.0, 0.0]), f64::INFINITY);
        assert_eq!(geometric_mean(&[1.0, -2.0]), f64::INFINITY);
        assert_eq!(geometric_mean(&[1.0, f64::NAN]), f64::INFINITY);
        assert_eq!(geometric_mean(&[1.0, f64::INFINITY]), f64::INFINITY);
    }

    #[test]
    fn scale_free_normalization_preserves_order() {
        // Dividing each component by a per-benchmark constant rescales the
        // geomean by a constant, so rankings are unchanged — the property
        // that lets the tuner normalize to the default heuristic.
        let raw_a = [100.0, 4.0];
        let raw_b = [120.0, 3.5];
        let norms = [50.0, 2.0];
        let n_a: Vec<f64> = raw_a.iter().zip(&norms).map(|(v, n)| v / n).collect();
        let n_b: Vec<f64> = raw_b.iter().zip(&norms).map(|(v, n)| v / n).collect();
        assert_eq!(
            geometric_mean(&raw_a) < geometric_mean(&raw_b),
            geometric_mean(&n_a) < geometric_mean(&n_b)
        );
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let g = geometric_mean(&[1e300, 1e300, 1e300]);
        assert!((g / 1e300 - 1.0).abs() < 1e-9);
    }
}
