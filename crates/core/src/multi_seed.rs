//! Multi-seed tuning: run the GA from several seeds and keep the best.
//!
//! The fitness landscape over the inlining parameters has broad plateaus
//! and near-equal basins (e.g. several `CALLER_MAX_SIZE` regimes within
//! <1% training fitness of each other — see EXPERIMENTS.md's analysis of
//! the Adapt transfer result). A single GA run picks one basin by seed
//! luck; restarting from independent seeds and keeping the fittest result
//! is the standard cheap hedge, and with fitness memoization *shared
//! across restarts* the marginal cost of extra seeds is low once the
//! population has converged.

use ga::GaConfig;
use simrng::child_seed;

use crate::tuner::{TuneOutcome, Tuner};

/// Runs [`Tuner::tune`] from `n_seeds` independent seeds (derived from
/// `config.seed`) and returns the outcome with the best fitness, breaking
/// ties toward the earliest seed (so results stay deterministic).
///
/// # Panics
/// Panics if `n_seeds == 0`.
#[must_use]
pub fn tune_multi_seed(tuner: &Tuner, config: &GaConfig, n_seeds: usize) -> TuneOutcome {
    assert!(n_seeds > 0, "need at least one seed");
    let mut best: Option<TuneOutcome> = None;
    for k in 0..n_seeds {
        let cfg = GaConfig {
            seed: child_seed(config.seed, &format!("restart{k}")),
            ..config.clone()
        };
        let outcome = tuner.tune(cfg);
        let better = match &best {
            None => true,
            Some(b) => outcome.fitness < b.fitness,
        };
        if better {
            best = Some(outcome);
        }
    }
    best.expect("n_seeds > 0 guarantees an outcome")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;
    use crate::tuner::TuningTask;
    use jit::{AdaptConfig, ArchModel, Scenario};
    use workloads::benchmark_by_name;

    fn tiny_tuner() -> Tuner {
        Tuner::new(
            TuningTask {
                name: "Opt:Tot".into(),
                scenario: Scenario::Opt,
                goal: Goal::Total,
                arch: ArchModel::pentium4(),
            },
            vec![benchmark_by_name("db").unwrap()],
            AdaptConfig::default(),
        )
    }

    fn tiny_ga() -> GaConfig {
        GaConfig {
            pop_size: 8,
            generations: 4,
            threads: 1,
            stagnation_limit: None,
            seed: 5,
            ..GaConfig::default()
        }
    }

    #[test]
    fn multi_seed_is_no_worse_than_single() {
        let tuner = tiny_tuner();
        let single = tuner.tune(GaConfig {
            seed: child_seed(5, "restart0"),
            ..tiny_ga()
        });
        let multi = tune_multi_seed(&tuner, &tiny_ga(), 3);
        assert!(multi.fitness <= single.fitness + 1e-12);
    }

    #[test]
    fn multi_seed_is_deterministic() {
        let tuner = tiny_tuner();
        let a = tune_multi_seed(&tuner, &tiny_ga(), 2);
        let b = tune_multi_seed(&tuner, &tiny_ga(), 2);
        assert_eq!(a.params, b.params);
        assert_eq!(a.fitness, b.fitness);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_panics() {
        let tuner = tiny_tuner();
        let _ = tune_multi_seed(&tuner, &tiny_ga(), 0);
    }
}
