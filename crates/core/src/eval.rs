//! The §5 evaluation methodology: measuring a tuned heuristic against the
//! default on a suite.
//!
//! Produces exactly what the paper's Figures 5–9 plot — per-benchmark
//! *running* and *total* time normalized to the Jikes default heuristic
//! (bars below 1 = improvement) — plus the suite averages Table 5 reports.

use inliner::InlineParams;
use jit::{measure, AdaptConfig, ArchModel, Measurement, Scenario};
use workloads::Benchmark;

/// One benchmark's result: the height of its two bars in Figures 5–9.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEval {
    /// Benchmark name.
    pub name: &'static str,
    /// Running time relative to the default heuristic (< 1 = faster).
    pub running_ratio: f64,
    /// Total time relative to the default heuristic.
    pub total_ratio: f64,
    /// Absolute measurement under the evaluated parameters.
    pub tuned: Measurement,
    /// Absolute measurement under the default heuristic.
    pub default: Measurement,
}

/// A whole suite's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteEval {
    /// Per-benchmark rows.
    pub benches: Vec<BenchEval>,
}

impl SuiteEval {
    /// Arithmetic mean of the running-time ratios (the paper's "average
    /// reduction in running time" is `1 −` this).
    #[must_use]
    pub fn mean_running_ratio(&self) -> f64 {
        mean(self.benches.iter().map(|b| b.running_ratio))
    }

    /// Arithmetic mean of the total-time ratios.
    #[must_use]
    pub fn mean_total_ratio(&self) -> f64 {
        mean(self.benches.iter().map(|b| b.total_ratio))
    }

    /// Average percentage reduction in running time (positive =
    /// improvement), as quoted in the paper's Table 5.
    #[must_use]
    pub fn running_reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.mean_running_ratio())
    }

    /// Average percentage reduction in total time.
    #[must_use]
    pub fn total_reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.mean_total_ratio())
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Measures `params` against the default heuristic on every benchmark of a
/// suite.
///
/// The default-heuristic measurements come from the process-wide
/// [`crate::defaults`] cache: evaluating many parameter vectors on the
/// same suite (or evaluating after a [`crate::Tuner`] already measured the
/// defaults) measures the default exactly once per benchmark.
#[must_use]
pub fn evaluate_suite(
    suite: &[Benchmark],
    scenario: Scenario,
    arch: &ArchModel,
    params: &InlineParams,
    adapt_cfg: &AdaptConfig,
) -> SuiteEval {
    let defaults: Vec<Measurement> =
        crate::defaults::default_measurements(suite, scenario, arch, adapt_cfg)
            .iter()
            .map(|m| (**m).clone())
            .collect();
    evaluate_suite_with_defaults(suite, &defaults, scenario, arch, params, adapt_cfg)
}

/// Like [`evaluate_suite`], but against caller-provided default
/// measurements (parallel to the suite order) — for callers that already
/// hold them, e.g. via `Tuner::defaults`.
///
/// # Panics
/// Panics if `defaults` is not parallel to `suite`.
#[must_use]
pub fn evaluate_suite_with_defaults(
    suite: &[Benchmark],
    defaults: &[Measurement],
    scenario: Scenario,
    arch: &ArchModel,
    params: &InlineParams,
    adapt_cfg: &AdaptConfig,
) -> SuiteEval {
    assert_eq!(
        suite.len(),
        defaults.len(),
        "defaults must be parallel to the suite"
    );
    let benches = suite
        .iter()
        .zip(defaults)
        .map(|(b, default)| {
            let tuned = measure(&b.program, scenario, arch, params, adapt_cfg);
            BenchEval {
                name: b.name(),
                running_ratio: tuned.running_cycles / default.running_cycles,
                total_ratio: tuned.total_cycles / default.total_cycles,
                tuned,
                default: default.clone(),
            }
        })
        .collect();
    SuiteEval { benches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::benchmark_by_name;

    fn suite() -> Vec<Benchmark> {
        vec![
            benchmark_by_name("db").unwrap(),
            benchmark_by_name("compress").unwrap(),
        ]
    }

    #[test]
    fn default_against_itself_is_all_ones() {
        let e = evaluate_suite(
            &suite(),
            Scenario::Opt,
            &ArchModel::pentium4(),
            &InlineParams::jikes_default(),
            &AdaptConfig::default(),
        );
        for b in &e.benches {
            assert!((b.running_ratio - 1.0).abs() < 1e-12, "{}", b.name);
            assert!((b.total_ratio - 1.0).abs() < 1e-12, "{}", b.name);
        }
        assert!((e.mean_running_ratio() - 1.0).abs() < 1e-12);
        assert!(e.running_reduction_pct().abs() < 1e-9);
    }

    #[test]
    fn disabling_inlining_slows_running_time() {
        let e = evaluate_suite(
            &suite(),
            Scenario::Opt,
            &ArchModel::pentium4(),
            &InlineParams::disabled(),
            &AdaptConfig::default(),
        );
        assert!(e.mean_running_ratio() > 1.0, "{}", e.mean_running_ratio());
        assert!(e.total_reduction_pct() < 50.0);
    }

    #[test]
    fn rows_carry_absolute_measurements() {
        let e = evaluate_suite(
            &suite(),
            Scenario::Adapt,
            &ArchModel::powerpc_g4(),
            &InlineParams::jikes_default(),
            &AdaptConfig::default(),
        );
        for b in &e.benches {
            assert!(b.tuned.total_cycles > 0.0);
            assert!(b.default.running_cycles > 0.0);
        }
    }
}
