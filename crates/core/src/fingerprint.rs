//! Workload fingerprints: the store's notion of *which cell* a
//! measurement belongs to and *how similar* two cells' workloads are.
//!
//! The fingerprint has two halves with different jobs:
//!
//! * the **cell digest** is exact identity — scenario, goal,
//!   architecture and the training suite *in evaluation order* (the
//!   geometric mean accumulates in suite order, and the store promises
//!   bit-exact replay, so order is identity), with each benchmark
//!   identified by its name *plus* its program's exact
//!   structural/dynamic statistics, so a drift-morphed phase of a
//!   suite is its own cell rather than a stale alias of the base;
//! * the **feature vector** is similarity — [`stored::FEATURES`]
//!   structural/dynamic statistics of the training programs, plus the
//!   scenario/goal coordinates, over which the warm-start strategy
//!   ranks prior cells by Euclidean distance. Count-like features are
//!   log-compressed so "ten times more call sites" reads as a constant
//!   shift, not a cliff.
//!
//! Everything here is a pure function of the task and suite:
//! fingerprints computed on different machines, processes or days agree
//! bit-for-bit.

use ir::stats::program_stats;
use jit::Scenario;
use stored::{digest_parts, Fingerprint, FEATURES};
use workloads::Benchmark;

use crate::goal::Goal;
use crate::tuner::TuningTask;

fn scenario_tag(s: Scenario) -> &'static str {
    match s {
        Scenario::Opt => "opt",
        Scenario::Adapt => "adapt",
    }
}

/// The fingerprint of one tuning cell: `task` × `training` suite.
#[must_use]
pub fn cell_fingerprint(task: &TuningTask, training: &[Benchmark]) -> Fingerprint {
    let mut parts: Vec<String> = vec![
        scenario_tag(task.scenario).to_string(),
        task.goal.label().to_string(),
        task.arch.name.to_string(),
    ];
    for b in training {
        // The name alone is not identity once workloads drift: a
        // morphed phase keeps its benchmark's name but runs a different
        // program, and the store promises bit-exact replay per cell. So
        // each part folds in the program's exact structural/dynamic
        // identity — a base suite and its phase morphs are distinct
        // cells, while the identity morph (phase 0) digests exactly
        // like the offline cell.
        let s = program_stats(&b.program);
        parts.push(format!(
            "{}#{:x}:{:x}:{:x}:{:x}:{:016x}",
            b.name(),
            s.n_methods,
            s.n_call_sites,
            s.total_size,
            s.n_recursive,
            s.dynamic_calls.to_bits(),
        ));
    }
    let part_refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    let cell_digest = digest_parts(&part_refs);

    // Suite-aggregate shape: means over the benchmarks' program stats.
    let n = training.len().max(1) as f64;
    let mut methods = 0.0;
    let mut sites = 0.0;
    let mut size = 0.0;
    let mut calls = 0.0;
    let mut inlinable = 0.0;
    let mut recursive = 0.0;
    for b in training {
        let s = program_stats(&b.program);
        methods += ((1 + s.n_methods) as f64).ln();
        sites += ((1 + s.n_call_sites) as f64).ln();
        size += ((1 + s.total_size) as f64).ln();
        calls += (1.0 + s.dynamic_calls).ln();
        inlinable += s.inlinable_fraction;
        recursive += s.n_recursive as f64 / s.n_methods.max(1) as f64;
    }
    let features = vec![
        (1.0 + n).ln(),
        methods / n,
        sites / n,
        size / n,
        calls / n,
        inlinable / n,
        recursive / n,
        // The objective's coordinates: cells tuned under another
        // scenario/goal are similar but not interchangeable, so they
        // rank behind same-objective cells at equal workload shape.
        match task.scenario {
            Scenario::Opt => 0.0,
            Scenario::Adapt => 1.0,
        } + match task.goal {
            Goal::Running => 0.0,
            Goal::Total => 0.25,
            Goal::Balance => 0.5,
        },
    ];
    debug_assert_eq!(features.len(), FEATURES);

    Fingerprint {
        cell_digest,
        arch: task.arch.name.to_string(),
        features,
        problem: "inline".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::paper_tasks;
    use workloads::benchmark_by_name;

    fn suite(names: &[&str]) -> Vec<Benchmark> {
        names
            .iter()
            .map(|n| benchmark_by_name(n).expect("known benchmark"))
            .collect()
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let task = &paper_tasks()[0];
        let a = cell_fingerprint(task, &suite(&["db", "jess"]));
        let b = cell_fingerprint(task, &suite(&["db", "jess"]));
        assert_eq!(a.cell_digest, b.cell_digest);
        let bits = |fs: &[f64]| fs.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.features), bits(&b.features));
    }

    #[test]
    fn every_coordinate_of_the_cell_splits_the_digest() {
        let tasks = paper_tasks();
        let db = suite(&["db"]);
        let base = cell_fingerprint(&tasks[1], &db); // Opt:Bal x86
        let digests: Vec<u64> = tasks
            .iter()
            .map(|t| cell_fingerprint(t, &db).cell_digest)
            .collect();
        // The five paper cells (differing in scenario, goal or arch) are
        // five distinct cells.
        let mut unique = digests.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), tasks.len());

        // Workload and its order are part of identity too.
        assert_ne!(
            base.cell_digest,
            cell_fingerprint(&tasks[1], &suite(&["jess"])).cell_digest
        );
        assert_ne!(
            cell_fingerprint(&tasks[1], &suite(&["db", "jess"])).cell_digest,
            cell_fingerprint(&tasks[1], &suite(&["jess", "db"])).cell_digest
        );
    }

    #[test]
    fn a_drift_morphed_phase_is_its_own_cell() {
        use workloads::{DriftKind, DriftPos, DriftSchedule};
        let task = &paper_tasks()[0];
        let base = suite(&["db"]);
        let schedule = DriftSchedule {
            kind: DriftKind::Step,
            period: 2,
            phases: 2,
            seed: 11,
        };
        let phase0 = schedule.suite_for(&base, &DriftPos::at_phase(0));
        let phase1 = schedule.suite_for(&base, &DriftPos::at_phase(1));
        // Phase 0 is the identity morph: same cell as the offline base,
        // so warm transfer from offline tunes keeps working.
        assert_eq!(
            cell_fingerprint(task, &base).cell_digest,
            cell_fingerprint(task, &phase0).cell_digest
        );
        // A real morph runs a different program under the same name —
        // it must never alias the base cell (the store replays fitness
        // bit-exactly per cell).
        assert_ne!(
            cell_fingerprint(task, &base).cell_digest,
            cell_fingerprint(task, &phase1).cell_digest
        );
    }

    #[test]
    fn similar_workloads_are_nearer_than_dissimilar_ones() {
        let task = &paper_tasks()[0];
        let a = cell_fingerprint(task, &suite(&["db", "jess", "javac"]));
        let b = cell_fingerprint(task, &suite(&["db", "jess", "jack"]));
        let c = cell_fingerprint(task, &suite(&["raytrace"]));
        assert!(
            a.distance2(&b) < a.distance2(&c),
            "a 2/3-overlapping suite must rank nearer than a disjoint one"
        );
    }

    #[test]
    fn same_workload_other_objective_is_close_but_distinct() {
        let tasks = paper_tasks();
        let db = suite(&["db"]);
        let bal = cell_fingerprint(&tasks[1], &db); // Opt:Bal
        let tot = cell_fingerprint(&tasks[2], &db); // Opt:Tot
        assert_ne!(bal.cell_digest, tot.cell_digest);
        assert!(bal.distance2(&tot) > 0.0);
        assert!(
            bal.distance2(&tot) < 1.0,
            "objective shift is a nudge, not a cliff"
        );
    }
}
